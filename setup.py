"""Packaging for the `repro` reproduction package.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) on purpose: the offline
environments this reproduction targets may lack the ``wheel`` distribution,
and PEP 660 editable installs build a wheel.  A classic ``setup.py`` keeps
``pip install -e .`` (optionally with ``--no-use-pep517``) and
``python setup.py develop`` working everywhere, while still carrying full
metadata and ``src/`` package discovery.
"""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.abspath(os.path.dirname(__file__))


def read(*parts: str) -> str:
    with open(os.path.join(HERE, *parts), encoding="utf-8") as handle:
        return handle.read()


def find_version() -> str:
    match = re.search(r'^__version__ = "([^"]+)"',
                      read("src", "repro", "__init__.py"), re.M)
    if not match:
        raise RuntimeError("unable to find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-cim-columnwise",
    version=find_version(),
    description=("NumPy reproduction of column-wise quantization of weights and "
                 "partial sums for compute-in-memory accelerators (DATE 2025), "
                 "with a frozen inference engine"),
    long_description=read("README.md"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
