"""Setup shim so editable installs work without the ``wheel`` package.

The environment this reproduction targets has no network access and no
``wheel`` distribution, so PEP 660 editable installs (which build a wheel)
fail.  Keeping a ``setup.py`` lets ``pip install -e . --no-use-pep517`` and
plain ``python setup.py develop`` work everywhere.
"""

from setuptools import setup

setup()
