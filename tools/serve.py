"""CLI entry point for the network serving front end.

Loads one or more frozen model-plan artifacts, mounts each as
``POST /v1/models/{name}/predict`` on a :class:`repro.engine.NetServer`,
and serves until SIGTERM/SIGINT — then drains gracefully (every admitted
request is answered before the process exits; the no-drop contract of
``PlanServer.close`` extended to the wire).

Usage::

    PYTHONPATH=src python tools/serve.py \
        --model resnet=artifacts/resnet8_plan.npz \
        --model resnet_int=artifacts/resnet8_plan.npz:mode=int \
        --port 8080 --shards 2 --max-batch 16

Each ``--model`` is ``name=path[:key=value...]`` where the per-model
options ``mode`` (``float``/``int``), ``compile`` (``true``/``false``),
``shards`` and ``max_shards`` override the global flags — so one process
can serve the same artifact on several routes (e.g. a float reference next
to the integer route).  ``--port 0`` binds an ephemeral port and prints
it, which is how ``examples/serve_http.py`` and the tests drive this file.

Lifecycle signals: SIGTERM/SIGINT drain and exit; **SIGHUP rolls every
model over to the current bytes of its artifact** (zero-downtime: each
endpoint's pool is rebuilt from a re-stat of its mounted path, probe
validated, atomically swapped, old pool drained in the background) — the
operational path for ``cp new_plan.npz artifacts/... && kill -HUP $pid``.
A model whose new artifact is corrupt keeps serving the old one (the
rejection is printed, not fatal).  ``--max-shards N`` (or the per-model
``max_shards=N`` option) turns on shard-pool autoscaling between the
mounted ``shards`` and ``N``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Dict, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.engine import NetServer   # noqa: E402 — after the path shim


def parse_model_spec(spec: str) -> Tuple[str, str, Dict[str, str]]:
    """Split ``name=path[:key=value...]`` into its parts.

    The path may itself contain ``=``-free colons only in the option tail,
    so artifact paths with drive letters are not supported — keep artifacts
    on POSIX paths (the rest of the toolchain already assumes fork).
    """
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"--model {spec!r}: expected name=path[:key=value...]")
    name, rest = spec.split("=", 1)
    options: Dict[str, str] = {}
    path = rest
    if ":" in rest:
        path, tail = rest.split(":", 1)
        for item in tail.split(":"):
            if "=" not in item:
                raise argparse.ArgumentTypeError(
                    f"--model {spec!r}: bad option {item!r} "
                    "(expected key=value)")
            key, value = item.split("=", 1)
            options[key] = value
    if not name or not path:
        raise argparse.ArgumentTypeError(
            f"--model {spec!r}: empty name or path")
    return name, path, options


def build_parser() -> argparse.ArgumentParser:
    """The serve CLI's argument surface."""
    parser = argparse.ArgumentParser(
        description="Serve frozen model-plan artifacts over HTTP.")
    parser.add_argument("--model", action="append", required=True,
                        metavar="NAME=PATH[:k=v...]", type=parse_model_spec,
                        help="mount an artifact (repeatable); per-model "
                             "options: mode=float|int, compile=true|false, "
                             "shards=N, max_shards=N")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 binds an ephemeral port (printed on start)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard executors per model")
    parser.add_argument("--max-shards", type=int, default=None,
                        help="enable autoscaling: grow each model's pool "
                             "up to this many shards under queue pressure, "
                             "shrink back when idle (default: off)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-size", type=int, default=256,
                        help="bounded backlog per model; admission control "
                             "answers 503 past it")
    parser.add_argument("--result-cache", type=int, default=0,
                        metavar="ENTRIES",
                        help="LRU result-cache entries per model (0 = off)")
    parser.add_argument("--request-timeout-s", type=float, default=60.0)
    parser.add_argument("--drain-timeout-s", type=float, default=30.0,
                        help="max seconds close() waits for queued requests")
    return parser


def _flag(value: str) -> bool:
    return value.lower() in ("1", "true", "yes", "on")


def build_server(args: argparse.Namespace) -> NetServer:
    """Construct and populate the :class:`NetServer` from parsed flags."""
    net = NetServer(host=args.host, port=args.port)
    for name, path, options in args.model:
        max_shards = options.get("max_shards", args.max_shards)
        net.add_model(
            name, path,
            n_shards=int(options.get("shards", args.shards)),
            backend=args.backend,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=args.queue_size,
            result_cache_entries=args.result_cache,
            mode=options.get("mode"),
            compile=_flag(options.get("compile", "false")),
            request_timeout_s=args.request_timeout_s,
            max_shards=None if max_shards is None else int(max_shards),
        )
    return net


def reload_all(net: NetServer) -> None:
    """Roll every mounted model over to the current bytes of its artifact.

    The SIGHUP handler body (separated so tests can drive it without
    signals).  Per-model failures are printed and skipped — one corrupt
    replacement must not stop the others from rolling, and the failed
    model keeps serving its old pool by :meth:`ModelEndpoint.reload`'s
    contract.
    """
    for name in sorted(net.model_names()):
        endpoint = net.endpoint(name)
        if endpoint is None:
            continue
        try:
            info = endpoint.reload()
            print(f"[serve] reloaded {name!r} "
                  f"(reload #{info['reloads']}, {info['n_shards']} shards)",
                  flush=True)
        except Exception as error:   # noqa: BLE001 — keep serving old pool
            print(f"[serve] reload of {name!r} rejected: {error}",
                  flush=True)


def main(argv=None) -> int:
    """Parse flags, serve, drain on SIGTERM/SIGINT, exit 0."""
    args = build_parser().parse_args(argv)
    net = build_server(args)
    stop = threading.Event()

    def _drain(signum, frame):
        print(f"\n[serve] signal {signal.Signals(signum).name}: draining...",
              flush=True)
        stop.set()

    def _rollover(signum, frame):
        # handlers must return fast; the probe/swap work runs off-thread
        threading.Thread(target=reload_all, args=(net,),
                         name="sighup-reload", daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    if hasattr(signal, "SIGHUP"):   # not on Windows; serve there sans reload
        signal.signal(signal.SIGHUP, _rollover)
    net.start()
    print(f"[serve] listening on {net.url} "
          f"(models: {', '.join(sorted(net.model_names()))})", flush=True)
    stop.wait()
    net.close(timeout=args.drain_timeout_s)
    print("[serve] drained, bye", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
