"""Line-coverage gate for the engine subsystem, with no hard dependencies.

Runs pytest over a test directory while measuring which lines of the target
source tree execute, then fails if total line coverage is below the
threshold.  Two measurement backends, picked automatically:

* the ``coverage`` package, when it is installed (exact, fast);
* a stdlib fallback built on ``sys.settrace`` + ``threading.settrace``
  otherwise — executable lines are derived from the compiled code objects'
  ``co_lines()`` tables, executed lines from a trace function that attaches
  only to frames whose code lives in the target tree.  The fallback cannot
  see into forked child processes (the server's ``backend="process"``
  shards), so its numbers are a slight *under*-estimate; the threshold
  accounts for that.

Usage (what ``make coverage`` runs)::

    python tools/run_coverage.py --source src/repro/engine \
        --source src/repro/core/pipeline.py --source src/repro/core/requant.py \
        --fail-under 85 tests/engine tests/core

``--source`` is repeatable and accepts either a directory (all ``.py``
files under it) or a single ``.py`` file.  Everything after the flags is
passed to pytest.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from typing import Dict, Iterable, Set, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(
    os.path.abspath(__file__)), os.pardir))


def _source_files(source: str) -> list:
    """All ``.py`` files of one ``--source`` entry (absolute, sorted).

    A directory contributes every ``.py`` file under it; a ``.py`` file
    contributes itself.
    """
    if os.path.isfile(source):
        return [os.path.abspath(source)] if source.endswith(".py") else []
    files = []
    for dirpath, _dirnames, filenames in os.walk(source):
        for filename in filenames:
            if filename.endswith(".py"):
                files.append(os.path.abspath(os.path.join(dirpath, filename)))
    return sorted(files)


def _executable_lines(path: str) -> Set[int]:
    """Line numbers carrying bytecode, from the compiled code-object tree."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(line for _start, _stop, line in code.co_lines()
                     if line is not None and line > 0)
        stack.extend(const for const in code.co_consts
                     if hasattr(const, "co_lines"))
    return lines


# --------------------------------------------------------------------------- #
# stdlib fallback tracer
# --------------------------------------------------------------------------- #
class _LineCollector:
    """``sys.settrace`` hook recording executed lines of the watched files."""

    def __init__(self, watched: Set[str]):
        self.watched = watched
        self.executed: Dict[str, Set[int]] = {path: set() for path in watched}

    def _local(self, frame, event, _arg):
        if event == "line":
            self.executed[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, _arg):
        if event == "call":
            filename = frame.f_code.co_filename
            if filename in self.watched:
                self.executed[filename].add(frame.f_lineno)
                return self._local
        return None

    def install(self) -> None:
        threading.settrace(self.global_trace)   # server worker threads too
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def _measure_fallback(files: Iterable[str], pytest_args: list) -> Tuple[int, Dict[str, Set[int]]]:
    import pytest
    collector = _LineCollector(set(files))
    collector.install()
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        collector.uninstall()
    return int(exit_code), collector.executed


def _measure_with_coverage(files: Iterable[str],
                           pytest_args: list) -> Tuple[int, Dict[str, Set[int]]]:
    import coverage
    import pytest
    # include= (not source=) so single-file --source entries are honoured
    cov = coverage.Coverage(include=list(files), data_file=None)
    cov.start()
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        cov.stop()
    data = cov.get_data()
    executed = {path: set(data.lines(path) or ()) for path in files}
    return int(exit_code), executed


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pytest + line coverage with a stdlib fallback")
    parser.add_argument("--source", action="append", dest="sources",
                        metavar="SOURCE",
                        help="directory or .py file to measure (repeatable; "
                             "default: src/repro/engine)")
    parser.add_argument("--fail-under", type=float, default=85.0,
                        help="minimum total line coverage percentage")
    parser.add_argument("pytest_args", nargs="*", default=["tests/engine"],
                        help="arguments forwarded to pytest")
    args, extra = parser.parse_known_args(argv)
    args.pytest_args = list(args.pytest_args) + extra   # flags like -q pass through

    sources = [os.path.abspath(src if os.path.isabs(src)
                               else os.path.join(REPO_ROOT, src))
               for src in (args.sources or ["src/repro/engine"])]
    files = []
    for source in sources:
        found = _source_files(source)
        if not found:
            print(f"no .py files under {source}", file=sys.stderr)
            return 2
        files.extend(found)
    files = sorted(set(files))
    already = [name for name, module in sys.modules.items()
               if getattr(module, "__file__", None) in set(files)]
    if already:
        print(f"refusing to measure: {already} imported before tracing",
              file=sys.stderr)
        return 2

    pytest_args = list(args.pytest_args) or ["tests/engine"]
    pytest_args = [arg if os.path.isabs(arg) or arg.startswith("-")
                   else os.path.join(REPO_ROOT, arg) for arg in pytest_args]
    try:
        import coverage  # noqa: F401 — availability probe only
        backend = "coverage"
        exit_code, executed = _measure_with_coverage(files, pytest_args)
    except ImportError:
        backend = "stdlib settrace fallback"
        exit_code, executed = _measure_fallback(files, pytest_args)
    if exit_code != 0:
        print(f"\npytest failed (exit {exit_code}); coverage not evaluated",
              file=sys.stderr)
        return exit_code

    total_exec = 0
    total_hit = 0
    targets = ", ".join(os.path.relpath(src, REPO_ROOT) for src in sources)
    print(f"\nline coverage ({backend}) of {targets}:")
    print(f"  {'file':<28} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in files:
        executable = _executable_lines(path)
        hit = executed.get(path, set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        print(f"  {os.path.basename(path):<28} {len(executable):>6} "
              f"{len(hit):>6} {pct:>6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<28} {total_exec:>6} {total_hit:>6} {total_pct:>6.1f}%")
    if total_pct < args.fail_under:
        print(f"\nFAIL: total coverage {total_pct:.1f}% is below the "
              f"--fail-under threshold {args.fail_under:.1f}%",
              file=sys.stderr)
        return 1
    print(f"\nOK: total coverage {total_pct:.1f}% "
          f">= {args.fail_under:.1f}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
