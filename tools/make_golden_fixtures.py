"""Generate the golden-artifact regression fixtures of ``tests/engine/``.

Each fixture is one compressed ``.npz`` under ``tests/engine/fixtures/``
with three entries:

* ``artifact`` — the raw bytes (``uint8``) of a saved engine artifact
  (``save_plan`` for the layer cases, ``save_model_plan`` for the model
  case), exactly as they would sit on disk;
* ``input``   — a small float64 activation batch;
* ``golden``  — the artifact's output on that batch, recorded at fixture
  generation time.

``tests/engine/test_golden.py`` reloads each artifact through
``engine.load_plan`` and asserts **bit-exact** equality against ``golden``,
which pins two contracts at once across future PRs: the on-disk artifact
format stays loadable, and the execution math stays numerically identical.

The three cases cover the artifact surface: a quantized-psum ``ConvPlan``, a
``LinearPlan``, and a whole-model ``ModelPlan`` of a reduced ResNet-8
(residual adds, folded BatchNorm, pooling — every graph op kind).

Everything is seeded; rerun ``python tools/make_golden_fixtures.py`` only
when the artifact format version changes **intentionally** (bump the plan
format/version, regenerate, and say so in the PR — a diff in these files is
an artifact-format break, not noise).
"""

from __future__ import annotations

import io
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro import engine                                   # noqa: E402
from repro.cim import CIMConfig, QuantScheme               # noqa: E402
from repro.core import CIMConv2d, CIMLinear                # noqa: E402
from repro.models import resnet8                           # noqa: E402
from repro.nn import Tensor                                # noqa: E402
from repro.nn.tensor import no_grad                        # noqa: E402

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "tests", "engine", "fixtures")

SCHEME = QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                     weight_granularity="column", psum_granularity="column")
CIM = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)


def _artifact_bytes(save, obj) -> np.ndarray:
    """Serialized artifact as a ``uint8`` array (via an in-memory buffer)."""
    buffer = io.BytesIO()
    save(obj, buffer)
    return np.frombuffer(buffer.getvalue(), dtype=np.uint8)


def make_conv():
    """Quantized-psum ConvPlan of one calibrated CIMConv2d."""
    rng = np.random.default_rng(11)
    layer = CIMConv2d(3, 4, 3, stride=1, padding=1, bias=True,
                      scheme=SCHEME, cim_config=CIM,
                      rng=np.random.default_rng(0))
    calib = np.abs(rng.normal(size=(4, 3, 8, 8)))
    with no_grad():
        layer.eval()
        layer(Tensor(calib))                 # initialize the LSQ scales
    plan = engine.compile_conv_plan(layer)
    x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    return _artifact_bytes(engine.save_plan, plan), x, plan.execute(x)


def make_linear():
    """LinearPlan of one calibrated CIMLinear."""
    rng = np.random.default_rng(13)
    layer = CIMLinear(24, 5, bias=True, scheme=SCHEME, cim_config=CIM,
                      rng=np.random.default_rng(1))
    calib = np.abs(rng.normal(size=(6, 24)))
    with no_grad():
        layer.eval()
        layer(Tensor(calib))
    plan = engine.compile_linear_plan(layer)
    x = np.abs(rng.normal(size=(4, 24)))
    return _artifact_bytes(engine.save_plan, plan), x, plan.execute(x)


def make_resnet_tiny():
    """ModelPlan of a width-0.25 ResNet-8 (all graph op kinds)."""
    rng = np.random.default_rng(17)
    model = resnet8(num_classes=4, scheme=SCHEME, cim_config=CIM,
                    width_multiplier=0.25, seed=3)
    calib = np.abs(rng.normal(size=(4, 3, 8, 8)))
    with no_grad():
        model(Tensor(calib))                 # move BN stats off their init
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=calib)
    x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    return (_artifact_bytes(engine.save_model_plan, plan),
            x, plan.execute(x))


CASES = {
    "conv": make_conv,
    "linear": make_linear,
    "resnet_tiny": make_resnet_tiny,
}


def main() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for name, build in CASES.items():
        artifact, x, golden = build()
        assert x.dtype == np.float64 and golden.dtype == np.float64
        path = os.path.join(FIXTURE_DIR, f"{name}.npz")
        np.savez_compressed(path, artifact=artifact, input=x, golden=golden)
        print(f"{path}: artifact={artifact.nbytes // 1024}KiB "
              f"input={x.shape} golden={golden.shape}")


if __name__ == "__main__":
    main()
