"""Generate the golden-artifact regression fixtures of ``tests/engine/``.

Each fixture is one compressed ``.npz`` under ``tests/engine/fixtures/``
with three entries:

* ``artifact`` — the raw bytes (``uint8``) of a saved engine artifact
  (``save_plan`` for the layer cases, ``save_model_plan`` for the model
  case), exactly as they would sit on disk;
* ``input``   — a small float64 activation batch;
* ``golden``  — the artifact's output on that batch, recorded at fixture
  generation time.

``tests/engine/test_golden.py`` reloads each artifact through
``engine.load_plan`` and asserts **bit-exact** equality against ``golden``,
which pins two contracts at once across future PRs: the on-disk artifact
format stays loadable, and the execution math stays numerically identical.

The float cases cover the artifact surface: a quantized-psum ``ConvPlan``, a
``LinearPlan``, and a whole-model ``ModelPlan`` of a reduced ResNet-8
(residual adds, folded BatchNorm, pooling — every graph op kind).  Each has
an ``*_int`` twin built from the *same seeded layers* whose golden output is
recorded on the integer-requantized route (``mode="int"``), pinning the
fixed-point math bit-for-bit as well.

Everything is seeded; rerun ``python tools/make_golden_fixtures.py`` only
when the artifact format version changes **intentionally** (bump the plan
format/version, regenerate, and say so in the PR — a diff in these files is
an artifact-format break, not noise).  Pass case names to regenerate a
subset, e.g. ``python tools/make_golden_fixtures.py conv_int linear_int`` —
the committed float fixtures double as the version-1 compatibility proof
and must not be rewritten by a version-2 engine.
"""

from __future__ import annotations

import io
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro import engine                                   # noqa: E402
from repro.cim import CIMConfig, QuantScheme               # noqa: E402
from repro.core import CIMConv2d, CIMLinear                # noqa: E402
from repro.models import resnet8                           # noqa: E402
from repro.nn import Tensor                                # noqa: E402
from repro.nn.tensor import no_grad                        # noqa: E402

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "tests", "engine", "fixtures")

SCHEME = QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                     weight_granularity="column", psum_granularity="column")
CIM = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)


def _artifact_bytes(save, obj) -> np.ndarray:
    """Serialized artifact as a ``uint8`` array (via an in-memory buffer)."""
    buffer = io.BytesIO()
    save(obj, buffer)
    return np.frombuffer(buffer.getvalue(), dtype=np.uint8)


def _build_conv():
    """Quantized-psum ConvPlan of one calibrated CIMConv2d, plus a batch."""
    rng = np.random.default_rng(11)
    layer = CIMConv2d(3, 4, 3, stride=1, padding=1, bias=True,
                      scheme=SCHEME, cim_config=CIM,
                      rng=np.random.default_rng(0))
    calib = np.abs(rng.normal(size=(4, 3, 8, 8)))
    with no_grad():
        layer.eval()
        layer(Tensor(calib))                 # initialize the LSQ scales
    plan = engine.compile_conv_plan(layer)
    x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    return engine.save_plan, plan, x


def _build_linear():
    """LinearPlan of one calibrated CIMLinear, plus a batch."""
    rng = np.random.default_rng(13)
    layer = CIMLinear(24, 5, bias=True, scheme=SCHEME, cim_config=CIM,
                      rng=np.random.default_rng(1))
    calib = np.abs(rng.normal(size=(6, 24)))
    with no_grad():
        layer.eval()
        layer(Tensor(calib))
    plan = engine.compile_linear_plan(layer)
    x = np.abs(rng.normal(size=(4, 24)))
    return engine.save_plan, plan, x


def _build_resnet_tiny():
    """ModelPlan of a width-0.25 ResNet-8 (all graph op kinds)."""
    rng = np.random.default_rng(17)
    model = resnet8(num_classes=4, scheme=SCHEME, cim_config=CIM,
                    width_multiplier=0.25, seed=3)
    calib = np.abs(rng.normal(size=(4, 3, 8, 8)))
    with no_grad():
        model(Tensor(calib))                 # move BN stats off their init
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=calib)
    x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    return engine.save_model_plan, plan, x


def _float_case(build):
    save, plan, x = build()
    return _artifact_bytes(save, plan), x, plan.execute(x)


def _int_case(build):
    save, plan, x = build()
    artifact = _artifact_bytes(save, plan)   # mode is runtime state, not disk
    plan.set_mode("int")
    return artifact, x, plan.execute(x)


def make_conv():
    return _float_case(_build_conv)


def make_linear():
    return _float_case(_build_linear)


def make_resnet_tiny():
    return _float_case(_build_resnet_tiny)


def make_conv_int():
    return _int_case(_build_conv)


def make_linear_int():
    return _int_case(_build_linear)


def make_resnet_tiny_int():
    return _int_case(_build_resnet_tiny)


CASES = {
    "conv": make_conv,
    "linear": make_linear,
    "resnet_tiny": make_resnet_tiny,
    "conv_int": make_conv_int,
    "linear_int": make_linear_int,
    "resnet_tiny_int": make_resnet_tiny_int,
}


def main(argv=None) -> None:
    names = argv if argv else list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise SystemExit(f"unknown fixture case(s) {unknown}; "
                         f"choose from {sorted(CASES)}")
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for name in names:
        artifact, x, golden = CASES[name]()
        assert x.dtype == np.float64 and golden.dtype == np.float64
        path = os.path.join(FIXTURE_DIR, f"{name}.npz")
        np.savez_compressed(path, artifact=artifact, input=x, golden=golden)
        print(f"{path}: artifact={artifact.nbytes // 1024}KiB "
              f"input={x.shape} golden={golden.shape}")


if __name__ == "__main__":
    main(sys.argv[1:])
