"""AST-based docstring checker for the public API.

Fails (exit code 1) when a public module, class, function or method in the
given files / directories lacks a docstring.  "Public" means the name does
not start with an underscore and, for modules, the file is not a test.
Dunder methods and ``__init__`` are exempt (the class docstring covers
construction), as are trivial overrides consisting only of a docstring-less
``pass`` — there are none today, so the rule stays simple.

Usage::

    python tools/check_docstrings.py src/repro/engine src/repro/core/psum.py

Used by the ``docs-check`` Makefile target.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

DEFAULT_TARGETS = (
    "src/repro/engine",
    "src/repro/models",
    "src/repro/core/psum.py",
    "src/repro/core/pipeline.py",
    "src/repro/cim/cost.py",
    "tools/serve.py",
)


def python_files(target: str) -> Iterator[str]:
    """Yield the .py files under a file or directory target."""
    if os.path.isfile(target):
        yield target
        return
    for root, _dirs, files in os.walk(target):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: str) -> List[Tuple[str, int, str]]:
    """Return ``(qualified_name, lineno, kind)`` for each undocumented public API."""
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems: List[Tuple[str, int, str]] = []
    if ast.get_docstring(tree) is None:
        problems.append((os.path.basename(path), 1, "module"))

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                qualified = f"{prefix}{name}"
                if _is_public(name):
                    if ast.get_docstring(child) is None:
                        kind = "class" if isinstance(child, ast.ClassDef) else "function"
                        problems.append((qualified, child.lineno, kind))
                    if isinstance(child, ast.ClassDef):
                        visit(child, f"{qualified}.")

    visit(tree, "")
    return problems


def main(argv: List[str]) -> int:
    """Check every target; print offenders and return a shell exit code."""
    targets = argv or list(DEFAULT_TARGETS)
    failures = 0
    checked = 0
    for target in targets:
        if not os.path.exists(target):
            print(f"error: no such file or directory: {target}", file=sys.stderr)
            return 2
        for path in python_files(target):
            checked += 1
            for qualified, lineno, kind in missing_docstrings(path):
                print(f"{path}:{lineno}: undocumented public {kind}: {qualified}")
                failures += 1
    if failures:
        print(f"\ndocs-check: {failures} undocumented public API(s) "
              f"across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
