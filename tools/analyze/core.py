"""Framework core for the static analyzer: findings, passes, baseline.

Everything repo-agnostic lives here: the :class:`Finding` model with
file/line spans and a severity, the parsed-module wrapper
(:class:`SourceModule` — AST plus the comment stream, which plain
``ast.parse`` drops), the pass registry, inline ``# analyze: allow[...]``
waivers, the optional baseline file, and the :func:`run_analysis` driver
that the CLI (``python -m tools.analyze``) and the test-suite share.

The repo-specific rules live in the pass modules (:mod:`.locks`,
:mod:`.allocs`, :mod:`.intpure`, :mod:`.doccontract`), each registered via
the :func:`register` decorator.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SEVERITIES = ("error", "warning")

#: ``# analyze: allow[pass-id] -- reason`` waives findings of that pass on
#: the same line or the line directly below the comment.  The reason is
#: mandatory — a waiver without one is itself a finding.
_ALLOW_RE = re.compile(
    r"#\s*analyze:\s*allow\[(?P<pass>[a-z0-9-]+)\]\s*(?:--\s*(?P<reason>\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic, spanning ``line``..``end_line`` of ``path``."""

    pass_id: str
    rule: str
    path: str
    line: int
    message: str
    end_line: int = 0
    severity: str = "error"
    symbol: str = ""

    def __post_init__(self):
        if not self.end_line:
            object.__setattr__(self, "end_line", self.line)
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """``path:line`` (or ``path:line-end_line`` for multi-line spans)."""
        if self.end_line > self.line:
            return f"{self.path}:{self.line}-{self.end_line}"
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file.

        Keyed on path, pass, rule, and enclosing symbol so that unrelated
        edits moving code up or down do not invalidate a baseline entry.
        """
        return f"{self.path}::{self.pass_id}::{self.rule}::{self.symbol}"

    def render(self) -> str:
        """One human-readable report line."""
        sym = f" [{self.symbol}]" if self.symbol else ""
        return (f"{self.location()}: {self.severity}: "
                f"{self.pass_id}/{self.rule}:{sym} {self.message}")


class SourceModule:
    """One parsed source file: text, AST, comments, and waivers."""

    def __init__(self, path: str, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.comments: List[Tuple[int, str]] = self._collect_comments(text)

    @staticmethod
    def _collect_comments(text: str) -> List[Tuple[int, str]]:
        """``(lineno, comment_text)`` pairs, via :mod:`tokenize`."""
        comments = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    comments.append((tok.start[0], tok.string))
        except tokenize.TokenError:  # pragma: no cover — ast.parse catches first
            pass
        return comments

    def allows(self) -> Tuple[Dict[Tuple[str, int], str], List[Finding]]:
        """Inline waivers: ``{(pass_id, covered_line): reason}`` + defects.

        A waiver covers its own line and the next line (for comment-above
        style).  Waivers with no ``-- reason`` are reported as findings.
        """
        table: Dict[Tuple[str, int], str] = {}
        defects: List[Finding] = []
        for lineno, comment in self.comments:
            match = _ALLOW_RE.search(comment)
            if not match:
                continue
            reason = match.group("reason")
            if not reason:
                defects.append(Finding(
                    pass_id="analyzer", rule="allow-missing-reason",
                    path=self.relpath, line=lineno, severity="error",
                    message="allow[] waiver requires a '-- reason' clause"))
                continue
            for covered in (lineno, lineno + 1):
                table[(match.group("pass"), covered)] = reason
        return table, defects


class AnalysisPass:
    """Base class for passes; subclasses set ``pass_id``/``description``.

    ``run`` is called once per module; ``finalize`` once per analysis run,
    after every module, for whole-project rules (e.g. the lock-order
    graph).  A fresh instance is created for every analysis run, so passes
    may accumulate state across ``run`` calls.
    """

    pass_id = ""
    description = ""

    def run(self, module: SourceModule) -> List[Finding]:
        """Per-module findings (override)."""
        raise NotImplementedError

    def finalize(self) -> List[Finding]:
        """Whole-project findings emitted after all modules ran."""
        return []


_REGISTRY: Dict[str, type] = {}


def register(pass_cls: type) -> type:
    """Class decorator adding an :class:`AnalysisPass` to the registry."""
    if not pass_cls.pass_id:
        raise ValueError(f"{pass_cls.__name__} has no pass_id")
    if pass_cls.pass_id in _REGISTRY:
        raise ValueError(f"duplicate pass_id {pass_cls.pass_id!r}")
    _REGISTRY[pass_cls.pass_id] = pass_cls
    return pass_cls


def all_passes() -> Dict[str, type]:
    """Registered passes, ``{pass_id: class}`` (copy; registration order)."""
    return dict(_REGISTRY)


def python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(os.path.abspath(path))
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__")
                found.extend(os.path.abspath(os.path.join(dirpath, name))
                             for name in sorted(filenames)
                             if name.endswith(".py"))
    return sorted(set(found))


@dataclass
class AnalysisResult:
    """Everything :func:`run_analysis` produces."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)  # baseline hits
    waived: List[Finding] = field(default_factory=list)      # allow[] hits
    files_analyzed: int = 0

    def errors(self) -> List[Finding]:
        """Only the error-severity findings."""
        return [f for f in self.findings if f.severity == "error"]


def _relpath(path: str, root: Optional[str]) -> str:
    base = root or os.getcwd()
    rel = os.path.relpath(path, base)
    return rel.replace(os.sep, "/")


def run_analysis(paths: Sequence[str],
                 select: Optional[Sequence[str]] = None,
                 baseline: Optional[Iterable[str]] = None,
                 root: Optional[str] = None) -> AnalysisResult:
    """Run the (selected) passes over every ``.py`` file under ``paths``.

    ``baseline`` is an iterable of :meth:`Finding.baseline_key` strings to
    suppress; ``root`` anchors the repo-relative paths in findings
    (defaults to the current directory).
    """
    registry = all_passes()
    selected = list(select) if select else list(registry)
    unknown = [pid for pid in selected if pid not in registry]
    if unknown:
        raise ValueError(f"unknown pass id(s): {', '.join(unknown)}")
    passes = [registry[pid]() for pid in selected]

    result = AnalysisResult()
    raw: List[Finding] = []
    waivers: Dict[Tuple[str, str, int], str] = {}
    for path in python_files(paths):
        relpath = _relpath(path, root)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            module = SourceModule(path, relpath, text)
        except (SyntaxError, ValueError) as exc:
            raw.append(Finding(pass_id="analyzer", rule="parse-error",
                               path=relpath, line=getattr(exc, "lineno", 1) or 1,
                               message=f"cannot parse: {exc}"))
            continue
        result.files_analyzed += 1
        table, defects = module.allows()
        raw.extend(defects)
        waivers.update({(relpath, pid, line): reason
                        for (pid, line), reason in table.items()})
        for pass_ in passes:
            raw.extend(pass_.run(module))
    for pass_ in passes:
        raw.extend(pass_.finalize())

    baseline_keys = set(baseline or ())
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.pass_id, f.rule)):
        if (finding.path, finding.pass_id, finding.line) in waivers:
            result.waived.append(finding)
        elif finding.baseline_key() in baseline_keys:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def load_baseline(path: str) -> List[str]:
    """Baseline keys from a JSON baseline file (``[]`` if absent)."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a baseline file")
    return list(payload["findings"])


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Persist the given findings' keys as the new baseline."""
    keys = sorted({f.baseline_key() for f in findings})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "findings": keys}, handle, indent=2)
        handle.write("\n")


# --------------------------------------------------------------------------- #
# shared AST helpers used by several passes
# --------------------------------------------------------------------------- #
def iter_classes(tree: ast.Module) -> Iterable[ast.ClassDef]:
    """Every class in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(cls: ast.ClassDef) -> Iterable[ast.FunctionDef]:
    """Direct function children of a class (sync and async)."""
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def docstring_of(node: ast.AST) -> str:
    """The literal docstring of a def/class, ``""`` when absent."""
    try:
        return ast.get_docstring(node, clean=False) or ""
    except TypeError:  # pragma: no cover — only def/class are passed
        return ""


__all__ = [
    "AnalysisPass", "AnalysisResult", "Finding", "SourceModule",
    "all_passes", "register", "run_analysis", "python_files",
    "load_baseline", "write_baseline",
    "iter_classes", "iter_methods", "dotted_name", "docstring_of",
]
