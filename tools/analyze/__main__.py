"""Command-line entry point: ``python -m tools.analyze [paths...]``.

Exit codes: 0 — clean (or baseline-suppressed); 1 — findings (or the
``--max-seconds`` self-runtime budget blown); 2 — usage error.  This is
what ``make lint`` runs; see ``docs/analysis.md`` for the workflow.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core import all_passes, load_baseline, run_analysis, write_baseline


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="AST-based repo-invariant checks (lock discipline, "
                    "hot-path allocation, int-purity, thread-safety docs)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--select", metavar="PASS[,PASS...]",
                        help="comma-separated pass ids to run (default: all)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of accepted findings to suppress")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite --baseline FILE from current findings "
                             "and exit 0")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the analysis itself takes longer than "
                             "this (the lint gate uses 5)")
    args = parser.parse_args(argv)

    if args.list_passes:
        for pass_id, pass_cls in all_passes().items():
            print(f"{pass_id:<24} {pass_cls.description}")
        return 0
    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")

    select = args.select.split(",") if args.select else None
    baseline = load_baseline(args.baseline) if args.baseline else []
    started = time.perf_counter()
    try:
        result = run_analysis(args.paths, select=select, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        write_baseline(args.baseline, result.findings + result.suppressed)
        print(f"wrote {args.baseline}: "
              f"{len(result.findings) + len(result.suppressed)} finding(s)")
        return 0

    for finding in result.findings:
        print(finding.render())
    summary = (f"analyzed {result.files_analyzed} file(s) in {elapsed:.2f}s: "
               f"{len(result.findings)} finding(s)")
    if result.suppressed:
        summary += f", {len(result.suppressed)} baseline-suppressed"
    if result.waived:
        summary += f", {len(result.waived)} waived inline"
    print(summary)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"FAIL: analyzer took {elapsed:.2f}s "
              f"(budget {args.max_seconds:.2f}s)", file=sys.stderr)
        return 1
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
