"""Hot-path allocation pass: registered hot functions must not allocate.

A function is *hot* when it carries the ``@hot_path`` decorator (from
:mod:`repro.engine.hotpath`) or when its qualified name appears in a
module-level ``_HOT_FUNCTIONS = ("Class.method", ...)`` registry tuple —
the registry form covers closures and generated functions that cannot be
decorated.

Inside a hot function the pass flags, per the engine's steady-state
zero-allocation contract:

* calls to the NumPy array *constructors* — ``np.zeros``, ``np.empty``,
  ``np.ones``, ``np.full``, their ``*_like`` variants, and the
  concatenators ``np.concatenate/stack/vstack/hstack/dstack`` — which
  must instead route through ``out=`` arguments or the thread-local
  workspace buffers of :func:`repro.engine.hotpath.scratch`;
* list/set/dict comprehensions and generator expressions (each builds a
  fresh container or frame per call);
* nested ``def``/``lambda`` (each call allocates a closure object).

``tuple``/arithmetic temporaries are out of scope — the pass targets the
allocations that dominated profiles (array buffers and per-call frames),
not every object the interpreter touches.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from .core import (AnalysisPass, Finding, SourceModule, dotted_name,
                   register)

_BANNED_NUMPY = {
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "concatenate", "stack", "vstack", "hstack", "dstack",
}
_NUMPY_NAMES = {"np", "numpy"}
_DECORATOR = "hot_path"


def _is_hot_decorator(node: ast.AST) -> bool:
    """True for ``@hot_path`` / ``@hotpath.hot_path`` style decorators."""
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_name(node).split(".")[-1] == _DECORATOR


def _registry_names(tree: ast.Module) -> Set[str]:
    """Qualnames listed in a module-level ``_HOT_FUNCTIONS`` tuple."""
    names: Set[str] = set()
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "_HOT_FUNCTIONS"):
            try:
                value = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                continue
            if isinstance(value, (list, tuple)):
                names.update(str(item) for item in value)
    return names


def _functions_with_qualnames(
        tree: ast.Module) -> Iterable[Tuple[str, ast.FunctionDef]]:
    """Every function in the module with its ``Class.method``-style name."""

    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


@register
class HotPathAllocationPass(AnalysisPass):
    """No array constructors, comprehensions, or closures in hot functions."""

    pass_id = "hot-path-allocation"
    description = ("functions registered @hot_path route buffers through "
                   "out=/workspace instead of allocating per call")

    def run(self, module: SourceModule) -> List[Finding]:
        """Flag banned constructs inside every registered hot function."""
        findings: List[Finding] = []
        registry = _registry_names(module.tree)
        for qualname, func in _functions_with_qualnames(module.tree):
            hot = (qualname in registry
                   or any(_is_hot_decorator(d) for d in func.decorator_list))
            if hot:
                findings.extend(self._check(module, qualname, func))
        return findings

    def _check(self, module: SourceModule, qualname: str,
               func: ast.FunctionDef) -> List[Finding]:
        findings: List[Finding] = []

        def flag(rule: str, node: ast.AST, message: str) -> None:
            findings.append(Finding(
                pass_id=self.pass_id, rule=rule, path=module.relpath,
                line=node.lineno, end_line=getattr(node, "end_lineno", 0) or 0,
                symbol=qualname, message=message))

        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                parts = name.split(".")
                if (len(parts) == 2 and parts[0] in _NUMPY_NAMES
                        and parts[1] in _BANNED_NUMPY):
                    flag("hot-allocation", node,
                         f"hot path calls {name} (allocates per call); "
                         f"route through out=/hotpath.scratch buffers")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                kind = type(node).__name__
                flag("hot-comprehension", node,
                     f"hot path builds a {kind} (fresh container/frame per "
                     f"call); use a preallocated buffer and an explicit loop")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                label = getattr(node, "name", "<lambda>")
                flag("hot-closure", node,
                     f"hot path defines {label!r} (closure object allocated "
                     f"per call); hoist it to module or class scope")
        return findings
