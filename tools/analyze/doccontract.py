"""Thread-safety doc contract: lock-owning classes document their methods.

Any *public* class that owns a ``threading.*`` primitive (``Lock``,
``RLock``, ``Condition``, ``Event``, ``Semaphore``, ``Barrier``,
``Thread``, ``local`` — created in a method body or at class scope) is a
concurrency API: every public method and property of such a class must
state its thread-safety contract in its own docstring.

"States its contract" means the docstring mentions the concurrency
vocabulary — thread(-safe), lock, guarded, concurrent, serialized,
atomic, blocking, race, reentrant, single-flight, immutable/read-only —
or carries a ``:guarded-by:`` tag.  The pass deliberately checks for
*presence* of a statement, not its truth; truth is the lock-discipline
pass's job for guarded state and the test-suite's for the rest.

Private classes (``_Name``), private methods, and dunders are exempt.
A public method with no docstring at all is reported here too (the
repo-wide docstring checker only covers the modules listed in
``make docs-check``).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from .core import (AnalysisPass, Finding, SourceModule, docstring_of,
                   dotted_name, iter_classes, iter_methods, register)

_PRIMITIVES = {"Lock", "RLock", "Condition", "Event", "Semaphore",
               "BoundedSemaphore", "Barrier", "Thread", "local"}
_STATEMENT_RE = re.compile(
    r"(?i)(thread|lock|guard|concurren|serial|atomi|immutab|read-only|"
    r"race|block|reentran|single-flight|:guarded-by:)")


def _owns_primitive(cls: ast.ClassDef) -> Optional[str]:
    """Name of the first threading primitive the class creates, if any."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            parts = name.split(".")
            if parts[-1] in _PRIMITIVES and (
                    len(parts) == 1 or parts[0] == "threading"):
                return parts[-1]
    return None


@register
class ThreadSafetyDocPass(AnalysisPass):
    """Public methods of lock-owning classes state their thread-safety."""

    pass_id = "thread-safety-docs"
    description = ("every public method of a class owning a threading.* "
                   "primitive documents its thread-safety contract")

    def run(self, module: SourceModule) -> List[Finding]:
        """Check every public lock-owning class of one module."""
        findings: List[Finding] = []
        for cls in iter_classes(module.tree):
            if cls.name.startswith("_"):
                continue
            primitive = _owns_primitive(cls)
            if primitive is None:
                continue
            for method in iter_methods(cls):
                if method.name.startswith("_"):
                    continue  # private helpers and dunders
                symbol = f"{cls.name}.{method.name}"
                doc = docstring_of(method)
                if not doc:
                    findings.append(Finding(
                        pass_id=self.pass_id, rule="missing-docstring",
                        path=module.relpath, line=method.lineno,
                        symbol=symbol,
                        message=(f"public method of {cls.name} (owns a "
                                 f"threading.{primitive}) has no docstring")))
                elif not _STATEMENT_RE.search(doc):
                    findings.append(Finding(
                        pass_id=self.pass_id, rule="thread-safety-undocumented",
                        path=module.relpath, line=method.lineno,
                        symbol=symbol,
                        message=(f"{cls.name} owns a threading.{primitive}; "
                                 f"the docstring of {method.name} must state "
                                 f"its thread-safety (e.g. 'Thread-safe.', "
                                 f"'Callers must hold ...', 'Immutable "
                                 f"after construction.')")))
        return findings
