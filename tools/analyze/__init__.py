"""Repo-invariant static analyzer for the serving engine.

A small AST-based framework (stdlib ``ast`` + ``tokenize`` only — no new
dependencies) plus four repo-specific passes that turn the engine's
docstring-only concurrency and performance conventions into machine-checked
invariants:

* ``lock-discipline`` — guarded-state declarations (``_GUARDED_BY``),
  ``:guarded-by:`` caller-must-hold tags, and a static lock-acquisition
  graph with inversion detection (:mod:`tools.analyze.locks`);
* ``hot-path-allocation`` — functions marked ``@hot_path`` may not
  allocate via ``np.zeros/empty/concatenate`` & friends, build
  comprehensions, or create closures (:mod:`tools.analyze.allocs`);
* ``int-purity`` — no float constructors, float literals, or true
  division between ``# int-pure: begin/end`` markers
  (:mod:`tools.analyze.intpure`);
* ``thread-safety-docs`` — every public method of a class owning a
  ``threading.*`` primitive states its thread-safety contract
  (:mod:`tools.analyze.doccontract`).

Run it as ``python -m tools.analyze src/repro`` (what ``make lint`` does),
or drive it from Python via :func:`tools.analyze.core.run_analysis`.  The
annotation conventions and the baseline workflow are documented in
``docs/analysis.md``.
"""

from .core import (Finding, SourceModule, all_passes, load_baseline,
                   run_analysis, write_baseline)
from . import allocs, doccontract, intpure, locks  # noqa: F401 — register passes

__all__ = [
    "Finding", "SourceModule", "all_passes", "run_analysis",
    "load_baseline", "write_baseline",
]
