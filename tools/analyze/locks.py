"""Lock-discipline pass: guarded state, caller-must-hold tags, lock order.

Conventions checked (see ``docs/analysis.md`` for the annotation guide):

* A class declares guarded state with a class attribute::

      _GUARDED_BY = {"_pending": "_lock", "stats": "_lock"}

  Every read or write of a guarded attribute — on ``self`` or on any
  parameter annotated with the same class (peer instances, e.g.
  ``other: "LatencyHistogram"``) — must be lexically inside
  ``with <receiver>.<lock>:`` for that same receiver, inside
  ``with ordered(a._lock, b._lock):`` (the canonical two-peer-lock
  helper from :mod:`repro.engine.locking`), or inside a method tagged
  caller-must-hold.  ``__init__``/``__post_init__`` are exempt
  (single-threaded construction).

* A method whose docstring carries ``:guarded-by: <lock>`` is
  caller-must-hold: its body may touch state guarded by that lock
  without re-acquiring it, and re-acquiring it inside the method is
  flagged (``threading.Lock`` is non-reentrant — that is a deadlock).
  A dotted spec (``:guarded-by: batcher._lock``) names a lock owned by
  another object; guard values may likewise be dotted, in which case
  every access requires the enclosing method to carry the matching tag.

* Lock-order: nested acquisitions build a static acquisition graph over
  ``Class.lockattr`` labels (module-level locks get ``module:NAME``
  labels).  Cycles are reported, and acquiring two *peer* locks with the
  same label (two instances of one class, the ``latency.merge`` shape)
  is flagged unless done through ``ordered(...)``, whose runtime
  ``id()``-ordering makes it inversion-free by construction.

``threading.Condition(self._lock)`` aliases are resolved to the
underlying lock, so ``with self._space:`` counts as holding ``_lock``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from .core import (AnalysisPass, Finding, SourceModule, docstring_of,
                   dotted_name, iter_classes, iter_methods, register)

_PRIMITIVES = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")
_TAG_RE = re.compile(r":guarded-by:\s*([A-Za-z_][\w.]*)")
_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}
_ORDERED_HELPERS = {"ordered"}

# held-lock tokens: ("recv", receiver_name, lock_attr, class_name)
#                   ("mod", module_relpath, lock_name)
#                   ("ext", spec)   — from a dotted :guarded-by: tag


def _label(token: Tuple) -> Optional[str]:
    """Graph label of a held-lock token (None for external tags)."""
    if token[0] == "recv":
        return f"{token[3]}.{token[2]}"
    if token[0] == "mod":
        return f"{token[1]}:{token[2]}"
    return None


class _ClassInfo:
    """Lock layout of one class: primitives, condition aliases, guards."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.name = node.name
        self.locks: Set[str] = set()
        self.aliases: Dict[str, str] = {}
        self.guarded: Dict[str, str] = {}
        self.guard_lineno = node.lineno
        self._scan()

    def _scan(self) -> None:
        for stmt in self.node.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "_GUARDED_BY"):
                self.guard_lineno = stmt.lineno
                try:
                    value = ast.literal_eval(stmt.value)
                except (ValueError, SyntaxError):
                    value = None
                if isinstance(value, dict):
                    self.guarded = {str(k): str(v) for k, v in value.items()}
        for method in iter_methods(self.node):
            for stmt in ast.walk(method):
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                ctor = self._primitive_ctor(stmt.value)
                if ctor is None:
                    continue
                self.locks.add(target.attr)
                if ctor == "Condition":
                    args = stmt.value.args
                    if (args and isinstance(args[0], ast.Attribute)
                            and isinstance(args[0].value, ast.Name)
                            and args[0].value.id == "self"):
                        self.aliases[target.attr] = args[0].attr

    @staticmethod
    def _primitive_ctor(value: ast.AST) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        for prim in _PRIMITIVES:
            if name == f"threading.{prim}" or name == prim:
                return prim
        return None

    def resolve(self, lock_attr: str) -> str:
        """Canonical lock attr (conditions resolve to their shared lock)."""
        return self.aliases.get(lock_attr, lock_attr)


def _module_locks(tree: ast.Module) -> Set[str]:
    """Module-level ``NAME = threading.Lock()`` style lock names."""
    names = set()
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _ClassInfo._primitive_ctor(stmt.value)):
            names.add(stmt.targets[0].id)
    return names


def _method_tags(method: ast.FunctionDef) -> List[str]:
    """The ``:guarded-by:`` specs declared in a method docstring."""
    return _TAG_RE.findall(docstring_of(method))


def _peer_params(method: ast.FunctionDef, class_name: str) -> Set[str]:
    """Parameters annotated as instances of the enclosing class."""
    peers = set()
    args = method.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        ann = arg.annotation
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        elif isinstance(ann, ast.Name):
            text = ann.id
        else:
            continue
        if text.strip("'\" ") == class_name:
            peers.add(arg.arg)
    return peers


@register
class LockDisciplinePass(AnalysisPass):
    """Guarded-attribute access + caller-must-hold + acquisition order."""

    pass_id = "lock-discipline"
    description = ("guarded state accessed under its declared lock; "
                   "lock-order inversions in the static acquisition graph")

    def __init__(self):
        # (src_label, dst_label) -> "path:line" of the first occurrence
        self.edges: Dict[Tuple[str, str], str] = {}

    def run(self, module: SourceModule) -> List[Finding]:
        """Check every class of one module; feed the acquisition graph."""
        findings: List[Finding] = []
        mod_locks = _module_locks(module.tree)
        for cls_node in iter_classes(module.tree):
            info = _ClassInfo(cls_node)
            findings.extend(self._validate_guards(module, info))
            for method in iter_methods(cls_node):
                findings.extend(self._check_method(module, info, method,
                                                   mod_locks))
        return findings

    def _validate_guards(self, module: SourceModule,
                         info: _ClassInfo) -> List[Finding]:
        findings = []
        for attr, spec in info.guarded.items():
            if "." in spec:
                continue  # external lock — declarative, tag-enforced
            if info.resolve(spec) not in {info.resolve(l) for l in info.locks}:
                findings.append(Finding(
                    pass_id=self.pass_id, rule="unknown-lock",
                    path=module.relpath, line=info.guard_lineno,
                    symbol=info.name,
                    message=(f"_GUARDED_BY maps {attr!r} to {spec!r}, which "
                             f"is not a threading primitive of {info.name}")))
        return findings

    def _check_method(self, module: SourceModule, info: _ClassInfo,
                      method: ast.FunctionDef,
                      mod_locks: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        symbol = f"{info.name}.{method.name}"
        receivers = {"self"} | _peer_params(method, info.name)
        held: List[Tuple] = []
        tag_specs = _method_tags(method)
        for spec in tag_specs:
            if "." in spec:
                held.append(("ext", spec))
            elif spec in info.locks or spec in info.aliases:
                held.append(("recv", "self", info.resolve(spec), info.name))
            else:
                findings.append(Finding(
                    pass_id=self.pass_id, rule="unknown-lock",
                    path=module.relpath, line=method.lineno, symbol=symbol,
                    message=(f":guarded-by: names {spec!r}, which is not a "
                             f"threading primitive of {info.name}")))

        def lock_token(expr: ast.AST) -> Optional[Tuple]:
            """Held-lock token for a with-item context expression."""
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id in receivers
                    and info.resolve(expr.attr) in
                        {info.resolve(l) for l in info.locks}):
                return ("recv", expr.value.id, info.resolve(expr.attr),
                        info.name)
            if isinstance(expr, ast.Name) and expr.id in mod_locks:
                return ("mod", module.relpath, expr.id)
            return None

        def acquire(token: Tuple, lineno: int, via_ordered: bool) -> None:
            """Record one acquisition: same-lock rules + graph edges."""
            label = _label(token)
            for prior in held:
                if prior[0] == "recv" and token[0] == "recv" \
                        and prior[1] == token[1] and prior[2] == token[2]:
                    findings.append(Finding(
                        pass_id=self.pass_id, rule="lock-reacquire",
                        path=module.relpath, line=lineno, symbol=symbol,
                        message=(f"{token[1]}.{token[2]} acquired while "
                                 f"already held (non-reentrant deadlock)")))
                    return
                prior_label = _label(prior)
                if (not via_ordered and prior_label is not None
                        and prior_label == label):
                    findings.append(Finding(
                        pass_id=self.pass_id, rule="unordered-acquisition",
                        path=module.relpath, line=lineno, symbol=symbol,
                        message=(f"two {label} peer locks acquired in "
                                 f"arbitrary order; use "
                                 f"ordered({prior[1]}.{prior[2]}, "
                                 f"{token[1]}.{token[2]}) for a canonical "
                                 f"id()-ordered acquisition")))
                    return
                if prior_label is not None and label is not None \
                        and prior_label != label:
                    self.edges.setdefault(
                        (prior_label, label), f"{module.relpath}:{lineno}")
            held.append(token)

        def enter_with(node: ast.With, lineno: int) -> int:
            """Push tokens for one with-statement; return count pushed."""
            pushed = 0
            for item in node.items:
                expr = item.context_expr
                if (isinstance(expr, ast.Call)
                        and (dotted_name(expr.func).split(".")[-1]
                             in _ORDERED_HELPERS)):
                    before = len(held)
                    for arg in expr.args:
                        token = lock_token(arg)
                        if token is not None:
                            acquire(token, lineno, via_ordered=True)
                    pushed += len(held) - before
                    continue
                token = lock_token(expr)
                if token is not None:
                    before = len(held)
                    acquire(token, lineno, via_ordered=False)
                    pushed += len(held) - before
            return pushed

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not method:
                # Closures run later, under unknown locks: conservative reset.
                saved = list(held)
                held.clear()
                for child in ast.iter_child_nodes(node):
                    visit(child)
                held.extend(saved)
                return
            if isinstance(node, ast.With):
                pushed = enter_with(node, node.lineno)
                for child in node.body:
                    visit(child)
                for _ in range(pushed):
                    held.pop()
                return
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in receivers
                    and node.attr in info.guarded):
                recv = node.value.id
                spec = info.guarded[node.attr]
                exempt = (recv == "self" and method.name in _EXEMPT_METHODS)
                if not exempt:
                    if "." in spec:
                        ok = ("ext", spec) in held
                    else:
                        ok = ("recv", recv, info.resolve(spec),
                              info.name) in held
                    if not ok:
                        hint = (f"a ':guarded-by: {spec}' tag"
                                if "." in spec else
                                f"'with {recv}.{spec}:' (or a "
                                f"':guarded-by: {spec}' tag)")
                        findings.append(Finding(
                            pass_id=self.pass_id, rule="unguarded-access",
                            path=module.relpath, line=node.lineno,
                            symbol=symbol,
                            message=(f"{recv}.{node.attr} is guarded by "
                                     f"{spec!r} but accessed outside "
                                     f"{hint}")))
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in method.body:
            visit(stmt)
        return findings

    def finalize(self) -> List[Finding]:
        """Cycle detection over the whole-project acquisition graph."""
        graph: Dict[str, List[str]] = {}
        for (src, dst) in self.edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        findings: List[Finding] = []
        color: Dict[str, int] = {}
        stack: List[str] = []
        reported: Set[frozenset] = set()

        def dfs(node: str) -> None:
            color[node] = 1
            stack.append(node)
            for nxt in graph[node]:
                if color.get(nxt, 0) == 0:
                    dfs(nxt)
                elif color.get(nxt) == 1:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        where = self.edges.get((node, nxt), "")
                        path, _, line = where.rpartition(":")
                        findings.append(Finding(
                            pass_id=self.pass_id, rule="lock-order-cycle",
                            path=path or "<project>",
                            line=int(line) if line.isdigit() else 1,
                            symbol=" -> ".join(cycle),
                            message=("lock-order inversion: acquisition "
                                     "graph cycle " + " -> ".join(cycle))))
            stack.pop()
            color[node] = 2

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                dfs(node)
        return findings
