"""Int-purity pass: no float ops between the quant/dequant boundaries.

The integer execution route (``plan.py`` ``_contract_int``, the
``requant.py`` fixed-point primitives, and the compiler's int-route
branches) quantizes activations into an exact-integer carrier, runs the
accumulate + requantize stage in pure ``int64`` arithmetic, and only
re-enters float at the single dequant multiply.  The stretch between
those two boundaries is marked in the source::

    # int-pure: begin
    acc += self._bias_q
    acc >>= shift
    # int-pure: end

Inside a marked region the pass flags anything that would silently
reintroduce floating point:

* float literals (``0.5`` — integer and bool literals are fine);
* true division (``/`` — integer code uses ``//`` and shifts);
* float constructors/functions: ``float(...)``, ``np.float16/32/64``,
  ``np.divide/true_divide/sqrt/exp/log*/mean/average/std/var``;
* float dtypes passed via ``dtype=`` keywords, ``.astype(...)``, or
  ``np.dtype(...)`` (``dtype=np.int64`` stays legal).

Markers must balance within one file; a ``begin`` with no matching
``end`` (or vice versa) is reported.  Regions are purely lexical, so the
boundary multiply itself sits just outside the markers.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from .core import AnalysisPass, Finding, SourceModule, dotted_name, register

_MARKER_RE = re.compile(r"#\s*int-pure:\s*(begin|end)\b")
_FLOAT_CTORS = {"float16", "float32", "float64", "float128", "half",
                "single", "double", "longdouble"}
_FLOAT_FUNCS = {"divide", "true_divide", "sqrt", "exp", "expm1", "log",
                "log2", "log10", "log1p", "mean", "average", "std", "var"}
_NUMPY_NAMES = {"np", "numpy"}


def _regions(module: SourceModule) -> Tuple[List[Tuple[int, int]],
                                            List[Finding]]:
    """``(begin_line, end_line)`` marker regions + marker defects."""
    regions: List[Tuple[int, int]] = []
    defects: List[Finding] = []
    open_line: Optional[int] = None
    for lineno, comment in module.comments:
        match = _MARKER_RE.search(comment)
        if not match:
            continue
        kind = match.group(1)
        if kind == "begin":
            if open_line is not None:
                defects.append(Finding(
                    pass_id="int-purity", rule="marker-unbalanced",
                    path=module.relpath, line=lineno,
                    message="'int-pure: begin' inside an open region "
                            f"(started at line {open_line})"))
            open_line = lineno
        else:
            if open_line is None:
                defects.append(Finding(
                    pass_id="int-purity", rule="marker-unbalanced",
                    path=module.relpath, line=lineno,
                    message="'int-pure: end' with no open region"))
                continue
            regions.append((open_line, lineno))
            open_line = None
    if open_line is not None:
        defects.append(Finding(
            pass_id="int-purity", rule="marker-unbalanced",
            path=module.relpath, line=open_line,
            message="'int-pure: begin' never closed"))
    return regions, defects


def _is_float_dtype_expr(node: ast.AST) -> bool:
    """True when an expression names a float dtype."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("float") or node.value in ("f2", "f4", "f8")
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_CTORS
    if isinstance(node, ast.Call) and dotted_name(node.func).endswith("dtype"):
        return any(_is_float_dtype_expr(arg) for arg in node.args)
    return False


@register
class IntPurityPass(AnalysisPass):
    """Flag float reintroduction inside ``# int-pure:`` marked regions."""

    pass_id = "int-purity"
    description = ("no float literals, true division, or float-dtype "
                   "constructors between the quant/dequant markers")

    def run(self, module: SourceModule) -> List[Finding]:
        """Check every marked region of one module."""
        regions, findings = _regions(module)
        if not regions:
            return findings

        def in_region(lineno: int) -> bool:
            return any(begin < lineno < end for begin, end in regions)

        for node in ast.walk(module.tree):
            lineno = getattr(node, "lineno", None)
            if lineno is None or not in_region(lineno):
                continue
            findings.extend(self._check_node(module, node))
        return findings

    def _check_node(self, module: SourceModule,
                    node: ast.AST) -> List[Finding]:
        out: List[Finding] = []

        def flag(rule: str, message: str) -> None:
            out.append(Finding(pass_id=self.pass_id, rule=rule,
                               path=module.relpath, line=node.lineno,
                               message=message))

        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            flag("float-literal",
                 f"float literal {node.value!r} inside an int-pure region")
        elif isinstance(node, (ast.BinOp, ast.AugAssign)) \
                and isinstance(node.op, ast.Div):
            flag("float-division",
                 "true division ('/') inside an int-pure region; integer "
                 "code uses '//' or shifts")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            parts = name.split(".")
            if name == "float":
                flag("float-call", "float(...) inside an int-pure region")
            elif (len(parts) == 2 and parts[0] in _NUMPY_NAMES
                    and parts[1] in _FLOAT_CTORS | _FLOAT_FUNCS):
                flag("float-call",
                     f"{name}(...) produces floats inside an int-pure region")
            if parts[-1] == "astype" and node.args \
                    and _is_float_dtype_expr(node.args[0]):
                flag("float-dtype",
                     "astype(<float dtype>) inside an int-pure region")
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float_dtype_expr(kw.value):
                    flag("float-dtype",
                         "dtype=<float dtype> inside an int-pure region")
        return out
