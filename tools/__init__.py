"""Development tooling for the repository (not shipped with ``repro``).

Importable as a package so that ``python -m tools.analyze`` (the static
analyzer) works from the repository root; the standalone scripts next to
this file (``check_docstrings.py``, ``run_coverage.py``, ...) keep working
when invoked directly by path.
"""
