"""Extract and execute the fenced ``python`` snippets of a markdown file.

Documentation that cannot run is documentation that rots.  This tool pulls
every fenced code block whose info string is exactly ``python`` out of the
given markdown files and executes them **in order, in one shared
namespace** — so a guide can build state across snippets the way a reader
would in a REPL.  Blocks fenced with any other info string (``text``,
``json``, ``python no-run`` ...) are ignored, which is how schema sketches
and illustrative fragments opt out.

Usage::

    python tools/run_doc_snippets.py docs/engine.md [more.md ...]

Exits non-zero on the first failing snippet, printing the file, the snippet
index and the offending code.  Used by the ``docs-check`` Makefile target to
keep ``docs/engine.md`` executable.
"""

from __future__ import annotations

import re
import sys
import traceback
from typing import List, Tuple

FENCE = re.compile(r"^```(.*?)\s*$")


def extract_snippets(path: str) -> List[Tuple[int, str]]:
    """Return ``(start_line, code)`` for each runnable ``python`` block."""
    snippets: List[Tuple[int, str]] = []
    lines = open(path, encoding="utf-8").read().splitlines()
    in_block = False
    runnable = False
    start = 0
    buffer: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        match = FENCE.match(line)
        if match and not in_block:
            in_block = True
            runnable = match.group(1).strip() == "python"
            start = lineno + 1
            buffer = []
        elif match and in_block:
            if runnable and buffer:
                snippets.append((start, "\n".join(buffer)))
            in_block = False
        elif in_block:
            buffer.append(line)
    return snippets


def run_file(path: str) -> int:
    """Execute every runnable snippet of ``path``; return the failure count."""
    snippets = extract_snippets(path)
    if not snippets:
        print(f"{path}: no runnable python snippets found", file=sys.stderr)
        return 1
    namespace: dict = {"__name__": f"doc_snippets[{path}]"}
    for index, (lineno, code) in enumerate(snippets, start=1):
        try:
            exec(compile(code, f"{path}:snippet{index}(line {lineno})", "exec"),
                 namespace)
        except Exception:
            print(f"\n{path}: snippet {index} (line {lineno}) failed:\n",
                  file=sys.stderr)
            print(code, file=sys.stderr)
            traceback.print_exc()
            return 1
    print(f"doc-snippets: OK ({len(snippets)} snippet(s) from {path})")
    return 0


def main(argv: List[str]) -> int:
    """Run the snippets of every markdown file given on the command line."""
    if not argv:
        print("usage: run_doc_snippets.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    for path in argv:
        status = run_file(path)
        if status:
            return status
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
