"""Lock-acquisition helpers shared by the threaded engine modules.

The one deadlock-prone shape in the engine is acquiring two *peer* locks
— the same lock attribute on two instances of the same class, where
neither instance is canonically "first" (``a.merge(b)`` racing
``b.merge(a)``).  :func:`ordered` is the sanctioned way to do it: both
locks are always acquired in ascending ``id()`` order, so any two
threads contending for the same pair agree on the order and cannot
deadlock.

The static analyzer (``tools/analyze``, lock-discipline pass) recognizes
``with ordered(a._lock, b._lock):`` as holding both locks and flags any
other nested acquisition of two same-class peer locks — see
``docs/analysis.md``.
"""

from __future__ import annotations

from contextlib import contextmanager


@contextmanager
def ordered(lock_a, lock_b):
    """Hold two peer locks, acquired in canonical ``id()`` order.

    Deadlock-free by construction: every thread acquiring the pair
    ``{lock_a, lock_b}`` takes them in the same (address) order, whatever
    order the caller wrote them in.  Passing the same lock twice acquires
    it once (the locks are non-reentrant).  Released in reverse order on
    exit, exception or not.
    """
    if lock_a is lock_b:
        with lock_a:
            yield
        return
    first, second = ((lock_a, lock_b) if id(lock_a) < id(lock_b)
                     else (lock_b, lock_a))
    with first:
        with second:
            yield


__all__ = ["ordered"]
