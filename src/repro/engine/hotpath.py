"""Hot-path registry and thread-local workspace buffers.

Two tools for the engine's steady-state zero-allocation discipline,
enforced statically by ``tools/analyze`` (hot-path-allocation pass):

* :func:`hot_path` — a zero-overhead marker decorator.  A decorated
  function is *registered hot*: the analyzer forbids NumPy array
  constructors (``np.zeros/empty/concatenate`` and friends),
  comprehensions, and closure creation inside it.  Allocation must
  instead route through ``out=`` arguments or :func:`scratch`.

* :func:`scratch` — keyed, thread-local, reusable buffers.  The first
  call for a ``(key, shape, dtype)`` allocates with ``np.empty``; every
  subsequent call from the same thread with the same shape returns the
  same array, so a steady-state serving loop stops allocating entirely.
  Buffers are uninitialized on reuse, exactly like ``np.empty`` — the
  caller must fully overwrite before reading.  Thread-locality makes the
  buffers safe under the shard pool (each worker thread gets its own
  set) but also means a buffer must never escape to another thread: use
  a scratch array only for intermediates consumed before the function's
  caller returns, never for returned results.
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

_TLS = threading.local()


def hot_path(func):
    """Mark ``func`` as a hot path for the static analyzer; returns it as-is.

    Purely declarative — no wrapper, no call overhead.  The attribute
    ``__hot_path__`` is set for introspection and tests.
    """
    func.__hot_path__ = True
    return func


def scratch(key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A reusable thread-local buffer of exactly ``shape`` and ``dtype``.

    Contents are undefined (like ``np.empty``); the buffer is replaced
    when ``shape`` or ``dtype`` changes for the same ``key``.  Thread-safe
    by construction: every thread owns a private buffer table, so two
    shard workers can never hand each other the same array.
    """
    buffers = getattr(_TLS, "buffers", None)
    if buffers is None:
        buffers = _TLS.buffers = {}
    buf = buffers.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != np.dtype(dtype):
        buf = buffers[key] = np.empty(shape, dtype)
    return buf


def scratch_buffers() -> int:
    """Number of live scratch buffers owned by the calling thread."""
    buffers = getattr(_TLS, "buffers", None)
    return len(buffers) if buffers else 0


__all__ = ["hot_path", "scratch", "scratch_buffers"]
