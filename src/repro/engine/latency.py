"""Mergeable log-bucketed latency histograms for serving SLO instrumentation.

Aggregate throughput (``RunnerStats.throughput``) says nothing about what a
*single* request experienced — a server can sustain high samples/second
while its slowest percentile quietly collapses.  The network front end
(:mod:`repro.engine.netserver`) therefore records every request into
:class:`LatencyHistogram` instances and exports p50/p95/p99 from them on
``/metrics``.

Design constraints, in order:

* **bounded memory** — serving "millions of users" cannot keep every sample;
  the histogram keeps one integer counter per geometric bucket (a few
  hundred ints for microseconds..minutes), independent of request count;
* **bounded relative error** — buckets grow by a fixed ``growth`` factor, so
  a percentile estimate (the geometric midpoint of the bucket holding the
  order statistic) is within ``sqrt(growth)`` of the true sample value,
  multiplicatively.  ``tests/engine/test_latency.py`` pins this against a
  ``numpy.percentile`` oracle on seeded random samples;
* **exact merging** — shards and endpoints record into private histograms
  and the metrics endpoint merges them; merging identically-configured
  histograms just adds counter arrays, so it is associative and
  order-independent (the property suite checks both).

Values are recorded in **seconds** (the unit every ``time.perf_counter``
delta already has); :meth:`LatencyHistogram.to_dict` reports milliseconds,
the unit SLOs are written in.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional, Sequence

from .hotpath import hot_path
from .locking import ordered

__all__ = ["LatencyHistogram", "percentiles"]

# Quantiles every report carries; /metrics and the benchmark share this set.
REPORT_QUANTILES = (50.0, 95.0, 99.0)


class LatencyHistogram:
    """Fixed-memory latency accumulator with bounded-error percentiles.

    Parameters
    ----------
    min_value / max_value:
        The geometric bucket range, in seconds.  Samples below ``min_value``
        land in the first bucket, samples above ``max_value`` in the last —
        they are still counted (and tracked exactly by :attr:`min` /
        :attr:`max`), only their in-range resolution is lost.
    growth:
        Ratio between consecutive bucket boundaries.  Percentile estimates
        are exact up to a multiplicative factor of ``sqrt(growth)`` (2.5%
        at the default 1.05); smaller growth costs proportionally more
        buckets.

    Thread model: :meth:`record` and the readers take an internal lock, so
    one histogram may be shared by every handler thread of the HTTP server;
    :meth:`merge` holds *both* histograms' locks (acquired in canonical
    ``id()`` order via :func:`repro.engine.locking.ordered`), so concurrent
    cross-merges cannot deadlock.  The guarded state below is declared for
    the static analyzer (``tools/analyze``, lock-discipline pass).
    """

    _GUARDED_BY = {"_counts": "_lock", "count": "_lock", "total": "_lock",
                   "min": "_lock", "max": "_lock"}

    def __init__(self, min_value: float = 1e-6, max_value: float = 120.0,
                 growth: float = 1.05):
        if not (min_value > 0 and max_value > min_value):
            raise ValueError("need 0 < min_value < max_value")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        n = int(math.ceil(math.log(max_value / min_value) / self._log_growth))
        self._counts = [0] * (n + 1)
        self.count = 0
        self.total = 0.0          # sum of recorded seconds (for the mean)
        self.min: Optional[float] = None   # exact extremes, not bucketed
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _bucket(self, value: float) -> int:
        """Bucket index for a value.

        :guarded-by: _lock
        """
        if value <= self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth)
        return min(index, len(self._counts) - 1)

    @hot_path
    def record(self, seconds: float) -> None:
        """Count one latency sample (negative values clamp to zero).

        Thread-safe: counters update under the internal lock.
        """
        value = max(0.0, float(seconds))
        with self._lock:
            self._counts[self._bucket(value)] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def record_many(self, values: Iterable[float]) -> None:
        """Record every sample of an iterable (a convenience for
        tests/benchmarks).  Thread-safe; the lock is taken per sample, so
        concurrent readers interleave between samples."""
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 when empty).
        Thread-safe: reads under the internal lock."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def _representative(self, index: int) -> float:
        """Geometric midpoint of bucket ``index``, clamped to the exact
        extremes.

        :guarded-by: _lock
        """
        low = self.min_value * self.growth ** index
        value = low * math.sqrt(self.growth) if index else self.min_value
        if self.max is not None:
            value = min(value, self.max)
        if self.min is not None:
            value = max(value, self.min)
        return value

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile in seconds (0.0 when empty).

        Returns the geometric midpoint of the bucket containing the
        ``ceil(q/100 * count)``-th order statistic, clamped to the exact
        observed ``[min, max]`` — so the estimate is within a factor of
        ``sqrt(growth)`` of the true sample percentile, and ``q=0`` /
        ``q=100`` are exact.  Thread-safe: scans under the internal lock.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q={q} outside [0, 100]")
        with self._lock:
            if self.count == 0:
                return 0.0
            if q == 0.0:
                return self.min
            if q == 100.0:
                return self.max
            rank = max(1, int(math.ceil(q / 100.0 * self.count)))
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank:
                    return self._representative(index)
            return self.max   # unreachable: ranks are <= count

    def percentiles(self, qs: Sequence[float] = REPORT_QUANTILES) -> Dict[float, float]:
        """``{q: estimate_seconds}`` for a sequence of quantiles.
        Thread-safe; the lock is taken per quantile, so a concurrent
        ``record`` may land between two entries of one report."""
        return {float(q): self.percentile(q) for q in qs}

    # ------------------------------------------------------------------ #
    # merging / serialization
    # ------------------------------------------------------------------ #
    def _same_shape(self, other: "LatencyHistogram") -> bool:
        return (self.min_value == other.min_value
                and self.max_value == other.max_value
                and self.growth == other.growth)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Accumulate ``other`` into this histogram (and return ``self``).

        Both histograms must share a bucket configuration; merging then adds
        integer counter arrays, which makes it exactly associative and
        commutative on counts and percentiles (the float ``total`` is summed
        pairwise, so the mean is associative up to float rounding).

        Thread-safe and atomic: both locks are held for the update,
        acquired in canonical ``id()`` order, so two threads cross-merging
        the same pair (``a.merge(b)`` racing ``b.merge(a)``) cannot
        deadlock and never observe a half-applied merge.
        """
        if not self._same_shape(other):
            raise ValueError(
                "cannot merge histograms with different bucket configs: "
                f"({self.min_value}, {self.max_value}, {self.growth}) vs "
                f"({other.min_value}, {other.max_value}, {other.growth})")
        with ordered(self._lock, other._lock):
            for index, bucket_count in enumerate(other._counts):
                self._counts[index] += bucket_count
            self.count += other.count
            self.total += other.total
            if other.min is not None:
                self.min = other.min if self.min is None \
                    else min(self.min, other.min)
            if other.max is not None:
                self.max = other.max if self.max is None \
                    else max(self.max, other.max)
        return self

    def copy(self) -> "LatencyHistogram":
        """An independent snapshot with the same configuration and counts.
        Thread-safe: delegates to :meth:`merge`, which locks both sides."""
        snapshot = LatencyHistogram(self.min_value, self.max_value, self.growth)
        snapshot.merge(self)
        return snapshot

    def reset(self) -> None:
        """Zero every counter (e.g. between benchmark phases).
        Thread-safe: swaps the counters under the internal lock."""
        with self._lock:
            self._counts = [0] * len(self._counts)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def to_dict(self) -> dict:
        """JSON-serializable summary in **milliseconds** (SLO units).
        Thread-safe; quantiles and totals are read under the lock (in two
        acquisitions, so a concurrent ``record`` may fall between them)."""
        quantiles = self.percentiles()
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
        return {
            "count": count,
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "min_ms": (low or 0.0) * 1e3,
            "max_ms": (high or 0.0) * 1e3,
            **{f"p{q:g}_ms": seconds * 1e3
               for q, seconds in quantiles.items()},
        }


def percentiles(values: Sequence[float],
                qs: Sequence[float] = REPORT_QUANTILES) -> Dict[float, float]:
    """Exact sample percentiles of a small in-memory sequence.

    The benchmark's load generators keep their (bounded) client-side sample
    lists and want exact numbers; this is the nearest-rank percentile —
    the ``ceil(q/100 * n)``-th order statistic — matching what
    :meth:`LatencyHistogram.percentile` estimates.  Empty input returns 0.0
    for every quantile.
    """
    ordered = sorted(values)
    out: Dict[float, float] = {}
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q={q} outside [0, 100]")
        if not ordered:
            out[float(q)] = 0.0
        elif q == 0.0:
            out[float(q)] = ordered[0]
        else:
            rank = max(1, int(math.ceil(q / 100.0 * len(ordered))))
            out[float(q)] = ordered[min(rank, len(ordered)) - 1]
    return out
