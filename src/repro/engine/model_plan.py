"""Model-level engine artifacts: whole-network plans for frozen CIM models.

The per-layer plans of :mod:`repro.engine.plan` freeze one CIM layer at a
time, but a deployment still had to rebuild the full QAT model object just to
host them.  A :class:`ModelPlan` removes that last dependency: it captures

* one compiled :class:`~repro.engine.plan.ConvPlan` /
  :class:`~repro.engine.plan.LinearPlan` per CIM layer (snapshotted through
  the same :meth:`~repro.core.pipeline.CIMPipeline.compile_state` stage walk
  the QAT forward executes),
* eval-mode BatchNorm folded to static per-channel operands
  (:meth:`repro.nn.norm._BatchNorm.frozen_stats` — applied with the exact
  operation order of the module, so the fold is bit-exact), and
* the inter-layer graph of non-CIM ops (ReLU, pooling, residual adds,
  flatten, full-precision layers) as a small SSA-style node list,

and serializes all of it into a **single** ``.npz`` archive whose
``__manifest__`` entry is a JSON document describing the graph (see
``docs/engine.md`` for the schema).  :func:`load_plan` turns that file back
into a runnable executor **without constructing the QAT model, its layers or
its quantizers** — loading touches only NumPy arrays and plan dataclasses.

Graph capture is hook-based, not trace-based: composite modules implement
``export_graph(builder, node)`` (see :class:`repro.models.blocks.BasicBlock`
for the residual-add example) and leaf modules are handled by the builder's
dispatch table below.  Models composed purely of ``Sequential`` containers
and known leaves need no hook at all.

Execution math is kept bit-identical to the frozen in-process model: every
node applies the same NumPy operations, in the same order, as the Tensor op
it replaces, so a float64 ``ModelPlan`` reproduces the frozen model exactly
(the test suite pins <= 1e-10; in practice the difference is 0.0).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.cim_conv import CIMConv2d
from ..core.cim_linear import CIMLinear
from ..nn import functional as F
from ..nn.layers import (AvgPool2d, Conv2d, Dropout, Flatten, GlobalAvgPool2d,
                         Identity, Linear, MaxPool2d, ReLU, ReLU6)
from ..nn.module import Module, Sequential
from ..nn.norm import _BatchNorm
from ..nn.tensor import Tensor, no_grad
from .frozen import _FrozenLayer
from .plan import (compile_plan, load_plan as _load_layer_plan, normalize_dtype,
                   plan_arrays, plan_from_parts, plan_meta)

__all__ = [
    "GraphNode",
    "GraphBuilder",
    "ModelPlan",
    "ModelPlanError",
    "compile_model_plan",
    "save_model_plan",
    "load_model_plan",
    "load_plan",
    "run_conv2d",
    "run_flatten",
    "run_global_avg_pool",
    "run_linear",
    "run_pool",
]

#: Manifest format marker / version of the model-plan archive schema.
MODEL_PLAN_FORMAT = "repro-model-plan"
#: Version written by :func:`save_model_plan`.  v2 added the per-layer
#: ``requant`` metadata + ``rq_*`` arrays of the integer execution route.
MODEL_PLAN_VERSION = 2
#: Versions :func:`load_model_plan` accepts.  v1 archives predate the requant
#: constants: they load and execute in float mode, and ``set_mode("int")``
#: raises :class:`ModelPlanError`.
SUPPORTED_MODEL_PLAN_VERSIONS = frozenset({1, 2})


class ModelPlanError(RuntimeError):
    """Raised for unexportable models and corrupted / incompatible archives."""


def _pair(value) -> List[int]:
    if isinstance(value, (tuple, list)):
        return [int(value[0]), int(value[1])]
    return [int(value), int(value)]


# --------------------------------------------------------------------------- #
# graph IR
# --------------------------------------------------------------------------- #
@dataclass
class GraphNode:
    """One operation of the inter-layer graph.

    ``inputs`` are ids of earlier nodes (node 0 is always the model input),
    ``attrs`` is JSON-serializable structure (pool geometry, ...), ``arrays``
    holds the node's static NumPy operands (folded BN stats, FP weights) and
    ``plan_index`` points into :attr:`ModelPlan.layer_plans` for ``cim``
    nodes.
    """

    id: int
    op: str
    inputs: List[int]
    name: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    plan_index: int = -1


class GraphBuilder:
    """Captures a module tree into a :class:`ModelPlan` node list.

    Composite modules implement ``export_graph(builder, node_id) -> node_id``
    and call :meth:`emit` on their children (in forward order) and
    :meth:`add_op` for functional ops such as residual adds; leaf modules are
    handled by the built-in dispatch.  The builder owns the name scope, so
    node names match the module paths of the source model.
    """

    def __init__(self, dtype: str = "float64"):
        self.dtype = normalize_dtype(dtype)
        self.nodes: List[GraphNode] = [GraphNode(id=0, op="input", inputs=[],
                                                 name="input")]
        self.layer_plans: list = []
        self._scope: List[str] = []

    # ------------------------------------------------------------------ #
    @property
    def input_id(self) -> int:
        """Id of the graph's input placeholder node (always 0)."""
        return 0

    def scope_name(self) -> str:
        """Dotted module path of the current emission scope."""
        return ".".join(self._scope)

    def add_op(self, op: str, inputs: List[int], name: str = "",
               arrays: Optional[Dict[str, np.ndarray]] = None,
               **attrs) -> int:
        """Append a node and return its id.

        Array operands are cast to the plan dtype here, once, so every
        executor run serves pre-cast static data.
        """
        cast = {}
        for key, value in (arrays or {}).items():
            if value is None:
                continue
            value = np.asarray(value)
            if value.dtype.kind == "f":
                value = value.astype(self.dtype, copy=False)
            cast[key] = value
        node = GraphNode(id=len(self.nodes), op=op, inputs=list(inputs),
                         name=name or self.scope_name() or op,
                         attrs=attrs, arrays=cast)
        self.nodes.append(node)
        return node.id

    def add_layer_plan(self, plan, inputs: List[int], name: str = "") -> int:
        """Append a ``cim`` node executing an already-compiled layer plan."""
        node_id = self.add_op("cim", inputs, name=name)
        self.nodes[node_id].plan_index = len(self.layer_plans)
        self.layer_plans.append(plan)
        return node_id

    # ------------------------------------------------------------------ #
    def emit(self, module: Module, node: int, name: str = "") -> int:
        """Capture ``module`` applied to graph node ``node``; return the output id.

        Dispatch order: frozen wrappers and CIM layers compile to ``cim``
        nodes, modules providing ``export_graph`` delegate to their hook,
        ``Sequential`` chains its children, and known leaf modules map to
        built-in ops.  Anything else raises :class:`ModelPlanError`.
        """
        if name:
            self._scope.append(name)
        try:
            return self._dispatch(module, node)
        finally:
            if name:
                self._scope.pop()

    def _dispatch(self, module: Module, node: int) -> int:
        if isinstance(module, _FrozenLayer):
            module = module.layer
        if isinstance(module, (CIMConv2d, CIMLinear)):
            variation = module.variation
            if variation is not None and variation.enabled:
                raise ModelPlanError(
                    f"cannot capture {self.scope_name() or type(module).__name__!r}: "
                    "an enabled device-variation model is attached, and model "
                    "plans are deterministic artifacts; run variation studies "
                    "through the in-process freeze path, or detach the model "
                    "(set_variation(None)) before compiling")
            return self.add_layer_plan(compile_plan(module, dtype=self.dtype),
                                       [node])
        hook = getattr(module, "export_graph", None)
        if hook is not None:
            return hook(self, node)
        if isinstance(module, Sequential):
            for child_name, child in module._modules.items():
                node = self.emit(child, node, name=child_name)
            return node
        return self._leaf(module, node)

    def _leaf(self, module: Module, node: int) -> int:
        if isinstance(module, _BatchNorm):
            mean, denom = module.frozen_stats()
            arrays = {"mean": mean, "denom": denom}
            if module.affine:
                arrays["gamma"] = module.weight.data.copy()
                arrays["beta"] = module.bias.data.copy()
            return self.add_op("batchnorm", [node], arrays=arrays)
        if isinstance(module, ReLU6):          # ReLU6 first: not a ReLU subclass,
            return self.add_op("relu6", [node])  # but keep the specific case near
        if isinstance(module, ReLU):
            return self.add_op("relu", [node])
        if isinstance(module, (Identity, Dropout)):
            return node                        # eval-mode no-ops: emit nothing
        if isinstance(module, Flatten):
            return self.add_op("flatten", [node])
        if isinstance(module, GlobalAvgPool2d):
            return self.add_op("global_avg_pool", [node])
        if isinstance(module, (MaxPool2d, AvgPool2d)):
            op = "max_pool" if isinstance(module, MaxPool2d) else "avg_pool"
            kernel = _pair(module.kernel_size)
            stride = _pair(module.stride if module.stride is not None
                           else module.kernel_size)
            return self.add_op(op, [node], kernel=kernel, stride=stride,
                               padding=_pair(module.padding))
        if isinstance(module, Linear):
            arrays = {"weight": module.weight.data.copy()}
            if module.bias is not None:
                arrays["bias"] = module.bias.data.copy()
            return self.add_op("linear", [node], arrays=arrays)
        if isinstance(module, Conv2d):
            if module.groups != 1:
                raise ModelPlanError(
                    "grouped full-precision Conv2d is not supported by the "
                    "model-plan exporter")
            arrays = {"weight": module.weight.data.copy()}
            if module.bias is not None:
                arrays["bias"] = module.bias.data.copy()
            return self.add_op("conv2d", [node], arrays=arrays,
                               stride=_pair(module.stride),
                               padding=_pair(module.padding))
        raise ModelPlanError(
            f"cannot capture {type(module).__name__} at "
            f"{self.scope_name() or '<root>'!r}: no graph-capture hook "
            "(implement export_graph(builder, node)) and no built-in leaf rule")


# --------------------------------------------------------------------------- #
# the model plan (executor)
# --------------------------------------------------------------------------- #
def _channel_shape(param: np.ndarray, ndim: int) -> tuple:
    """Broadcast shape of a per-channel ``(C,)`` operand over an ``ndim`` input."""
    return (1, param.shape[0]) + (1,) * (ndim - 2)


# --------------------------------------------------------------------------- #
# shared op kernels
#
# The interpreter (ModelPlan._run_node) and the scheduled executor
# (repro.engine.compiler.CompiledPlan) run the exact same NumPy operations in
# the exact same order, so the shape-producing ops live here as plain
# functions both paths call.
# --------------------------------------------------------------------------- #
def run_flatten(x: np.ndarray) -> np.ndarray:
    """Flatten trailing dims to ``(N, features)`` — a view, zero-batch safe.

    ``reshape(n, -1)`` cannot infer the free dimension of an empty array, so
    the feature count is computed explicitly.
    """
    features = 1
    for dim in x.shape[1:]:
        features *= dim
    return x.reshape(x.shape[0], features)


def run_global_avg_pool(x: np.ndarray,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Global average pool ``(N, C, H, W) -> (N, C)``.

    Tensor.mean is ``sum * (1/count)``; mirror it for bit-exactness.  With
    ``out`` the same reduction and multiply land in the caller's buffer
    (identical bits, no fresh allocation).
    """
    scale = 1.0 / (x.shape[2] * x.shape[3])
    if out is None:
        return x.sum(axis=(2, 3)) * scale
    x.sum(axis=(2, 3), out=out)
    np.multiply(out, scale, out=out)
    return out


def run_pool(x: np.ndarray, op: str, kernel: tuple, stride: tuple,
             padding: tuple, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Windowed ``max_pool`` / ``avg_pool`` via the shared unfold kernel.

    With ``out`` (shape ``(N, C, out_h, out_w)``) the reduction writes into
    the caller's buffer — same ops, same bits, no fresh result array.
    """
    n, c, h, w = x.shape
    out_h = F.conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = F.conv_output_size(w, kernel[1], stride[1], padding[1])
    cols = F.unfold_array(x, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    dst = None if out is None else out.reshape(n, c, out_h * out_w)
    if op == "max_pool":
        pooled = cols.max(axis=2, out=dst)
    else:  # Tensor.mean is sum * (1/count); mirror it for bit-exactness
        pooled = cols.sum(axis=2, out=dst)
        scale = 1.0 / (kernel[0] * kernel[1])
        pooled = np.multiply(pooled, scale, out=dst)
    return out if out is not None else pooled.reshape(n, c, out_h, out_w)


def run_linear(x: np.ndarray, weight: np.ndarray,
               bias: Optional[np.ndarray],
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Full-precision linear layer ``x @ W.T (+ bias)``.

    The bias add runs in place on the matmul output — same bits as
    ``out + bias``, one less allocation.  With ``out`` the GEMM itself
    writes into the caller's buffer.
    """
    if out is None:
        out = x @ weight.T
    else:
        np.matmul(x, weight.T, out=out)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def run_conv2d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray],
               stride: tuple, padding: tuple,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Full-precision conv2d via unfold + batched matmul (+ in-place bias).

    With ``out`` (shape ``(N, C_out, out_h, out_w)``) the batched GEMM
    writes into the caller's buffer directly — identical bits.
    """
    c_out, _, kh, kw = weight.shape
    n = x.shape[0]
    out_h = F.conv_output_size(x.shape[2], kh, stride[0], padding[0])
    out_w = F.conv_output_size(x.shape[3], kw, stride[1], padding[1])
    cols = F.unfold_array(x, (kh, kw), stride, padding)   # (N, K, L)
    w2 = weight.reshape(c_out, -1)
    if out is None:
        out = (w2 @ cols).reshape(n, c_out, out_h, out_w)
    else:
        np.matmul(w2, cols, out=out.reshape(n, c_out, out_h * out_w))
    if bias is not None:
        np.add(out, bias.reshape(1, c_out, 1, 1), out=out)
    return out


@dataclass
class ModelPlan:
    """A frozen network as plain data: node graph + per-layer plans.

    Instances are runnable (``plan(x)`` / :meth:`execute`) and serializable
    (:meth:`save` / :meth:`load`); execution needs only NumPy — no Tensor,
    no Module, no quantizer objects.
    """

    nodes: List[GraphNode]
    layer_plans: list
    output_id: int
    dtype: str = "float64"
    name: str = ""
    mode: str = field(default="float", repr=False)  # runtime, not serialized
    _compiled: Any = field(default=None, init=False, repr=False, compare=False)

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype the plan executes in."""
        return np.dtype(self.dtype)

    @property
    def n_cim_layers(self) -> int:
        """Number of compiled CIM layer plans in the artifact."""
        return len(self.layer_plans)

    # ------------------------------------------------------------------ #
    # execution mode
    # ------------------------------------------------------------------ #
    def set_mode(self, mode: str) -> None:
        """Switch every CIM layer plan between the float and integer routes.

        ``"float"`` (the default for every freshly loaded plan) is the
        bit-exact reference; ``"int"`` executes each quantized-input layer
        through its fixed-point requant constants.  Layers without an input
        quantizer (``act_scale is None`` — typically the first convolution)
        have no integer input grid and stay on the float route; that is a
        property of the model, not an artifact defect.  Raises
        :class:`ModelPlanError` if any quantized-input layer lacks requant
        constants (a v1 archive saved before the integer path existed).
        """
        if mode not in ("float", "int"):
            raise ValueError(f"unknown execution mode {mode!r}; "
                             "expected 'float' or 'int'")
        if mode == "int":
            missing = [index for index, plan in enumerate(self.layer_plans)
                       if plan.act_scale is not None and plan.requant is None]
            if missing:
                raise ModelPlanError(
                    f"layer plan(s) {missing} carry no requant constants — "
                    "the artifact predates model-plan version 2; re-freeze "
                    "and re-save the model to enable mode='int'")
        for plan in self.layer_plans:
            plan.set_mode(mode)
        self.mode = mode

    def int_drift_bound(self) -> float:
        """Declared max-abs drift of ``mode="int"`` vs the float reference.

        Sum of the per-layer :attr:`~repro.core.requant.RequantConstants.
        drift_bound` declarations, scaled by a whole-model amplification
        factor: a layer's output drift passes through folded BatchNorm
        (where a small running variance divides it up) and through later
        layers' weights before reaching the logits, so the raw sum is not a
        bound on its own.  The factor is pinned by the differential suite on
        the fixture models; a violation there means the integer route
        regressed, not that the bound needs loosening.
        """
        per_layer = sum(plan.requant.drift_bound for plan in self.layer_plans
                        if plan.requant is not None)
        return 8.0 * per_layer

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, x: np.ndarray, timings: Optional[Dict[str, float]] = None,
                workspace: Optional[dict] = None) -> np.ndarray:
        """Run the graph on a batch array and return the output array.

        ``timings`` (optional) accumulates per-node wall-clock seconds keyed
        by node name — :class:`~repro.engine.runner.InferenceRunner` uses it
        for per-layer stats.  ``workspace`` (optional dict) lets element-wise
        nodes reuse preallocated output buffers across calls; outputs of a
        workspace-backed run are only valid until the next :meth:`execute`
        with the same workspace.
        """
        x = np.asarray(x.data if isinstance(x, Tensor) else x,
                       dtype=self.np_dtype)
        values: Dict[int, np.ndarray] = {0: x}
        last_use: Dict[int, int] = {0: 0}
        for node in self.nodes[1:]:
            for input_id in node.inputs:
                last_use[input_id] = node.id
        last_use[self.output_id] = len(self.nodes)

        for node in self.nodes[1:]:
            args = [values[i] for i in node.inputs]
            if timings is None:
                values[node.id] = self._run_node(node, args, workspace)
            else:
                start = time.perf_counter()
                values[node.id] = self._run_node(node, args, workspace)
                timings[node.name] = (timings.get(node.name, 0.0)
                                      + time.perf_counter() - start)
            for input_id in node.inputs:
                if last_use.get(input_id, -1) == node.id:
                    del values[input_id]
        return values[self.output_id]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`execute` (no timing, no workspace)."""
        return self.execute(x)

    def compile(self):
        """Compile the op graph into a :class:`~repro.engine.compiler.CompiledPlan`.

        The compiled plan fuses element-wise chains, plans buffers by
        liveness, and executes a flat schedule; it shares this plan's layer
        plans (and therefore its :meth:`set_mode` state).  Interpretation
        through :meth:`execute` remains the bit-exact reference path; the
        compiled executor is pinned equal to it by the differential suite.
        The result is cached, so repeated calls return the same object and
        :meth:`summary` can report the schedule.
        """
        if self._compiled is None:
            from .compiler import compile_plan_graph
            self._compiled = compile_plan_graph(self)
        return self._compiled

    def workspace_footprint(self, workspace: Optional[dict]) -> tuple:
        """``(resident_bytes, n_buffers)`` held by an interpreter workspace dict."""
        if not workspace:
            return (0, 0)
        buffers = [buf for buf in workspace.values()
                   if isinstance(buf, np.ndarray)]
        return (sum(buf.nbytes for buf in buffers), len(buffers))

    def _buffer(self, workspace: Optional[dict], node: GraphNode,
                shape: tuple) -> Optional[np.ndarray]:
        """Reusable output buffer for ``node``, or ``None`` without workspace."""
        if workspace is None:
            return None
        buf = workspace.get(node.id)
        if buf is None or buf.shape != shape or buf.dtype != self.np_dtype:
            buf = np.empty(shape, dtype=self.np_dtype)
            workspace[node.id] = buf
        return buf

    def _run_node(self, node: GraphNode, args: List[np.ndarray],
                  workspace: Optional[dict]) -> np.ndarray:
        """Execute one node; each op mirrors its Tensor counterpart bit for bit."""
        op = node.op
        x = args[0]
        if op == "cim":
            return self.layer_plans[node.plan_index].execute(x)
        if op == "batchnorm":
            a = node.arrays
            mean = a["mean"].reshape(_channel_shape(a["mean"], x.ndim))
            denom = a["denom"].reshape(_channel_shape(a["denom"], x.ndim))
            out = self._buffer(workspace, node, x.shape)
            if out is None:
                out = (x - mean) / denom
            else:
                np.subtract(x, mean, out=out)
                np.divide(out, denom, out=out)
            if "gamma" in a:
                gamma = a["gamma"].reshape(_channel_shape(a["gamma"], x.ndim))
                beta = a["beta"].reshape(_channel_shape(a["beta"], x.ndim))
                np.multiply(out, gamma, out=out)
                np.add(out, beta, out=out)
            return out
        if op == "relu":
            # single pass; np.fmax drops NaN in favour of the 0.0 operand, so
            # this is bit-identical to np.where(x > 0, x, 0.0) — NaN -> 0,
            # -0.0 -> +0.0 — with or without a workspace buffer
            return np.fmax(x, 0.0, out=self._buffer(workspace, node, x.shape))
        if op == "relu6":
            out = self._buffer(workspace, node, x.shape)
            return np.clip(x, 0.0, 6.0, out=out)
        if op == "add":
            out = self._buffer(workspace, node, x.shape)
            if out is None:
                return x + args[1]
            return np.add(x, args[1], out=out)
        if op == "flatten":
            return run_flatten(x)
        if op == "global_avg_pool":
            return run_global_avg_pool(x)
        if op in ("max_pool", "avg_pool"):
            return run_pool(x, op, tuple(node.attrs["kernel"]),
                            tuple(node.attrs["stride"]),
                            tuple(node.attrs["padding"]))
        if op == "linear":
            return run_linear(x, node.arrays["weight"],
                              node.arrays.get("bias"))
        if op == "conv2d":
            return run_conv2d(x, node.arrays["weight"],
                              node.arrays.get("bias"),
                              tuple(node.attrs["stride"]),
                              tuple(node.attrs["padding"]))
        raise ModelPlanError(f"unknown graph op {op!r} (node {node.id})")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable node list (one line per op, with plan shapes).

        Once :meth:`compile` has run, the compiled schedule is appended:
        fusion groups, schedule order, and the arena footprint of every
        batch shape executed so far.
        """
        lines = [f"ModelPlan({self.name or 'model'}, dtype={self.dtype}, "
                 f"{self.n_cim_layers} CIM layers, {len(self.nodes) - 1} ops)"]
        for node in self.nodes[1:]:
            detail = ""
            if node.op == "cim":
                plan = self.layer_plans[node.plan_index]
                detail = f" -> {plan.layer_type}[{plan.out_channels}ch]"
            lines.append(f"  %{node.id:<3} {node.op:<16} "
                         f"({', '.join(f'%{i}' for i in node.inputs)})"
                         f" {node.name}{detail}")
        if self._compiled is not None:
            lines.append(self._compiled.summary())
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialize to a single ``.npz``: arrays + a ``__manifest__`` JSON entry."""
        save_model_plan(self, path)

    @classmethod
    def load(cls, path, mode: str = "float") -> "ModelPlan":
        """Rebuild a :class:`ModelPlan` saved by :meth:`save`."""
        return load_model_plan(path, mode=mode)

    @property
    def compiled(self):
        """The cached :meth:`compile` result, or ``None`` before compiling."""
        return self._compiled


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def compile_model_plan(model: Module, calibrate=None, dtype="float64",
                       name: str = "") -> ModelPlan:
    """Capture a whole frozen/calibrated model into a :class:`ModelPlan`.

    Parameters
    ----------
    model:
        A module tree containing CIM layers (frozen wrappers or the bare QAT
        layers — both compile through the same stage list).  Composite
        modules outside the built-in leaf set must provide an
        ``export_graph(builder, node)`` hook.
    calibrate:
        Optional example batch; when given, one eval forward runs first so
        lazily-initialized LSQ scales observe data.  Without it, compiling a
        model with uncalibrated quantizers raises
        :class:`~repro.engine.plan.PlanNotReadyError`.
    dtype:
        Execution precision of the artifact: ``"float64"`` (bit-exact vs the
        frozen in-process model) or ``"float32"`` (half the memory traffic).
    name:
        Stored in the manifest; defaults to the model's class name.
    """
    dtype = normalize_dtype(dtype)
    model.eval()
    if calibrate is not None:
        with no_grad():
            model(calibrate if isinstance(calibrate, Tensor)
                  else Tensor(np.asarray(calibrate, dtype=np.float64)))
    builder = GraphBuilder(dtype)
    output_id = builder.emit(model, builder.input_id)
    return ModelPlan(nodes=builder.nodes, layer_plans=builder.layer_plans,
                     output_id=output_id, dtype=dtype,
                     name=name or type(model).__name__)


# --------------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------------- #
def save_model_plan(plan: ModelPlan, path) -> None:
    """Write a :class:`ModelPlan` to one ``.npz`` archive.

    Layout: a ``__manifest__`` JSON entry (format tag, dtype, node graph,
    per-layer metadata) plus flat array entries named ``node{i}.{field}`` and
    ``layer{j}.{field}`` — see ``docs/engine.md`` for the full schema.
    """
    arrays: Dict[str, np.ndarray] = {}
    node_docs = []
    for node in plan.nodes:
        doc = {"id": node.id, "op": node.op, "name": node.name,
               "inputs": node.inputs, "attrs": node.attrs,
               "arrays": sorted(node.arrays)}
        if node.op == "cim":
            doc["plan_index"] = node.plan_index
        node_docs.append(doc)
        for key, value in node.arrays.items():
            arrays[f"node{node.id}.{key}"] = value
    layer_docs = []
    for index, layer_plan in enumerate(plan.layer_plans):
        layer_docs.append(plan_meta(layer_plan))
        for key, value in plan_arrays(layer_plan).items():
            arrays[f"layer{index}.{key}"] = value
    manifest = {
        "format": MODEL_PLAN_FORMAT,
        "version": MODEL_PLAN_VERSION,
        "name": plan.name,
        "dtype": plan.dtype,
        "output": plan.output_id,
        "nodes": node_docs,
        "layers": layer_docs,
    }
    np.savez(path, __manifest__=np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8), **arrays)


def load_model_plan(path, mode: str = "float", compile: bool = False):
    """Rebuild a :class:`ModelPlan` from a :func:`save_model_plan` archive.

    Pure data path: no QAT model, layer, or quantizer objects are
    constructed.  ``mode`` selects the execution route of the returned plan
    (see :meth:`ModelPlan.set_mode`); ``"int"`` raises on v1 archives, which
    carry no requant constants.  ``compile=True`` returns
    :meth:`ModelPlan.compile`'s scheduled executor instead of the
    interpreter — same ``execute`` surface, so runners and servers pick it
    up unchanged.  Raises :class:`ModelPlanError` on a corrupted manifest,
    an unknown format/version, or missing array entries.
    """
    with np.load(path) as archive:
        if "__manifest__" not in archive.files:
            raise ModelPlanError(f"{path}: not a model-plan archive "
                                 "(no __manifest__ entry)")
        try:
            manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ModelPlanError(f"{path}: corrupted manifest: {error}") from error
        stored = {key: archive[key] for key in archive.files
                  if key != "__manifest__"}
    if not isinstance(manifest, dict) or manifest.get("format") != MODEL_PLAN_FORMAT:
        raise ModelPlanError(f"{path}: corrupted manifest: missing format tag "
                             f"{MODEL_PLAN_FORMAT!r}")
    if manifest.get("version") not in SUPPORTED_MODEL_PLAN_VERSIONS:
        raise ModelPlanError(f"{path}: unsupported model-plan version "
                             f"{manifest.get('version')!r} (expected one of "
                             f"{sorted(SUPPORTED_MODEL_PLAN_VERSIONS)})")
    try:
        layer_plans = []
        for index, meta in enumerate(manifest["layers"]):
            arrays = {key.split(".", 1)[1]: value for key, value in stored.items()
                      if key.startswith(f"layer{index}.")}
            layer_plans.append(plan_from_parts(meta, arrays))
        nodes = []
        for doc in manifest["nodes"]:
            node = GraphNode(id=int(doc["id"]), op=doc["op"],
                             inputs=[int(i) for i in doc["inputs"]],
                             name=doc.get("name", ""),
                             attrs=doc.get("attrs", {}),
                             plan_index=int(doc.get("plan_index", -1)))
            for key in doc.get("arrays", []):
                node.arrays[key] = stored[f"node{node.id}.{key}"]
            nodes.append(node)
        plan = ModelPlan(nodes=nodes, layer_plans=layer_plans,
                         output_id=int(manifest["output"]),
                         dtype=normalize_dtype(manifest.get("dtype", "float64")),
                         name=manifest.get("name", ""))
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
        raise ModelPlanError(f"{path}: corrupted manifest: {error}") from error
    if mode != "float":
        plan.set_mode(mode)
    if compile:
        return plan.compile()
    return plan


def load_plan(path, mode: str = "float", compile: bool = False):
    """Load any engine artifact: a :class:`ModelPlan` or a single layer plan.

    Dispatches on the archive contents — model plans carry a
    ``__manifest__`` entry, per-layer plans a ``__meta__`` entry — so
    deployment code needs one entry point regardless of what was saved.
    ``mode="int"`` returns the plan switched to the integer execution route
    (raises on float-only artifacts saved before the integer path existed).
    ``compile=True`` returns the scheduled
    :class:`~repro.engine.compiler.CompiledPlan` executor for model plans;
    per-layer plans have no op graph to schedule, so the flag is a no-op
    for them.
    """
    with np.load(path) as archive:
        files = set(archive.files)
    if "__manifest__" in files:
        return load_model_plan(path, mode=mode, compile=compile)
    if "__meta__" in files:
        return _load_layer_plan(path, mode=mode)
    raise ModelPlanError(f"{path}: not an engine artifact "
                         "(expected a __manifest__ or __meta__ entry)")
