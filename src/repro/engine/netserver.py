"""Network serving front end: HTTP/1.1 over :class:`~repro.engine.server.PlanServer`.

:class:`~repro.engine.server.PlanServer` is in-process only — callers must
hold the plan object and speak ``submit``/futures.  :class:`NetServer` puts
that stack behind a socket so anything that can POST JSON can be a client,
and adds the three things a wire boundary makes necessary:

* **multi-model tenancy** — each :meth:`NetServer.add_model` call mounts one
  artifact (path or in-memory plan, any ``mode=`` / ``compile=``
  combination) as ``POST /v1/models/{name}/predict``, backed by its own
  :class:`~repro.engine.server.PlanServer` (private batcher, shard pool and
  caches), with artifact paths deduplicated through
  :func:`~repro.engine.server.load_plan_cached`;
* **admission control** — when a model's bounded request queue cannot take a
  request's samples, the request is rejected *immediately* with
  ``503 Retry-After`` instead of blocking the accept loop; accepted
  requests therefore see bounded queueing, not a collapsing backlog
  (pinned by ``benchmarks/bench_netserver_slo.py``);
* **SLO instrumentation** — every request's latency is split into
  queue-wait vs compute (via the ``future.timing`` stamps the shard workers
  attach) and recorded into
  :class:`~repro.engine.latency.LatencyHistogram` instances;
  ``GET /metrics`` exports p50/p95/p99 per model next to the existing
  ``stats_report()`` counters, and the request counters conserve:
  ``accepted + rejected == offered``.

Routes (all bodies JSON, schema in :mod:`repro.engine.wire`):

=======  ================================  =====================================
Method   Path                              Meaning
=======  ================================  =====================================
GET      ``/healthz``                      liveness + mounted model names
GET      ``/metrics``                      full serving metrics document
POST     ``/v1/models/{name}/predict``     run a ``(N, *sample)`` input batch
POST     ``/v1/models/{name}/restart``     replace the model's shard pool
POST     ``/v1/models/{name}/reload``      zero-downtime rolling artifact swap
=======  ================================  =====================================

Serving lifecycle: ``restart`` is the blunt recovery tool (old pool closed
in place), ``reload`` is the zero-downtime path — the replacement artifact
is loaded and probe-validated *before* an atomic swap under the admission
lock, the old pool drains in the background (no accepted request dropped,
bit-identical responses across the swap), and a bad artifact is refused
with 409 while the old pool keeps serving.  Mounting a model with
``max_shards=N`` attaches an :class:`Autoscaler` that grows the shard pool
under queue pressure and shrinks it back when idle; scale events and the
artifact/reload version are visible in ``/metrics``.

Error surface: 400 broken body, 404 unknown route/model, 411 missing
length, 413 oversized body or batch, 422 well-formed input the model cannot
execute (shape mismatch — validated cheaply by running a zero-row probe
batch through the plan before anything queues), 503 saturated / shutting
down / every shard dead, 500 execution failure (exactly the affected
requests — the server itself stays up, which
``tests/engine/test_netserver_faults.py`` pins by following every injected
fault with a successful request).

Transport: stdlib ``http.server.ThreadingHTTPServer`` (one thread per
connection, keep-alive on) — no third-party dependency, GIL released inside
the NumPy GEMMs where the time actually goes.  Client disconnects are
swallowed per-connection (counted in ``/metrics``) and never take the
server down.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import urlparse

import numpy as np

from . import wire
from .latency import LatencyHistogram
from .server import PlanServer, ServerClosed

__all__ = ["NetServer", "ModelEndpoint", "EndpointCounters", "Saturated",
           "Autoscaler"]


class Saturated(RuntimeError):
    """A request refused by admission control (mapped to 503 + Retry-After)."""

    def __init__(self, detail: str, retry_after_s: float):
        super().__init__(detail)
        self.detail = detail
        self.retry_after_s = retry_after_s


class EndpointCounters:
    """Thread-safe request accounting for one served model.

    The conservation contract — every *offered* request is classified as
    exactly one of *accepted* or *rejected*, and every accepted request
    eventually lands in *completed* or *failed* — is what makes the counters
    trustworthy for capacity math; ``tests/engine/test_netserver_load.py``
    asserts it over a live socket.  The same sum holds at sample
    granularity (``samples_offered == samples_accepted +
    samples_rejected``): a request whose submission fails partway is
    withdrawn and counted wholly rejected, never half-accepted.
    ``bad_requests`` counts bodies refused before admission (400/413/422)
    and is deliberately outside the conservation sum, as are the lifecycle
    counters (``restarts``, ``reloads``, ``scale_ups``, ``scale_downs``).
    """

    FIELDS = ("offered", "accepted", "rejected", "completed", "failed",
              "bad_requests", "samples_offered", "samples_accepted",
              "samples_rejected", "cache_hits", "restarts", "reloads",
              "scale_ups", "scale_downs")

    def __init__(self):
        self._lock = threading.Lock()
        for field in self.FIELDS:
            setattr(self, field, 0)

    def add(self, **fields: int) -> None:
        """Atomically bump the named counters by the given amounts."""
        with self._lock:
            for name, amount in fields.items():
                setattr(self, name, getattr(self, name) + amount)

    def to_dict(self) -> dict:
        """A mutually consistent snapshot of every counter.
        Thread-safe: reads under the internal lock."""
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}


def _stat_artifact(source) -> Optional[dict]:
    """The artifact identity of a path-backed plan source, ``None`` otherwise.

    Mtime and size are the same keys :func:`~repro.engine.server.load_plan_cached`
    caches on, so two ``/metrics`` readings with equal artifact blocks are
    guaranteed to describe the same parsed plan bytes.
    """
    if not isinstance(source, (str, os.PathLike)):
        return None
    path = os.path.abspath(os.fspath(source))
    stat = os.stat(path)
    return {"path": path, "mtime_ns": stat.st_mtime_ns,
            "size_bytes": stat.st_size}


class ModelEndpoint:
    """One mounted model: a :class:`PlanServer` plus wire-side accounting.

    Constructed through :meth:`NetServer.add_model`.  The endpoint owns
    admission control (one lock serializes capacity checks against submits,
    so an admitted request never blocks on a full queue), the per-request
    latency histograms, and the serving-lifecycle machinery: restart (a
    fresh shard pool from the retained plan source — the recovery path when
    process shards die), rolling :meth:`reload` (probe-validated atomic
    swap to a new artifact with a background drain of the old pool), and —
    when ``max_shards`` is set — the :class:`Autoscaler` controller thread
    that grows and shrinks the shard pool with load.

    Lock map (declared below for the static analyzer): ``_drains`` is
    guarded by ``_reload_lock``.  ``_known_shapes`` is deliberately *not*
    declared — it is a copy-on-write ``frozenset`` replaced wholesale
    under ``_probe_lock``, so the membership fast path reads a stable
    immutable snapshot without locking.
    """

    _GUARDED_BY = {"_drains": "_reload_lock"}

    def __init__(self, name: str, plan_source, server_kwargs: dict,
                 max_request_samples: Optional[int] = None,
                 request_timeout_s: float = 60.0,
                 max_shards: Optional[int] = None,
                 autoscale: Optional[dict] = None):
        self.name = name
        self._plan_source = plan_source
        self._server_kwargs = dict(server_kwargs)
        self.server = PlanServer(plan_source, **self._server_kwargs)
        self._artifact = _stat_artifact(plan_source)
        queue_size = self.server.batcher.queue_size
        self.max_request_samples = min(max_request_samples or queue_size,
                                       queue_size)
        self.request_timeout_s = float(request_timeout_s)
        self.counters = EndpointCounters()
        self.latency: Dict[str, LatencyHistogram] = {
            "total": LatencyHistogram(),
            "queue": LatencyHistogram(),
            "compute": LatencyHistogram(),
        }
        self._admission = threading.Lock()
        self._probe_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._known_shapes: frozenset = frozenset()   # copy-on-write
        self._drains: list = []
        self.autoscaler: Optional[Autoscaler] = None
        if max_shards is not None:
            self.autoscaler = Autoscaler(self, max_shards=max_shards,
                                         **(autoscale or {}))

    # ------------------------------------------------------------------ #
    def _validate_sample_shape(self, batch: np.ndarray) -> None:
        """422 unless the plan can execute this sample shape.

        A zero-row probe batch runs the whole graph at zero cost (the
        zero-batch path is part of the engine contract since PR 4), so a
        wrong spatial size or channel count fails *here*, with the plan's
        own error message, instead of poisoning a shard mid-batch.  Each
        distinct accepted shape is probed once and then remembered.

        Probes are serialized under one lock: the probe executes on the
        endpoint's *shared* plan (possibly compiled and arena-backed, and
        ``plan.execute`` is only safe concurrently when each caller owns
        its workspace — which the probe does not), so two handler threads
        must never run it at the same time.  The remembered-shape fast path
        stays lock-free.
        """
        shape = tuple(int(dim) for dim in batch.shape[1:])
        if shape in self._known_shapes:
            return
        with self._probe_lock:
            if shape in self._known_shapes:   # probed while we waited
                return
            probe = np.zeros((0,) + shape, dtype=self.server.plan.np_dtype)
            try:
                self.server.plan.execute(probe)
            except Exception as error:   # noqa: BLE001 — classified as 422
                raise wire.UnprocessableInput(
                    f"model {self.name!r} cannot execute sample shape "
                    f"{shape}: {type(error).__name__}: {error}") from error
            self._known_shapes = self._known_shapes | {shape}

    def _admit(self, batch: np.ndarray) -> List:
        """Classify the request as accepted (submitting it) or rejected.

        Holding the admission lock across check-then-submit means capacity
        seen by the check cannot be stolen by a sibling handler thread, so
        ``submit(timeout=0)`` never spuriously times out — the queue only
        drains concurrently.  Raises :class:`Saturated` (503) on a full
        queue and :class:`ServerClosed` (503) while shutting down or after
        every shard died.

        Conservation holds at request *and* sample level through every exit:
        a submission that fails partway (shards dying mid-call) is withdrawn
        by :meth:`PlanServer.submit_many` itself, so the whole request is
        counted rejected — never half-accepted with reader-less samples
        left executing.
        """
        n = int(batch.shape[0])
        batcher = self.server.batcher
        with self._admission:
            self.counters.add(offered=1, samples_offered=n)
            if batcher.pending + n > batcher.queue_size:
                self.counters.add(rejected=1, samples_rejected=n)
                raise Saturated(
                    f"model {self.name!r} queue is full "
                    f"({batcher.pending}/{batcher.queue_size} pending, "
                    f"{n} samples offered); retry shortly",
                    retry_after_s=max(0.05, 2.0 * batcher.max_wait))
            try:
                futures = self.server.submit_many(batch, timeout=0.0)
            except ServerClosed:
                self.counters.add(rejected=1, samples_rejected=n)
                raise
            except TimeoutError as error:
                # capacity vanished despite the check (e.g. the pool was
                # swapped or a shard died mid-submit); the partial prefix
                # was withdrawn — classify as a clean saturation reject
                self.counters.add(rejected=1, samples_rejected=n)
                raise Saturated(
                    f"model {self.name!r} could not take all {n} samples "
                    "atomically; retry shortly",
                    retry_after_s=max(0.05, 2.0 * batcher.max_wait),
                ) from error
            self.counters.add(accepted=1, samples_accepted=n)
        return futures

    def predict(self, body: bytes):
        """Decode, validate, admit, execute and time one predict request.

        Returns ``(response_body_bytes, timing_ms)``.  Raises
        :class:`~repro.engine.wire.WireError` (4xx), :class:`Saturated` /
        :class:`~repro.engine.server.ServerClosed` (503) or lets execution
        errors (500, exactly this request's samples) propagate — the caller
        maps each to its HTTP status.

        Thread-safe: every handler thread calls this concurrently;
        admission is serialized under the admission lock and the counters
        and histograms take their own locks.
        """
        t_start = time.monotonic()
        try:
            batch = wire.decode_predict_request(
                body, self.server.plan.np_dtype,
                max_samples=self.max_request_samples)
            self._validate_sample_shape(batch)
        except wire.WireError:
            self.counters.add(bad_requests=1)
            raise
        futures = self._admit(batch)
        # one shared deadline for the whole request: N queued samples used
        # to get request_timeout_s *each*, letting a request overstay its
        # budget N-fold before the 504
        deadline = time.monotonic() + self.request_timeout_s
        try:
            rows = [future.result(
                timeout=max(0.0, deadline - time.monotonic()))
                for future in futures]
        except Exception:
            self.counters.add(failed=1)
            self.server._abandon(futures)   # free the still-queued tail
            raise
        timings = [getattr(future, "timing", None) for future in futures]
        known = [timing for timing in timings if timing is not None]
        queue_s = max((timing.queue_s for timing in known), default=0.0)
        compute_s = max((timing.compute_s for timing in known), default=0.0)
        total_s = time.monotonic() - t_start
        self.latency["total"].record(total_s)
        self.latency["queue"].record(queue_s)
        self.latency["compute"].record(compute_s)
        self.counters.add(
            completed=1,
            cache_hits=sum(1 for timing in known if timing.cached))
        timing_ms = {"total": total_s * 1e3, "queue": queue_s * 1e3,
                     "compute": compute_s * 1e3}
        return (wire.encode_predict_response(self.name, np.stack(rows),
                                             timing_ms),
                timing_ms)

    # ------------------------------------------------------------------ #
    def restart(self) -> None:
        """Replace the shard pool with a fresh one from the retained source.

        The recovery path after shard death: the old :class:`PlanServer` is
        closed (drained where possible — a pool whose shards all died has
        nothing left to drain) and a new one is built with the original
        construction arguments.  In-flight requests against the old pool
        fail with their pool's error; requests admitted after the swap are
        served by the new shards.  For a zero-downtime swap to a *healthy*
        pool use :meth:`reload` instead.

        Thread-safe: the swap happens under the admission lock, so every
        request is admitted into exactly one pool.
        """
        with self._admission:
            old = self.server
            self.server = PlanServer(self._plan_source, **self._server_kwargs)
            self._artifact = _stat_artifact(self._plan_source)
            with self._probe_lock:
                self._known_shapes = frozenset()   # the rebuilt plan may differ
            self.counters.add(restarts=1)
        try:
            old.close(timeout=10.0)
        except TimeoutError:
            pass   # old pool keeps draining in the background; new pool serves

    def _probe_validate(self, server: PlanServer) -> None:
        """Run every shape this endpoint has served through a fresh pool.

        Zero-row probes, so validation is free; a replacement artifact that
        cannot execute what live clients are sending is refused *before*
        any swap."""
        with self._probe_lock:
            shapes = sorted(self._known_shapes)
        for shape in shapes:
            probe = np.zeros((0,) + shape, dtype=server.plan.np_dtype)
            server.plan.execute(probe)

    def reload(self, path: Optional[str] = None) -> dict:
        """Zero-downtime rolling swap of the serving pool (and artifact).

        Builds a completely fresh :class:`PlanServer` from ``path`` (or the
        retained mount source — re-stat'ed, so a rewritten ``.npz`` at the
        same path loads its new bytes through the plan cache), validates it
        with zero-row probes of every sample shape this endpoint has
        served, and only then swaps it in **atomically under the admission
        lock** — every request is admitted into exactly one pool, before or
        after the swap, never between.  The old pool drains in a background
        thread: requests it accepted hold futures into it and complete
        bit-identically; nothing accepted is ever dropped.  The probe-shape
        cache is invalidated (the new plan revalidates from scratch) and
        the ``/metrics`` plan block is re-versioned (artifact mtime/size +
        reload counter).

        A reload that fails — unreadable or corrupt artifact, probe
        failure — raises :class:`~repro.engine.wire.ReloadRejected` (409)
        and leaves the serving pool untouched.
        """
        with self._reload_lock:             # swaps are strictly sequential
            source = self._plan_source if path is None else path
            label = (source if isinstance(source, (str, os.PathLike))
                     else type(source).__name__)
            try:
                artifact = _stat_artifact(source)
                fresh = PlanServer(source, **self._server_kwargs)
            except Exception as error:   # noqa: BLE001 — classified as 409
                raise wire.ReloadRejected(
                    f"model {self.name!r} reload from {label!r} failed "
                    f"before any swap: {type(error).__name__}: {error}; "
                    "the current pool keeps serving") from error
            try:
                self._probe_validate(fresh)
            except Exception as error:   # noqa: BLE001 — classified as 409
                fresh.close()
                raise wire.ReloadRejected(
                    f"model {self.name!r} reload from {label!r} failed "
                    f"probe validation: {type(error).__name__}: {error}; "
                    "the current pool keeps serving") from error
            with self._admission:
                old = self.server
                self.server = fresh
                self._plan_source = source
                self._artifact = artifact
                with self._probe_lock:
                    self._known_shapes = frozenset()
                self.counters.add(reloads=1)
            # drain the old pool off the request path: its accepted
            # requests resolve through their futures as the workers finish
            drain = threading.Thread(target=old.close,
                                     name=f"drain-{self.name}", daemon=True)
            drain.start()
            self._drains = [d for d in self._drains if d.is_alive()]
            self._drains.append(drain)
            return {"model": self.name, "reloaded": True,
                    "reloads": self.counters.to_dict()["reloads"],
                    "n_shards": fresh.n_shards, "artifact": artifact}

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop the autoscaler, drain the pool, join pending reload drains.
        Thread-safe: the drain list is snapshotted under the reload lock."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self.server.close(timeout=timeout)
        with self._reload_lock:
            drains = list(self._drains)
        for drain in drains:
            drain.join(timeout=10.0)

    def metrics(self) -> dict:
        """This endpoint's full metrics document (one entry of ``/metrics``).
        Thread-safe: built from locked snapshots (counters, histograms,
        batcher stats); distinct blocks may straddle concurrent updates."""
        plan = self.server.plan
        counters = self.counters.to_dict()
        return {
            "plan": {
                "name": getattr(plan, "name", "") or self.name,
                "dtype": str(getattr(plan, "np_dtype", "")),
                "mode": getattr(plan, "mode", "float"),
                "compiled": type(plan).__name__ == "CompiledPlan",
                # a version block that changes iff the served bytes can:
                # artifact identity (stat keys of the plan cache) plus the
                # lifetime reload count of this endpoint
                "version": {
                    "reloads": counters["reloads"],
                    "artifact": self._artifact,
                },
            },
            "admission": {
                "queue_size": self.server.batcher.queue_size,
                "pending": self.server.batcher.pending,
                "max_request_samples": self.max_request_samples,
            },
            "autoscaler": (self.autoscaler.to_dict()
                           if self.autoscaler is not None
                           else {"enabled": False}),
            "requests": counters,
            "latency": {kind: histogram.to_dict()
                        for kind, histogram in self.latency.items()},
            "serving": self.server.stats_report(),
        }


class Autoscaler:
    """Per-endpoint shard-pool controller: grow on queue pressure, shrink on idle.

    A daemon thread samples the endpoint's batcher every ``interval_s`` and
    applies two rules:

    * **grow** — pending queue depth at or above ``up_queue_frac`` of the
      queue bound (the backlog is building faster than the pool drains it)
      adds one shard, up to ``max_shards``;
    * **shrink** — no pending work and no new request for ``idle_s``
      retires one shard, down to the pool's mounted size (``min_shards``).

    Each decision is followed by a ``cooldown_s`` hold so the effect of the
    last action is observed before the next one (no thrashing).  Scale
    events land in the endpoint counters (``scale_ups``/``scale_downs``)
    and the controller re-reads ``endpoint.server`` every tick, so it
    follows the pool across restarts and rolling reloads.  Stop with
    :meth:`stop`; ticks that race a pool swap or shutdown are skipped, not
    fatal.
    """

    def __init__(self, endpoint: ModelEndpoint, max_shards: int,
                 interval_s: float = 0.05, up_queue_frac: float = 0.5,
                 idle_s: float = 2.0, cooldown_s: float = 0.25):
        if max_shards < endpoint.server.n_shards:
            raise ValueError(
                f"max_shards={max_shards} is below the mounted pool size "
                f"{endpoint.server.n_shards}")
        if not 0.0 < up_queue_frac <= 1.0:
            raise ValueError("up_queue_frac must be in (0, 1]")
        self.endpoint = endpoint
        self.max_shards = int(max_shards)
        self.min_shards = endpoint.server.n_shards
        self.interval_s = float(interval_s)
        self.up_queue_frac = float(up_queue_frac)
        self.idle_s = float(idle_s)
        self.cooldown_s = float(cooldown_s)
        self.errors = 0
        self._last_busy = time.monotonic()
        self._last_requests: Optional[int] = None
        self._hold_until = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"autoscale-{endpoint.name}")
        self._thread.start()

    def _tick(self, now: float) -> None:
        server = self.endpoint.server       # re-read: reloads swap the pool
        batcher = server.batcher
        pending = batcher.pending
        requests = batcher.stats_snapshot().requests
        if pending > 0 or requests != self._last_requests:
            self._last_busy = now
        self._last_requests = requests
        if now < self._hold_until:
            return
        n_shards = server.n_shards
        high_water = max(1, int(self.up_queue_frac * batcher.queue_size))
        if pending >= high_water and n_shards < self.max_shards:
            server.add_shard()
            self.endpoint.counters.add(scale_ups=1)
            self._hold_until = now + self.cooldown_s
        elif (n_shards > self.min_shards
              and now - self._last_busy >= self.idle_s):
            server.retire_shard()
            self.endpoint.counters.add(scale_downs=1)
            self._hold_until = now + self.cooldown_s

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._tick(time.monotonic())
            except Exception:   # noqa: BLE001 — raced a swap/shutdown
                self.errors += 1

    def stop(self) -> None:
        """Halt the controller thread (idempotent; joins it briefly)."""
        self._stop.set()
        self._thread.join(timeout=5.0)

    def to_dict(self) -> dict:
        """The ``/metrics`` autoscaler block: configuration + liveness.
        Thread-safe: reads immutable config plus a racy-but-monotonic
        error count."""
        return {
            "enabled": True,
            "alive": self._thread.is_alive(),
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "interval_s": self.interval_s,
            "up_queue_frac": self.up_queue_frac,
            "idle_s": self.idle_s,
            "cooldown_s": self.cooldown_s,
            "errors": self.errors,
        }


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
class _HttpServer(ThreadingHTTPServer):
    """Threading HTTP server that treats client aborts as noise, not errors."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a connection burst beyond
    # it stalls clients for a full SYN retransmit (~1s) or resets them.
    request_queue_size = 128
    net: "NetServer" = None   # attached by NetServer right after construction

    def handle_error(self, request, client_address):
        """Count client-side connection drops; re-raise nothing, log others."""
        import sys
        error = sys.exc_info()[1]
        if isinstance(error, (ConnectionError, socket.timeout, OSError)):
            if self.net is not None:
                self.net._note_disconnect()
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes, body limits, JSON responses, quiet logging."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-netserver/1"
    timeout = 60.0                      # per-connection socket timeout
    # The handler writes status+headers and the JSON body as separate
    # segments; with Nagle on, the body segment stalls behind the client's
    # delayed ACK (~40ms per keep-alive request at small payloads).
    disable_nagle_algorithm = True

    # BaseHTTPRequestHandler logs every request to stderr by default; a
    # serving benchmark must not measure terminal I/O.
    def log_message(self, format, *args):   # noqa: A002 — stdlib signature
        """Silence per-request stderr logging (metrics replace it)."""

    @property
    def net(self) -> "NetServer":
        """The owning :class:`NetServer` (attached to the HTTP server)."""
        return self.server.net

    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, body: bytes,
                   headers: Optional[dict] = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (ConnectionError, socket.timeout, BrokenPipeError):
            self.net._note_disconnect()
            self.close_connection = True

    def _send_error(self, status: int, reason: str, detail: str,
                    headers: Optional[dict] = None) -> None:
        self._send_json(status, wire.encode_error(status, reason, detail),
                        headers)

    def _read_body(self) -> Optional[bytes]:
        """Read the request body within limits; ``None`` means already handled."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._send_error(411, "length required",
                             "predict requests must carry Content-Length")
            return None
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError(length_header)
        except ValueError:
            self._send_error(400, "bad request",
                             f"invalid Content-Length {length_header!r}")
            return None
        if length > self.net.max_body_bytes:
            # refuse without reading; the unread body forces a fresh connection
            self.close_connection = True
            self._send_error(413, "payload too large",
                             f"body of {length} bytes exceeds the "
                             f"{self.net.max_body_bytes}-byte limit",
                             headers={"Connection": "close"})
            return None
        try:
            body = self.rfile.read(length)
        except (ConnectionError, socket.timeout):
            self.net._note_disconnect()
            self.close_connection = True
            return None
        if len(body) < length:
            # client hung up mid-request; answering is best-effort
            self.net._note_disconnect()
            self.close_connection = True
            self._send_error(400, "bad request",
                             f"body truncated at {len(body)}/{length} bytes")
            return None
        return body

    # ------------------------------------------------------------------ #
    def do_GET(self):   # noqa: N802 — stdlib naming
        """Serve ``/healthz`` and ``/metrics``."""
        path = urlparse(self.path).path
        if path == "/healthz":
            self._send_json(200, json.dumps(self.net.health()).encode())
        elif path == "/metrics":
            self._send_json(200, json.dumps(self.net.metrics()).encode())
        else:
            self._send_error(404, "not found", f"no route for GET {path}")

    def _read_optional_body(self) -> Optional[bytes]:
        """Like :meth:`_read_body` but a missing Content-Length means empty.

        Lifecycle requests (reload) take an optional JSON body; forcing a
        411 on the bare-POST common case would be protocol pedantry.  The
        size cap still applies.
        """
        if self.headers.get("Content-Length") is None:
            return b""
        return self._read_body()

    def do_POST(self):   # noqa: N802 — stdlib naming
        """Serve ``/v1/models/{name}/`` ``predict`` / ``restart`` / ``reload``."""
        path = urlparse(self.path).path
        parts = [part for part in path.split("/") if part]
        if len(parts) != 4 or parts[:2] != ["v1", "models"] \
                or parts[3] not in ("predict", "restart", "reload"):
            self._send_error(404, "not found", f"no route for POST {path}")
            return
        name, action = parts[2], parts[3]
        endpoint = self.net.endpoint(name)
        if endpoint is None:
            self._send_error(404, "not found",
                             f"no model {name!r} is mounted; available: "
                             f"{sorted(self.net.model_names())}")
            return
        if action == "restart":
            endpoint.restart()
            self._send_json(200, json.dumps(
                {"model": name, "restarted": True,
                 "n_shards": endpoint.server.n_shards}).encode())
            return
        if action == "reload":
            body = self._read_optional_body()
            if body is None:
                return
            try:
                info = endpoint.reload(wire.decode_reload_request(body))
            except wire.WireError as error:   # 400 bad body / 409 rejected
                self._send_error(error.status, error.reason, error.detail)
                return
            self._send_json(200, json.dumps(info).encode())
            return
        body = self._read_body()
        if body is None:
            return
        try:
            response, _timing = endpoint.predict(body)
        except wire.WireError as error:
            self._send_error(error.status, error.reason, error.detail)
            return
        except Saturated as error:
            self._send_error(
                503, "saturated", error.detail,
                headers={"Retry-After":
                         f"{max(1, round(error.retry_after_s)):d}"})
            return
        except ServerClosed as error:
            self._send_error(503, "unavailable",
                             f"model {name!r} is not serving: {error}; "
                             "restart the model or retry later",
                             headers={"Retry-After": "1"})
            return
        except TimeoutError as error:
            self._send_error(504, "deadline exceeded",
                             f"request did not complete within "
                             f"{endpoint.request_timeout_s}s: {error}")
            return
        except Exception as error:   # noqa: BLE001 — shard faults -> 500
            self._send_error(500, "execution failed",
                             f"{type(error).__name__}: {error}")
            return
        self._send_json(200, response)


# --------------------------------------------------------------------------- #
# the front end
# --------------------------------------------------------------------------- #
class NetServer:
    """The multi-model HTTP serving front end.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` (default) binds an ephemeral port —
        read the real one from :attr:`port` / :attr:`url` (how every test
        and the demo runs, so nothing collides).
    max_body_bytes:
        Request bodies larger than this are refused with 413 *before*
        being read (:data:`repro.engine.wire.MAX_BODY_BYTES` by default).

    Lifecycle: construct (binds), :meth:`add_model` any number of times,
    :meth:`start` (accept loop in a daemon thread), :meth:`close` (stop
    accepting, then drain every model's shard pool — the no-drop contract
    of :meth:`PlanServer.close` extends to the wire).  Also a context
    manager: ``with NetServer() as net: ...``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_body_bytes: int = wire.MAX_BODY_BYTES):
        self.max_body_bytes = int(max_body_bytes)
        self._endpoints: Dict[str, ModelEndpoint] = {}
        self._endpoints_lock = threading.Lock()
        self._disconnects = 0
        self._disconnects_lock = threading.Lock()
        self._started_at = time.monotonic()
        self._httpd = _HttpServer((host, port), _Handler)
        self._httpd.net = self
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        """Bound host address (immutable after construction)."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the ephemeral one when constructed with ``port=0``;
        immutable after construction)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target, e.g. ``http://127.0.0.1:43210``
        (immutable after construction)."""
        return f"http://{self.host}:{self.port}"

    def _note_disconnect(self) -> None:
        with self._disconnects_lock:
            self._disconnects += 1

    @property
    def client_disconnects(self) -> int:
        """Connections dropped by clients mid-request/response (survived).
        Thread-safe: reads under the disconnect lock."""
        with self._disconnects_lock:
            return self._disconnects

    # ------------------------------------------------------------------ #
    def add_model(self, name: str, plan, *,
                  max_request_samples: Optional[int] = None,
                  request_timeout_s: float = 60.0,
                  max_shards: Optional[int] = None,
                  autoscale: Optional[dict] = None,
                  **server_kwargs) -> ModelEndpoint:
        """Mount a model at ``/v1/models/{name}/predict``.

        ``plan`` is anything :class:`PlanServer` accepts — an artifact path
        (resolved through the plan cache, honoring ``mode=`` /
        ``compile=``), a :class:`~repro.engine.model_plan.ModelPlan`, or a
        compiled executor.  ``server_kwargs`` are forwarded verbatim to
        :class:`PlanServer` (``n_shards``, ``backend``, ``max_batch``,
        ``max_wait_ms``, ``queue_size``, ``result_cache_entries``,
        ``mode`` ...).  ``max_request_samples`` caps one request's batch
        (at most the queue size — a request that can never be admitted is
        a 413, not an eternal 503); ``request_timeout_s`` bounds how long a
        handler waits for results before answering 504.

        ``max_shards`` enables autoscaling: the pool starts at
        ``n_shards`` and an :class:`Autoscaler` grows it up to
        ``max_shards`` under queue pressure, shrinking back on sustained
        idle; ``autoscale`` tunes the controller (``interval_s``,
        ``up_queue_frac``, ``idle_s``, ``cooldown_s``).

        Thread-safe: the mount table is updated under the endpoints lock;
        a duplicate name is refused (and its endpoint torn down).
        """
        if not name or any(ch in name for ch in "/ \t\n"):
            raise ValueError(f"model name {name!r} must be non-empty and "
                             "contain no slashes or whitespace")
        # `compile` stays inside server_kwargs: the endpoint retains the
        # *path* as its plan source, so restart/reload rebuilds re-resolve
        # the artifact (new bytes included) and still come up compiled
        endpoint = ModelEndpoint(name, plan, server_kwargs,
                                 max_request_samples=max_request_samples,
                                 request_timeout_s=request_timeout_s,
                                 max_shards=max_shards, autoscale=autoscale)
        with self._endpoints_lock:
            if name in self._endpoints:
                endpoint.close()
                raise ValueError(f"model {name!r} is already mounted")
            self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Optional[ModelEndpoint]:
        """The mounted endpoint for ``name`` (``None`` when unknown).
        Thread-safe: reads the mount table under the endpoints lock."""
        with self._endpoints_lock:
            return self._endpoints.get(name)

    def model_names(self) -> List[str]:
        """Names of every mounted model.
        Thread-safe: snapshots the mount table under the endpoints lock."""
        with self._endpoints_lock:
            return list(self._endpoints)

    # ------------------------------------------------------------------ #
    def start(self) -> "NetServer":
        """Start the accept loop in a daemon thread; returns ``self``."""
        if self._closed:
            raise RuntimeError("NetServer is closed")
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="netserver-accept", daemon=True)
            self._serve_thread.start()
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, then drain every model.

        New connections are refused first; requests already admitted into a
        model's queue are served to completion by
        :meth:`PlanServer.close` (per-model ``timeout`` forwarded).  Safe
        to call more than once.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()
        with self._endpoints_lock:
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            endpoint.close(timeout=timeout)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The ``/healthz`` document: liveness plus mounted model names.
        Thread-safe: reads only locked snapshots and immutable state."""
        return {
            "status": "ok",
            "models": sorted(self.model_names()),
            "uptime_s": time.monotonic() - self._started_at,
        }

    def metrics(self) -> dict:
        """The ``/metrics`` document: per-model SLO + serving statistics.

        Per model: the request counters (conserving ``accepted + rejected
        == offered``), the total/queue/compute latency histograms
        (p50/p95/p99 in milliseconds), admission state, and the underlying
        :meth:`PlanServer.stats_report`.

        Thread-safe: the mount table is snapshotted under the endpoints
        lock and every per-model block is built from locked snapshots.
        """
        with self._endpoints_lock:
            endpoints = dict(self._endpoints)
        return {
            "server": {
                "url": self.url,
                "uptime_s": time.monotonic() - self._started_at,
                "client_disconnects": self.client_disconnects,
                "max_body_bytes": self.max_body_bytes,
            },
            "models": {name: endpoint.metrics()
                       for name, endpoint in sorted(endpoints.items())},
        }
