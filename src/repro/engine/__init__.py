"""``repro.engine`` — frozen inference engine for CIM layers.

The QAT layers in :mod:`repro.core` recompute weight quantization,
bit-splitting, tiling and scale broadcasting on every forward call, which is
what training needs but pure waste at deployment time.  This subsystem
compiles each layer into a static :mod:`~repro.engine.plan` once ("freeze
time") and then runs inference through a fused NumPy fast path:

* :func:`freeze` / :func:`thaw` — switch a whole model (or a single layer)
  into eval fast-path mode and back, losslessly;
* :class:`ConvPlan` / :class:`LinearPlan` — the compiled per-layer plans
  (cached integer tiled weights, bit-splits, folded ``s_w * s_p * shift``
  dequantization scales, valid-rows mask) with
  :func:`save_plan` / :func:`load_plan` serialization;
* :class:`FrozenCIMConv2d` / :class:`FrozenCIMLinear` — drop-in wrapper
  modules that execute the plan and transparently fall back to the original
  QAT forward for training, recording, or uncalibrated quantizers.

The fast path is numerically equivalent to the seed layers (same activation
and partial-sum rounding decisions; outputs match to ~1e-12) with or without
partial-sum quantization and device variation — see ``tests/engine/`` and
``benchmarks/bench_engine_speedup.py``.
"""

from .api import freeze, frozen_layers, is_frozen, thaw
from .frozen import FrozenCIMConv2d, FrozenCIMLinear
from .plan import (ConvPlan, LinearPlan, PlanNotReadyError, compile_conv_plan,
                   compile_linear_plan, compile_plan, layer_signature, load_plan,
                   save_plan, signature_ready)

__all__ = [
    "freeze", "thaw", "is_frozen", "frozen_layers",
    "FrozenCIMConv2d", "FrozenCIMLinear",
    "ConvPlan", "LinearPlan", "PlanNotReadyError",
    "compile_plan", "compile_conv_plan", "compile_linear_plan",
    "layer_signature", "signature_ready",
    "save_plan", "load_plan",
]
