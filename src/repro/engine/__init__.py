"""``repro.engine`` — frozen inference engine for CIM layers and models.

The QAT layers in :mod:`repro.core` recompute weight quantization,
bit-splitting, tiling and scale broadcasting on every forward call, which is
what training needs but pure waste at deployment time.  This subsystem
compiles that work out, at two granularities:

* :func:`freeze` / :func:`thaw` — switch a whole model (or a single layer)
  into eval fast-path mode and back, losslessly;
* :class:`ConvPlan` / :class:`LinearPlan` — the compiled per-layer plans
  (cached integer tiled weights, bit-splits, folded ``s_w * s_p * shift``
  dequantization scales) with :func:`save_plan` serialization;
* :class:`FrozenCIMConv2d` / :class:`FrozenCIMLinear` — drop-in wrapper
  modules that execute the plan and transparently fall back to the original
  QAT forward for training, recording, or uncalibrated quantizers;
* :class:`ModelPlan` (:func:`compile_model_plan` / :func:`save_model_plan`)
  — the **model-level artifact**: every layer plan plus folded BatchNorm and
  the inter-layer op graph in one ``.npz`` + JSON manifest, reloadable with
  :func:`load_plan` into a runnable executor without constructing the QAT
  model or its quantizers;
* :class:`CompiledPlan` (``ModelPlan.compile()`` /
  ``load_plan(..., compile=True)``) — the scheduled executor: element-wise
  chains fused into in-place passes plus a liveness-planned buffer arena,
  bit-exact vs the interpreted reference path;
* :class:`InferenceRunner` / :class:`PlanExecutor` — micro-batching over a
  sample stream with reused activation buffers and per-layer timing stats,
  built on the shared batch-execution core;
* :class:`PlanServer` (+ :class:`DynamicBatcher`) — the concurrent serving
  subsystem: per-request ``submit``/futures, dynamic batching (flush on
  ``max_batch`` / ``max_wait_ms``), a pool of thread- or process-backed
  shard executors, bounded-queue backpressure, and an LRU result cache;
  :func:`load_plan_cached` adds an artifact-path plan cache for hot reloads;
* :class:`NetServer` — the HTTP/1.1 network front end over
  :class:`PlanServer`: multi-model tenancy
  (``POST /v1/models/{name}/predict``), admission control (503 +
  ``Retry-After`` on saturated queues), per-request queue/compute latency
  histograms (:class:`LatencyHistogram`) exported on ``GET /metrics``,
  zero-downtime rolling artifact reloads (``POST
  /v1/models/{name}/reload`` — probe-validated atomic pool swap with a
  background drain), optional shard-pool autoscaling
  (:class:`Autoscaler`, mounted via ``max_shards=``) and a graceful drain
  on close; the JSON payload contract lives in :mod:`repro.engine.wire`.

:func:`load_plan` accepts both artifact kinds (model archives carry a
``__manifest__`` entry, layer archives a ``__meta__`` entry).  The fast
paths are numerically equivalent to the seed layers — see ``tests/engine/``,
``benchmarks/bench_engine_speedup.py``,
``benchmarks/bench_runner_throughput.py`` and
``benchmarks/bench_server_concurrency.py``, and ``docs/engine.md`` for the
full lifecycle guide, artifact schema and serving knobs.
"""

from ..core.requant import (RequantConstants, compile_requant,
                            quantize_multiplier, quantize_multipliers,
                            requantize)
from .api import freeze, frozen_layers, is_frozen, thaw
from .compiler import CompiledPlan, FusedStep, compile_plan_graph
from .frozen import FrozenCIMConv2d, FrozenCIMLinear
from .model_plan import (GraphBuilder, GraphNode, ModelPlan, ModelPlanError,
                         compile_model_plan, load_model_plan, load_plan,
                         save_model_plan)
from .plan import (ConvPlan, LinearPlan, PlanNotReadyError, compile_conv_plan,
                   compile_linear_plan, compile_plan, layer_signature,
                   load_plan as load_layer_plan, normalize_dtype, save_plan,
                   signature_ready)
from .latency import LatencyHistogram
from .netserver import (Autoscaler, EndpointCounters, ModelEndpoint,
                        NetServer, Saturated)
from .runner import InferenceRunner, PlanExecutor, RunnerStats
from .scheduler import (DynamicBatcher, Request, RequestTiming,
                        SchedulerClosed, SchedulerStats)
from .server import (LRUCache, PlanServer, ServerClosed, ShardDied,
                     clear_plan_cache, load_plan_cached)
from .wire import (BadRequest, PayloadTooLarge, ReloadRejected,
                   UnprocessableInput, WireError, decode_predict_request,
                   decode_reload_request, encode_error,
                   encode_predict_response)

__all__ = [
    "freeze", "thaw", "is_frozen", "frozen_layers",
    "FrozenCIMConv2d", "FrozenCIMLinear",
    "ConvPlan", "LinearPlan", "PlanNotReadyError",
    "compile_plan", "compile_conv_plan", "compile_linear_plan",
    "layer_signature", "signature_ready", "normalize_dtype",
    "save_plan", "load_plan", "load_layer_plan",
    "GraphBuilder", "GraphNode", "ModelPlan", "ModelPlanError",
    "compile_model_plan", "save_model_plan", "load_model_plan",
    "CompiledPlan", "FusedStep", "compile_plan_graph",
    "InferenceRunner", "PlanExecutor", "RunnerStats",
    "DynamicBatcher", "Request", "RequestTiming", "SchedulerStats",
    "SchedulerClosed",
    "PlanServer", "ServerClosed", "ShardDied", "LRUCache",
    "load_plan_cached", "clear_plan_cache",
    "NetServer", "ModelEndpoint", "EndpointCounters", "Saturated",
    "Autoscaler",
    "LatencyHistogram",
    "WireError", "BadRequest", "PayloadTooLarge", "UnprocessableInput",
    "ReloadRejected",
    "decode_predict_request", "decode_reload_request",
    "encode_predict_response", "encode_error",
    "RequantConstants", "compile_requant", "requantize",
    "quantize_multiplier", "quantize_multipliers",
]
