"""Batched inference runner for model-level engine artifacts.

A :class:`~repro.engine.model_plan.ModelPlan` executes one batch at a time;
serving traffic means feeding it a *stream* of samples at a batch size that
keeps the GEMMs fat.  Two layers of machinery live here:

* :class:`PlanExecutor` — the reusable execution core: it owns the
  per-executor mutable state (the activation-buffer workspace and the
  :class:`RunnerStats` counters) and exposes :meth:`PlanExecutor.execute_batch`,
  the single entry point every batch in the engine goes through.  The
  concurrent :class:`~repro.engine.server.PlanServer` builds one executor per
  shard, so shards never contend on buffers or stats;
* :class:`InferenceRunner` — single-stream micro-batching on top of one
  executor: samples from any iterable are staged into a preallocated batch
  buffer and executed ``batch_size`` at a time (the final partial batch runs
  at its natural size), with per-layer timing accumulated into
  :attr:`InferenceRunner.stats`.

The runner is throughput-oriented, not a scheduler: it preserves input
order, yields one output row per input sample, and leaves concurrency to
:class:`~repro.engine.server.PlanServer` (dynamic batching over sharded
executors).  ``benchmarks/bench_runner_throughput.py`` pins the contract that
micro-batched execution beats a naive per-sample loop by >= 1.5x.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .hotpath import hot_path
from .model_plan import ModelPlan

__all__ = ["InferenceRunner", "PlanExecutor", "RunnerStats",
           "empty_batch_result"]


def empty_batch_result(plan, batch: np.ndarray) -> np.ndarray:
    """Typed empty output for a zero-length batch (shared predict() branch).

    Executes a ``(0, *sample_shape)`` array through the plan so the result
    carries the true output shape and dtype.  The sample axes must be
    present — a bare ``(0,)`` array has no geometry to infer them from and
    raises :class:`ValueError`.
    """
    if batch.ndim < 2:
        raise ValueError(
            "empty predict() input must keep its sample axes, e.g. "
            "shape (0, C, H, W); a bare (0,) array carries no "
            "geometry to infer the output shape from")
    empty = np.empty((0,) + batch.shape[1:], dtype=plan.np_dtype)
    return np.asarray(plan.execute(empty))


@dataclass
class RunnerStats:
    """Aggregated execution statistics of one executor (or a merged roll-up).

    ``seconds`` counts time spent inside plan execution (staging and
    bookkeeping excluded); ``layer_seconds`` / ``layer_calls`` break it down
    per graph node name when timing collection is enabled.

    ``arena_bytes`` / ``arena_blocks`` are resident-buffer gauges, not
    counters: after each batch they hold the executor workspace's current
    footprint — the fixed arena blocks of a compiled plan, or the per-node
    activation buffers of the interpreter.  Merging shard stats sums the
    gauges, giving the total resident across shards.
    """

    samples: int = 0
    batches: int = 0
    seconds: float = 0.0
    layer_seconds: Dict[str, float] = field(default_factory=dict)
    layer_calls: Dict[str, int] = field(default_factory=dict)
    arena_bytes: int = 0
    arena_blocks: int = 0

    @property
    def throughput(self) -> float:
        """Samples per second of plan execution (0.0 before any run)."""
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def per_layer(self) -> List[Tuple[str, float, int]]:
        """``(name, seconds, calls)`` rows, slowest node first."""
        return sorted(((name, secs, self.layer_calls.get(name, 0))
                       for name, secs in self.layer_seconds.items()),
                      key=lambda row: row[1], reverse=True)

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by the benchmark artifacts)."""
        return {
            "samples": self.samples,
            "batches": self.batches,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "arena_bytes": self.arena_bytes,
            "arena_blocks": self.arena_blocks,
            "per_layer": [{"name": name, "seconds": secs, "calls": calls}
                          for name, secs, calls in self.per_layer()],
        }

    def merge(self, other: "RunnerStats") -> "RunnerStats":
        """Accumulate ``other`` into this instance (and return it).

        Used by :meth:`~repro.engine.server.PlanServer.stats_report` to roll
        per-shard stats up into one server-level total.
        """
        self.samples += other.samples
        self.batches += other.batches
        self.seconds += other.seconds
        self.arena_bytes += other.arena_bytes
        self.arena_blocks += other.arena_blocks
        for name, secs in other.layer_seconds.items():
            self.layer_seconds[name] = self.layer_seconds.get(name, 0.0) + secs
        for name, calls in other.layer_calls.items():
            self.layer_calls[name] = self.layer_calls.get(name, 0) + calls
        return self

    def reset(self) -> None:
        """Zero all counters (e.g. after warm-up runs)."""
        self.samples = 0
        self.batches = 0
        self.seconds = 0.0
        self.arena_bytes = 0
        self.arena_blocks = 0
        self.layer_seconds.clear()
        self.layer_calls.clear()


class PlanExecutor:
    """The reusable batch-execution core over one plan.

    Owns everything mutable about executing batches — the activation-buffer
    ``workspace`` reused across calls and the :class:`RunnerStats`
    accumulator — while the plan itself stays read-only shared data.  One
    plan can therefore back many executors concurrently (one per server
    shard) without any cross-executor contention.

    Parameters
    ----------
    plan:
        The model plan (or any object with a compatible
        ``execute(x, timings=..., workspace=...)`` method and ``np_dtype``).
    collect_timings:
        When true (default), per-node wall-clock seconds accumulate into
        :attr:`stats`; disable to shave the bookkeeping off the hot path.
    reuse_buffers:
        When true (default), element-wise graph nodes write into
        preallocated activation buffers reused across batches.  Outputs of a
        buffer-reusing executor are only valid until its next
        :meth:`execute_batch` — copy rows that must outlive the batch.

    The stats accumulator is guarded by ``_stats_lock`` (declared below
    for the static analyzer); the workspace is deliberately unguarded —
    it is owned by whichever single thread drives this executor.
    """

    _GUARDED_BY = {"stats": "_stats_lock"}

    def __init__(self, plan: ModelPlan, collect_timings: bool = True,
                 reuse_buffers: bool = True):
        self.plan = plan
        self.collect_timings = collect_timings
        self.stats = RunnerStats()
        self._workspace: Optional[dict] = {} if reuse_buffers else None
        self._stats_lock = threading.Lock()

    @hot_path
    def execute_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run one ``(N, ...)`` batch through the plan, updating :attr:`stats`.

        Per-batch timings accumulate into a local dict first and merge into
        :attr:`stats` under a lock at the end, so a concurrent
        :meth:`stats_snapshot` (the server's stats report) never observes a
        half-updated batch.  Registered hot: every batch in the engine goes
        through here, so the body allocates nothing itself — execution
        buffers live in the reused workspace.
        """
        timings: Optional[Dict[str, float]] = \
            {} if self.collect_timings else None
        start = time.perf_counter()
        out = self.plan.execute(batch, timings=timings,
                                workspace=self._workspace)
        elapsed = time.perf_counter() - start
        footprint = None
        if self._workspace is not None:
            measure = getattr(self.plan, "workspace_footprint", None)
            if measure is not None:
                footprint = measure(self._workspace)
        with self._stats_lock:
            self.stats.seconds += elapsed
            self.stats.batches += 1
            self.stats.samples += batch.shape[0]
            if footprint is not None:
                self.stats.arena_bytes, self.stats.arena_blocks = footprint
            if timings:
                for name, secs in timings.items():
                    self.stats.layer_seconds[name] = \
                        self.stats.layer_seconds.get(name, 0.0) + secs
                    self.stats.layer_calls[name] = \
                        self.stats.layer_calls.get(name, 0) + 1
        return out

    def stats_snapshot(self) -> RunnerStats:
        """A consistent copy of :attr:`stats`, safe to read while serving.
        Thread-safe: copies under the stats lock, so it never observes a
        half-applied batch update."""
        with self._stats_lock:
            return RunnerStats(samples=self.stats.samples,
                               batches=self.stats.batches,
                               seconds=self.stats.seconds,
                               layer_seconds=dict(self.stats.layer_seconds),
                               layer_calls=dict(self.stats.layer_calls),
                               arena_bytes=self.stats.arena_bytes,
                               arena_blocks=self.stats.arena_blocks)


class InferenceRunner:
    """Micro-batching executor over a :class:`~repro.engine.model_plan.ModelPlan`.

    Parameters
    ----------
    plan:
        The model plan (or any object with a compatible
        ``execute(x, timings=..., workspace=...)`` method).
    batch_size:
        Micro-batch size; the staging buffer is ``(batch_size, *sample_shape)``
        and is allocated on the first sample, then reused.
    collect_timings:
        When true (default), per-node wall-clock seconds accumulate into
        :attr:`stats`; disable to shave the bookkeeping off the hot path.
    reuse_buffers:
        When true (default), element-wise graph nodes write into
        preallocated activation buffers reused across batches.  Output rows
        handed to the caller are always copies, so reuse is invisible.
    mode:
        Optional execution route: ``"float"`` (bit-exact reference) or
        ``"int"`` (fixed-point requantized).  Applied to the plan itself via
        ``plan.set_mode`` — mode is plan state, so it also affects other
        consumers sharing the same plan object.  ``None`` (default) leaves
        the plan's current mode untouched.
    """

    def __init__(self, plan: ModelPlan, batch_size: int = 32,
                 collect_timings: bool = True, reuse_buffers: bool = True,
                 mode: Optional[str] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if mode is not None:
            plan.set_mode(mode)
        self.executor = PlanExecutor(plan, collect_timings=collect_timings,
                                     reuse_buffers=reuse_buffers)
        self.batch_size = int(batch_size)
        self._staging: Optional[np.ndarray] = None

    @property
    def plan(self):
        """The plan the runner serves (delegated to its executor)."""
        return self.executor.plan

    @property
    def stats(self) -> RunnerStats:
        """Execution statistics (delegated to the underlying executor)."""
        return self.executor.stats

    @property
    def collect_timings(self) -> bool:
        """Whether per-layer timings are being collected."""
        return self.executor.collect_timings

    # ------------------------------------------------------------------ #
    def _ensure_staging(self, sample: np.ndarray) -> np.ndarray:
        staging = self._staging
        if (staging is None or staging.shape[1:] != sample.shape
                or staging.dtype != self.plan.np_dtype):
            staging = np.empty((self.batch_size,) + sample.shape,
                               dtype=self.plan.np_dtype)
            self._staging = staging
        return staging

    def _flush(self, count: int) -> np.ndarray:
        return self.executor.execute_batch(self._staging[:count])

    # ------------------------------------------------------------------ #
    def run(self, stream: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Yield one output row per input sample, in order.

        ``stream`` yields single samples (no batch axis); they are staged
        into micro-batches of :attr:`batch_size` and flushed when full (and
        once more, at natural size, when the stream ends).  Yielded rows are
        copies and stay valid indefinitely.  An empty stream yields nothing
        and leaves :attr:`stats` untouched.
        """
        count = 0
        for sample in stream:
            sample = np.asarray(sample)
            if count and sample.shape != self._staging.shape[1:]:
                raise ValueError(
                    f"sample shape changed mid-batch: staged "
                    f"{self._staging.shape[1:]}, got {sample.shape}; "
                    "streams must be shape-uniform")
            staging = self._ensure_staging(sample)
            staging[count] = sample
            count += 1
            if count == self.batch_size:
                out = self._flush(count)
                for row in out:
                    yield np.array(row, copy=True)
                count = 0
        if count:
            out = self._flush(count)
            for row in out:
                yield np.array(row, copy=True)

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Run an already-stacked ``(N, ...)`` array through micro-batching.

        Returns the stacked ``(N, ...)`` outputs.  Equivalent to
        ``np.stack(list(self.run(iter(batch))))`` but avoids the per-row
        copies by writing each micro-batch result straight into the output.
        An empty ``(0, *sample_shape)`` batch returns an empty array of the
        plan's output shape and dtype (the sample axes must still be present
        so the plan knows its geometry — a bare ``(0,)`` array raises).
        """
        batch = np.asarray(batch)
        if batch.shape[0] == 0:
            return empty_batch_result(self.plan, batch)
        outputs: Optional[np.ndarray] = None
        done = 0
        for start in range(0, batch.shape[0], self.batch_size):
            chunk = np.asarray(batch[start:start + self.batch_size],
                               dtype=self.plan.np_dtype)
            staging = self._ensure_staging(chunk[0])
            staging[:chunk.shape[0]] = chunk
            out = self._flush(chunk.shape[0])
            if outputs is None:
                outputs = np.empty((batch.shape[0],) + out.shape[1:],
                                   dtype=out.dtype)
            outputs[done:done + out.shape[0]] = out
            done += out.shape[0]
        return outputs
