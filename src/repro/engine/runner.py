"""Batched inference runner for model-level engine artifacts.

A :class:`~repro.engine.model_plan.ModelPlan` executes one batch at a time;
serving traffic means feeding it a *stream* of samples at a batch size that
keeps the GEMMs fat.  :class:`InferenceRunner` does exactly that:

* **micro-batching** — samples from any iterable are staged into a
  preallocated batch buffer and executed ``batch_size`` at a time (the final
  partial batch runs at its natural size);
* **buffer reuse** — the staging buffer and the element-wise activation
  buffers inside the plan (ReLU, residual adds, folded BN) are allocated
  once and reused across batches, so steady-state serving does not churn
  large allocations;
* **per-layer timing** — each run accumulates wall-clock seconds per graph
  node into :class:`RunnerStats`, giving a deployment-side view of where
  inference time goes (the QAT-side counterpart of the engine speedup
  benchmark).

The runner is throughput-oriented, not a scheduler: it preserves input
order, yields one output row per input sample, and leaves concurrency to the
caller.  ``benchmarks/bench_runner_throughput.py`` pins the contract that
micro-batched execution beats a naive per-sample loop by >= 1.5x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .model_plan import ModelPlan

__all__ = ["InferenceRunner", "RunnerStats"]


@dataclass
class RunnerStats:
    """Aggregated execution statistics of one :class:`InferenceRunner`.

    ``seconds`` counts time spent inside plan execution (staging and
    bookkeeping excluded); ``layer_seconds`` / ``layer_calls`` break it down
    per graph node name when timing collection is enabled.
    """

    samples: int = 0
    batches: int = 0
    seconds: float = 0.0
    layer_seconds: Dict[str, float] = field(default_factory=dict)
    layer_calls: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Samples per second of plan execution (0.0 before any run)."""
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def per_layer(self) -> List[Tuple[str, float, int]]:
        """``(name, seconds, calls)`` rows, slowest node first."""
        return sorted(((name, secs, self.layer_calls.get(name, 0))
                       for name, secs in self.layer_seconds.items()),
                      key=lambda row: row[1], reverse=True)

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by the benchmark artifact)."""
        return {
            "samples": self.samples,
            "batches": self.batches,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "per_layer": [{"name": name, "seconds": secs, "calls": calls}
                          for name, secs, calls in self.per_layer()],
        }

    def reset(self) -> None:
        """Zero all counters (e.g. after warm-up runs)."""
        self.samples = 0
        self.batches = 0
        self.seconds = 0.0
        self.layer_seconds.clear()
        self.layer_calls.clear()


class InferenceRunner:
    """Micro-batching executor over a :class:`~repro.engine.model_plan.ModelPlan`.

    Parameters
    ----------
    plan:
        The model plan (or any object with a compatible
        ``execute(x, timings=..., workspace=...)`` method).
    batch_size:
        Micro-batch size; the staging buffer is ``(batch_size, *sample_shape)``
        and is allocated on the first sample, then reused.
    collect_timings:
        When true (default), per-node wall-clock seconds accumulate into
        :attr:`stats`; disable to shave the bookkeeping off the hot path.
    reuse_buffers:
        When true (default), element-wise graph nodes write into
        preallocated activation buffers reused across batches.  Output rows
        handed to the caller are always copies, so reuse is invisible.
    """

    def __init__(self, plan: ModelPlan, batch_size: int = 32,
                 collect_timings: bool = True, reuse_buffers: bool = True):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.plan = plan
        self.batch_size = int(batch_size)
        self.collect_timings = collect_timings
        self.stats = RunnerStats()
        self._workspace: Optional[dict] = {} if reuse_buffers else None
        self._staging: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _ensure_staging(self, sample: np.ndarray) -> np.ndarray:
        staging = self._staging
        if (staging is None or staging.shape[1:] != sample.shape
                or staging.dtype != self.plan.np_dtype):
            staging = np.empty((self.batch_size,) + sample.shape,
                               dtype=self.plan.np_dtype)
            self._staging = staging
        return staging

    def _flush(self, count: int) -> np.ndarray:
        batch = self._staging[:count]
        timings = self.stats.layer_seconds if self.collect_timings else None
        start = time.perf_counter()
        out = self.plan.execute(batch, timings=timings,
                                workspace=self._workspace)
        self.stats.seconds += time.perf_counter() - start
        self.stats.batches += 1
        self.stats.samples += count
        if self.collect_timings:
            for node in getattr(self.plan, "nodes", [])[1:]:
                self.stats.layer_calls[node.name] = \
                    self.stats.layer_calls.get(node.name, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    def run(self, stream: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Yield one output row per input sample, in order.

        ``stream`` yields single samples (no batch axis); they are staged
        into micro-batches of :attr:`batch_size` and flushed when full (and
        once more, at natural size, when the stream ends).  Yielded rows are
        copies and stay valid indefinitely.
        """
        count = 0
        for sample in stream:
            sample = np.asarray(sample)
            if count and sample.shape != self._staging.shape[1:]:
                raise ValueError(
                    f"sample shape changed mid-batch: staged "
                    f"{self._staging.shape[1:]}, got {sample.shape}; "
                    "streams must be shape-uniform")
            staging = self._ensure_staging(sample)
            staging[count] = sample
            count += 1
            if count == self.batch_size:
                out = self._flush(count)
                for row in out:
                    yield np.array(row, copy=True)
                count = 0
        if count:
            out = self._flush(count)
            for row in out:
                yield np.array(row, copy=True)

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Run an already-stacked ``(N, ...)`` array through micro-batching.

        Returns the stacked ``(N, ...)`` outputs.  Equivalent to
        ``np.stack(list(self.run(iter(batch))))`` but avoids the per-row
        copies by writing each micro-batch result straight into the output.
        """
        batch = np.asarray(batch)
        outputs: Optional[np.ndarray] = None
        done = 0
        for start in range(0, batch.shape[0], self.batch_size):
            chunk = np.asarray(batch[start:start + self.batch_size],
                               dtype=self.plan.np_dtype)
            staging = self._ensure_staging(chunk[0])
            staging[:chunk.shape[0]] = chunk
            out = self._flush(chunk.shape[0])
            if outputs is None:
                outputs = np.empty((batch.shape[0],) + out.shape[1:],
                                   dtype=out.dtype)
            outputs[done:done + out.shape[0]] = out
            done += out.shape[0]
        if outputs is None:
            raise ValueError("predict() needs at least one sample")
        return outputs
