"""Plan-graph compiler: fused schedule + liveness-planned buffer arena.

:class:`~repro.engine.model_plan.ModelPlan` interprets its SSA op graph node
by node — every BatchNorm fold, ReLU, and residual add materializes into its
own (per-node cached) array, and the interpreter rebuilds the liveness map on
every call.  This module treats the recorded node list as an IR instead,
following the compile-before-execute approach of the SYS_ATL/Exo line of
work, and lowers it in three passes:

1. **Fusion** (:func:`compile_plan_graph`) — element-wise chains
   (``batchnorm -> relu``, ``cim -> batchnorm -> relu``, ``add -> relu``,
   ``relu6``, bias+activation tails after ``conv2d``/``linear``) collapse
   into one :class:`FusedStep` whose tail ops run as in-place NumPy passes
   over the producer's output buffer.  A node is fused only when it is the
   *sole* consumer of its input and that input is not the graph output, so
   the dataflow is unchanged; each fused op still applies the exact NumPy
   operations of the interpreter, in the same order (the ``sum * (1/count)``
   mean idiom, the NaN→0 ReLU semantics), so results stay bit-identical.

2. **Liveness + arena** (per batch shape, built lazily on first execute) —
   static shape inference walks the schedule once, records the last-use step
   of every SSA value, and plans *every* step output — producer outputs
   included — into a fixed arena of greedy best-fit blocks, so steady-state
   execution performs no per-call output allocations (interpretation
   re-allocates each producer result and lets malloc churn through them).
   An element-wise step whose input dies at that step writes in place into
   it instead of taking a block; the graph output is never arena-backed, so
   returned arrays stay valid across calls.  ``flatten`` outputs alias
   their input's storage, which keeps the backing block alive while any
   view of it is.

3. **Scheduled execution** (:meth:`CompiledPlan.execute`) — a flat walk over
   prebound step closures: no per-call liveness map, no dict-keyed workspace
   growth, no per-fused-op dispatch.  Both execution routes thread through:
   in ``mode="int"`` a ``cim`` step's requantized output grid is written
   once and the fused element-wise tail transforms it in place, so no extra
   array materializes between the requant grid and the tail.

Interpretation remains the bit-exact reference path; the differential suite
pins ``CompiledPlan.execute == ModelPlan.execute`` on every golden fixture
(float and int modes) and on randomized models.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .hotpath import hot_path
from .model_plan import (GraphNode, ModelPlan, ModelPlanError, _channel_shape,
                         run_conv2d, run_global_avg_pool, run_linear, run_pool)

__all__ = ["CompiledPlan", "FusedStep", "compile_plan_graph"]

#: Element-wise ops a fused group may absorb as in-place tail passes.
_EW_TAIL_OPS = frozenset({"batchnorm", "relu", "relu6"})
#: Element-wise ops that may *start* a group (their output is buffer-planned).
_EW_HEAD_OPS = frozenset({"add", "batchnorm", "relu", "relu6"})
#: Ops producing a fresh array each call; safe producers for fused tails.
_PRODUCER_OPS = frozenset({"cim", "conv2d", "linear", "max_pool", "avg_pool",
                           "global_avg_pool"})
#: Every graph op the compiler can lower.  ``flatten`` is schedulable but
#: never fuses a tail: its output is a view of its input.
_KNOWN_OPS = _PRODUCER_OPS | _EW_HEAD_OPS | frozenset({"flatten"})
#: Workspace-dict key under which per-batch-shape arenas live.
_ARENA_KEY = "__compiled_arena__"
#: Arenas kept per workspace before evicting the least-recently-used shape.
_MAX_ARENAS = 4


class FusedStep:
    """One schedule entry: a producer node plus its fused element-wise tail.

    ``nodes[0]`` produces the value; ``nodes[1:]`` are element-wise ops
    rewritten as in-place passes over that value.  ``out_id`` is the SSA id
    the step defines (the last fused node's id).
    """

    __slots__ = ("nodes", "op", "inputs", "out_id", "ops", "name")

    def __init__(self, nodes: List[GraphNode]):
        self.nodes = tuple(nodes)
        self.op = nodes[0].op
        self.inputs = tuple(nodes[0].inputs)
        self.out_id = nodes[-1].id
        self.ops = "+".join(node.op for node in nodes)
        self.name = "+".join(node.name for node in nodes)

    def __repr__(self) -> str:
        ins = ", ".join(f"%{i}" for i in self.inputs)
        return f"FusedStep(%{self.out_id} = {self.ops}({ins}))"


def compile_plan_graph(plan: ModelPlan) -> "CompiledPlan":
    """Lower a :class:`ModelPlan` op graph into a :class:`CompiledPlan`.

    Pattern-matches element-wise chains into fused steps: a ``batchnorm`` /
    ``relu`` / ``relu6`` node joins the group ending at its input when it is
    that value's only consumer and the value is not the graph output.
    Raises :class:`~repro.engine.model_plan.ModelPlanError` on ops the
    compiler cannot lower (the same set the interpreter rejects).
    """
    by_id: Dict[int, GraphNode] = {node.id: node for node in plan.nodes}
    n_consumers: Dict[int, int] = {}
    sole_consumer: Dict[int, int] = {}
    for node in plan.nodes[1:]:
        if node.op not in _KNOWN_OPS:
            raise ModelPlanError(
                f"cannot compile graph op {node.op!r} (node {node.id})")
        for vid in node.inputs:
            n_consumers[vid] = n_consumers.get(vid, 0) + 1
            sole_consumer[vid] = node.id

    steps: List[FusedStep] = []
    fused_away: set = set()
    for node in plan.nodes[1:]:
        if node.id in fused_away:
            continue
        group = [node]
        if node.op in _PRODUCER_OPS or node.op in _EW_HEAD_OPS:
            cur = node
            while n_consumers.get(cur.id, 0) == 1 and cur.id != plan.output_id:
                nxt = by_id[sole_consumer[cur.id]]
                if nxt.op not in _EW_TAIL_OPS or len(nxt.inputs) != 1:
                    break
                group.append(nxt)
                fused_away.add(nxt.id)
                cur = nxt
        steps.append(FusedStep(group))
    return CompiledPlan(plan, steps)


# --------------------------------------------------------------------------- #
# shape inference
# --------------------------------------------------------------------------- #
def _infer_shape(plan: ModelPlan, step: FusedStep,
                 in_shapes: List[tuple]) -> tuple:
    """Output shape of ``step`` for the given input shapes (tail preserves it)."""
    op = step.op
    head = step.nodes[0]
    x = in_shapes[0]
    if op == "cim":
        # validate once per shape plan; the prebound step closure then skips
        # the per-call checks of ConvPlan/LinearPlan.execute
        lp = plan.layer_plans[head.plan_index]
        if lp.layer_type == "conv2d":
            if len(x) != 4 or x[1] != lp.in_channels:
                raise ValueError(f"expected {lp.in_channels} input channels, "
                                 f"got {x[1] if len(x) == 4 else x}")
            out_h = F.conv_output_size(x[2], lp.kernel_size[0],
                                       lp.stride[0], lp.padding[0])
            out_w = F.conv_output_size(x[3], lp.kernel_size[1],
                                       lp.stride[1], lp.padding[1])
            return (x[0], lp.out_channels, out_h, out_w)
        if len(x) != 2 or x[1] != lp.in_features:
            raise ValueError(f"expected input of shape "
                             f"(N, {lp.in_features}), got {tuple(x)}")
        return (x[0], lp.out_channels)
    if op == "add":
        return tuple(np.broadcast_shapes(*in_shapes))
    if op in ("batchnorm", "relu", "relu6"):
        return tuple(x)
    if op == "flatten":
        features = 1
        for dim in x[1:]:
            features *= dim
        return (x[0], features)
    if op == "global_avg_pool":
        return (x[0], x[1])
    if op in ("max_pool", "avg_pool"):
        kernel = tuple(head.attrs["kernel"])
        stride = tuple(head.attrs["stride"])
        padding = tuple(head.attrs["padding"])
        out_h = F.conv_output_size(x[2], kernel[0], stride[0], padding[0])
        out_w = F.conv_output_size(x[3], kernel[1], stride[1], padding[1])
        return (x[0], x[1], out_h, out_w)
    if op == "linear":
        return (x[0], head.arrays["weight"].shape[0])
    if op == "conv2d":
        weight = head.arrays["weight"]
        stride = tuple(head.attrs["stride"])
        padding = tuple(head.attrs["padding"])
        out_h = F.conv_output_size(x[2], weight.shape[2], stride[0], padding[0])
        out_w = F.conv_output_size(x[3], weight.shape[3], stride[1], padding[1])
        return (x[0], weight.shape[0], out_h, out_w)
    raise ModelPlanError(f"cannot infer shape of graph op {op!r}")


# --------------------------------------------------------------------------- #
# per-shape planning
# --------------------------------------------------------------------------- #
class _Storage:
    """Planner bookkeeping for one physical buffer (values may alias it)."""

    __slots__ = ("tag", "block", "values")

    def __init__(self, tag: str, block: Optional[int]):
        self.tag = tag            # "external" | "fresh" | "block" | "freed"
        self.block = block        # arena block index for tag == "block"
        self.values: set = set()  # SSA value ids sharing this buffer


class _ShapePlan:
    """Frozen execution plan for one input batch shape.

    Holds the prebound step closures, the arena block sizes (in dtype
    items), and the per-step view specs used to materialize block views for
    a workspace.  Deterministic metadata only — mutable buffers live in the
    caller's workspace dict (or transiently on the stack), so one shape plan
    serves every executor thread.
    """

    __slots__ = ("input_shape", "exec_fns", "view_specs", "block_items",
                 "inplace_reuses", "out_shape")

    def __init__(self, input_shape, exec_fns, view_specs, block_items,
                 inplace_reuses, out_shape):
        self.input_shape = input_shape
        self.exec_fns = exec_fns
        self.view_specs = view_specs      # per step: None | (block, items, shape)
        self.block_items = block_items    # arena block sizes, dtype items
        self.inplace_reuses = inplace_reuses
        self.out_shape = out_shape


def _bn_operands(node: GraphNode, ndim: int) -> tuple:
    """``(mean, denom, gamma, beta)`` reshaped for an ``ndim`` operand."""
    a = node.arrays
    mean = a["mean"].reshape(_channel_shape(a["mean"], ndim))
    denom = a["denom"].reshape(_channel_shape(a["denom"], ndim))
    gamma = beta = None
    if "gamma" in a:
        gamma = a["gamma"].reshape(_channel_shape(a["gamma"], ndim))
        beta = a["beta"].reshape(_channel_shape(a["beta"], ndim))
    return mean, denom, gamma, beta


def _make_tail_fns(nodes, ndim: int) -> tuple:
    """In-place pass closures for the fused element-wise tail ops."""
    fns = []
    for node in nodes:
        if node.op == "relu":
            # np.fmax drops NaN for the 0.0 operand: bit-identical to the
            # documented np.where(x > 0, x, 0.0) semantics (NaN -> 0)
            fns.append(lambda out: np.fmax(out, 0.0, out=out))
        elif node.op == "relu6":
            fns.append(lambda out: np.clip(out, 0.0, 6.0, out=out))
        else:  # batchnorm
            mean, denom, gamma, beta = _bn_operands(node, ndim)
            if gamma is None:
                def bn(out, mean=mean, denom=denom):
                    np.subtract(out, mean, out=out)
                    np.divide(out, denom, out=out)
            else:
                def bn(out, mean=mean, denom=denom, gamma=gamma, beta=beta):
                    np.subtract(out, mean, out=out)
                    np.divide(out, denom, out=out)
                    np.multiply(out, gamma, out=out)
                    np.add(out, beta, out=out)
            fns.append(bn)
    return tuple(fns)


def _make_step_fn(plan: ModelPlan, step: FusedStep, si: int,
                  action: Optional[tuple], out_shape: tuple,
                  dead: tuple) -> Callable:
    """Build the runtime closure for one step.

    The closure signature is ``fn(vals, views)``: ``vals`` is the flat SSA
    value list, ``views`` the per-step arena views of the active workspace.
    ``action`` says where the step's output lands: ``None`` (fresh array —
    the graph-output step), ``("input", pos)`` (an element-wise head
    writing in place into a dying input), ``("block",)`` (the arena view
    at ``views[si]``), or ``("copy",)`` (a graph-output ``flatten`` whose
    input is arena-backed — copied so the returned array survives).
    """
    head = step.nodes[0]
    op = head.op
    ins = step.inputs
    out_id = step.out_id
    tail = _make_tail_fns(step.nodes[1:], len(out_shape))

    if action is None:
        get_out = None
    elif action[0] == "input":
        src = ins[action[1]]

        def get_out(vals, views, _src=src):
            return vals[_src]
    else:
        def get_out(vals, views, _si=si):
            return views[_si]

    if op == "cim":
        lp = plan.layer_plans[head.plan_index]
        i0 = ins[0]

        if get_out is None:
            def produce(vals, views):
                # the graph-output step stays on the layer plan's own path —
                # returned arrays must never be arena-backed
                return lp.execute(vals[i0])
        elif lp.layer_type == "conv2d":
            kernel, stride, padding = lp.kernel_size, lp.stride, lp.padding
            n, oc = out_shape[0], out_shape[1]
            length = out_shape[2] * out_shape[3]

            def produce(vals, views):
                # ConvPlan.execute op for op (mode dispatch included) with
                # prebound geometry and the final reshape-copy redirected
                # into the arena destination: identical element order,
                # identical bits, no surviving fresh allocation
                x = lp._cast_input(vals[i0])
                int_route = lp._int_route(None)
                a = (lp._quantize_acts_carrier(x) if int_route
                     else lp._quantize_acts(x))
                cols = F.unfold_array(a, kernel, stride, padding,
                                      layout="nlk")
                cols_flat = cols.reshape(n * length, cols.shape[2])
                if int_route:
                    # int-pure: begin
                    res = lp._contract_int(cols_flat)
                    # int-pure: end
                else:
                    res = lp._contract(cols_flat, None)
                    if lp.act_scale is not None:
                        res *= lp.act_scale
                dst = get_out(vals, views)
                np.copyto(dst.reshape(n, oc, length),
                          res.reshape(n, length, oc).transpose(0, 2, 1))
                if lp.bias is not None and not int_route:
                    np.add(dst, lp.bias.reshape(1, -1, 1, 1), out=dst)
                return dst
        else:  # linear layer plan

            def produce(vals, views):
                # LinearPlan.execute op for op; the (small) result lands in
                # the arena view so no fresh array outlives the step
                x = lp._cast_input(vals[i0])
                dst = get_out(vals, views)
                if lp._int_route(None):
                    # int-pure: begin
                    np.copyto(dst,
                              lp._contract_int(lp._quantize_acts_carrier(x)))
                    # int-pure: end
                    return dst
                res = lp._contract(lp._quantize_acts(x), None)
                if lp.act_scale is not None:
                    res *= lp.act_scale
                if lp.bias is not None:
                    np.add(res, lp.bias, out=dst)
                else:
                    np.copyto(dst, res)
                return dst
    elif op == "add":
        i0, i1 = ins

        def produce(vals, views):
            if get_out is None:
                return vals[i0] + vals[i1]
            out = get_out(vals, views)
            np.add(vals[i0], vals[i1], out=out)
            return out
    elif op == "batchnorm":
        i0 = ins[0]
        mean, denom, gamma, beta = _bn_operands(head, len(out_shape))

        def produce(vals, views):
            x = vals[i0]
            if get_out is None:
                out = np.subtract(x, mean)
            else:
                out = get_out(vals, views)
                np.subtract(x, mean, out=out)
            np.divide(out, denom, out=out)
            if gamma is not None:
                np.multiply(out, gamma, out=out)
                np.add(out, beta, out=out)
            return out
    elif op == "relu":
        i0 = ins[0]

        def produce(vals, views):
            # bit-identical to np.where(x > 0, x, 0.0): NaN -> 0
            return np.fmax(vals[i0], 0.0,
                           out=None if get_out is None else get_out(vals, views))
    elif op == "relu6":
        i0 = ins[0]

        def produce(vals, views):
            return np.clip(vals[i0], 0.0, 6.0,
                           out=None if get_out is None else get_out(vals, views))
    elif op == "linear":
        i0 = ins[0]
        weight = head.arrays["weight"]
        bias = head.arrays.get("bias")

        def produce(vals, views):
            out = None if get_out is None else get_out(vals, views)
            return run_linear(vals[i0], weight, bias, out=out)
    elif op == "conv2d":
        i0 = ins[0]
        weight = head.arrays["weight"]
        bias = head.arrays.get("bias")
        stride = tuple(head.attrs["stride"])
        padding = tuple(head.attrs["padding"])

        def produce(vals, views):
            out = None if get_out is None else get_out(vals, views)
            return run_conv2d(vals[i0], weight, bias, stride, padding,
                              out=out)
    elif op in ("max_pool", "avg_pool"):
        i0 = ins[0]
        kernel = tuple(head.attrs["kernel"])
        stride = tuple(head.attrs["stride"])
        padding = tuple(head.attrs["padding"])

        def produce(vals, views, _op=op):
            out = None if get_out is None else get_out(vals, views)
            return run_pool(vals[i0], _op, kernel, stride, padding, out=out)
    elif op == "global_avg_pool":
        i0 = ins[0]

        def produce(vals, views):
            out = None if get_out is None else get_out(vals, views)
            return run_global_avg_pool(vals[i0], out=out)
    elif action == ("copy",):  # flatten defining the graph output of an
        i0 = ins[0]            # arena-backed value: copy out of the arena

        def produce(vals, views):
            return vals[i0].reshape(out_shape).copy()
    else:  # flatten — a view; shape is fixed per shape plan
        i0 = ins[0]

        def produce(vals, views):
            return vals[i0].reshape(out_shape)

    if tail:
        def fn(vals, views):
            out = produce(vals, views)
            for apply_tail in tail:
                apply_tail(out)
            vals[out_id] = out
            for vid in dead:
                vals[vid] = None
    else:
        def fn(vals, views):
            vals[out_id] = produce(vals, views)
            for vid in dead:
                vals[vid] = None
    return fn


def _build_shape_plan(compiled: "CompiledPlan", in_shape: tuple) -> _ShapePlan:
    """Plan buffers and bind step closures for one input batch shape."""
    plan = compiled.plan
    steps = compiled.steps
    n_steps = len(steps)

    # static liveness: last schedule step consuming each SSA value
    last_step: Dict[int, int] = {0: -1}
    for si, step in enumerate(steps):
        for vid in step.inputs:
            last_step[vid] = si
    last_step[plan.output_id] = n_steps  # the output outlives the schedule

    shapes: Dict[int, tuple] = {0: tuple(in_shape)}
    storages: Dict[int, _Storage] = {0: _Storage("external", None)}
    storages[0].values.add(0)
    block_items: List[int] = []
    free_blocks: List[int] = []
    view_specs: List[Optional[tuple]] = [None] * n_steps
    exec_fns: List[Callable] = []
    inplace_reuses = 0

    for si, step in enumerate(steps):
        in_shapes = [shapes[vid] for vid in step.inputs]
        out_shape = _infer_shape(plan, step, in_shapes)
        shapes[step.out_id] = out_shape

        action: Optional[tuple] = None
        storage: Optional[_Storage] = None
        if step.op == "flatten":
            src = storages[step.inputs[0]]
            if step.out_id == plan.output_id and src.tag == "block":
                action = ("copy",)  # returned arrays are never arena-backed
            else:
                storage = src       # a view aliases its input
        elif step.out_id != plan.output_id:
            # every scheduled value lives in the arena — producer outputs
            # included — except the graph output, which must stay a fresh
            # array so returned results survive later calls
            if step.op in _EW_HEAD_OPS:
                for pos, vid in enumerate(step.inputs):
                    st = storages[vid]
                    if st.tag not in ("fresh", "block"):
                        continue
                    if shapes[vid] != out_shape:
                        continue
                    if all(last_step.get(v, si) <= si for v in st.values):
                        action = ("input", pos)
                        storage = st
                        inplace_reuses += 1
                        break
            if action is None:
                items = 1
                for dim in out_shape:
                    items *= dim
                best = None
                for idx in free_blocks:  # greedy best-fit by size
                    if block_items[idx] >= items and (
                            best is None or block_items[idx] < block_items[best]):
                        best = idx
                if best is None:
                    best = len(block_items)
                    block_items.append(items)
                else:
                    free_blocks.remove(best)
                action = ("block",)
                view_specs[si] = (best, items, out_shape)
                storage = _Storage("block", best)

        if storage is None:
            storage = _Storage("fresh", None)
        storage.values.add(step.out_id)
        storages[step.out_id] = storage

        # release dying values; return dead blocks (unless adopted) to the pool
        dead = []
        for vid in set(step.inputs):
            if last_step.get(vid, si) == si:
                dead.append(vid)
                st = storages[vid]
                if (st is not storage and st.tag == "block"
                        and all(last_step.get(v, si) <= si for v in st.values)):
                    st.tag = "freed"
                    free_blocks.append(st.block)
        exec_fns.append(_make_step_fn(plan, step, si, action, out_shape,
                                      tuple(dead)))

    return _ShapePlan(tuple(in_shape), exec_fns, view_specs, block_items,
                      inplace_reuses, shapes[plan.output_id])


# --------------------------------------------------------------------------- #
# the compiled executor
# --------------------------------------------------------------------------- #
class CompiledPlan:
    """Scheduled executor for a :class:`ModelPlan`.

    Exposes the same execution surface as the interpreter (``execute`` /
    ``__call__`` with optional ``timings`` and ``workspace``, ``np_dtype``,
    ``set_mode``), so :class:`~repro.engine.runner.InferenceRunner` and
    :class:`~repro.engine.server.PlanServer` run it unchanged.  Shape plans
    (deterministic metadata) are cached on the instance; mutable arena
    buffers live in the caller's workspace dict, one arena per batch shape
    (the :data:`least-recently-used <_MAX_ARENAS>` shapes beyond four are
    evicted), so concurrent executors never share buffers.  Without a
    workspace, arena blocks are allocated transiently per call.

    The step defining the graph output always produces a fresh array —
    never an arena view — so unlike the interpreted workspace path,
    returned results stay valid across subsequent calls.

    Thread model: the shape-plan cache ``_shape_plans`` is copy-on-write —
    lookups read a stable dict snapshot without locking, and a miss builds
    the plan and publishes a wholesale-replaced dict under ``_lock`` (so
    it is deliberately not declared in a ``_GUARDED_BY`` map).  Shape
    plans themselves are immutable after construction.
    """

    def __init__(self, plan: ModelPlan, steps: List[FusedStep]):
        self.plan = plan
        self.steps = steps
        self._n_values = max(node.id for node in plan.nodes) + 1
        self._names = [step.name for step in steps]
        self._shape_plans: Dict[tuple, _ShapePlan] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # delegated plan surface
    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> str:
        """Execution dtype name (read-only; delegates to the plan)."""
        return self.plan.dtype

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype the schedule executes in (read-only)."""
        return self.plan.np_dtype

    @property
    def mode(self) -> str:
        """Active execution route of the underlying plan, float or int
        (a single racy-but-atomic attribute read; thread-safe)."""
        return self.plan.mode

    @property
    def name(self) -> str:
        """Model name recorded in the underlying plan (read-only)."""
        return self.plan.name

    @property
    def output_id(self) -> int:
        """SSA id of the graph output value (read-only)."""
        return self.plan.output_id

    @property
    def layer_plans(self) -> list:
        """The shared per-layer CIM plans (read-only list; same objects as
        the interpreter's)."""
        return self.plan.layer_plans

    def set_mode(self, mode: str) -> None:
        """Switch the shared layer plans between float and integer routes.
        Not safe concurrently with :meth:`execute` — quiesce callers first
        (the serving layer swaps pools instead of flipping modes live)."""
        self.plan.set_mode(mode)

    def int_drift_bound(self) -> float:
        """Declared max-abs drift of ``mode="int"`` (read-only; delegates
        to the plan)."""
        return self.plan.int_drift_bound()

    # ------------------------------------------------------------------ #
    # schedule introspection
    # ------------------------------------------------------------------ #
    @property
    def n_steps(self) -> int:
        """Number of fused schedule steps (immutable after compilation)."""
        return len(self.steps)

    @property
    def n_fused(self) -> int:
        """Number of graph ops folded into a preceding step's tail
        (immutable after compilation)."""
        return (len(self.plan.nodes) - 1) - len(self.steps)

    def summary(self) -> str:
        """Fusion groups, schedule order, and per-shape arena footprint.
        Thread-safe: reads one stable snapshot of the copy-on-write
        shape-plan cache."""
        lines = [f"CompiledPlan({self.name or 'model'}, dtype={self.dtype}, "
                 f"{len(self.plan.nodes) - 1} ops -> {self.n_steps} steps, "
                 f"{self.n_fused} fused)"]
        for step in self.steps:
            ins = ", ".join(f"%{i}" for i in step.inputs)
            lines.append(f"  %{step.out_id:<3} {step.ops:<28} ({ins}) "
                         f"{step.name}")
        plans = self._shape_plans   # one stable snapshot (copy-on-write)
        if plans:
            itemsize = self.np_dtype.itemsize
            for shape in sorted(plans):
                sp = plans[shape]
                nbytes = sum(sp.block_items) * itemsize
                lines.append(
                    f"  arena{list(shape)}: {len(sp.block_items)} block(s), "
                    f"{nbytes} bytes, {sp.inplace_reuses} in-place reuses")
        else:
            lines.append("  arena: planned per batch shape on first execute")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @hot_path
    def execute(self, x: np.ndarray, timings: Optional[Dict[str, float]] = None,
                workspace: Optional[dict] = None) -> np.ndarray:
        """Run the compiled schedule on a batch array.

        Same contract as :meth:`ModelPlan.execute`: ``timings`` accumulates
        per-step wall-clock seconds keyed by the fused step name;
        ``workspace`` keeps the buffer arena alive across calls.  Returned
        arrays are never arena-backed and stay valid across calls.

        Thread-safe only when each concurrent caller owns its ``workspace``
        (or passes none): shape plans are immutable and shared; arena
        buffers are per-workspace.  Registered hot: the steady-state loop
        performs no per-call output allocations (see ``tools/analyze``).
        """
        x = np.asarray(x.data if isinstance(x, Tensor) else x,
                       dtype=self.plan.np_dtype)
        sp = self._shape_plan(x.shape)
        views = self._arena_views(sp, workspace)
        vals: List[Optional[np.ndarray]] = [None] * self._n_values
        vals[0] = x
        if timings is None:
            for fn in sp.exec_fns:
                fn(vals, views)
        else:
            perf = time.perf_counter
            for name, fn in zip(self._names, sp.exec_fns):
                start = perf()
                fn(vals, views)
                timings[name] = timings.get(name, 0.0) + perf() - start
        return vals[self.plan.output_id]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`execute` (no timing, no workspace)."""
        return self.execute(x)

    def workspace_footprint(self, workspace: Optional[dict]) -> tuple:
        """``(resident_bytes, n_blocks)`` of the arenas held by ``workspace``.
        Read-only; safe against concurrent shape-plan publishes (one stable
        copy-on-write snapshot), but not against the owner mutating
        ``workspace`` mid-call."""
        if not workspace:
            return (0, 0)
        arenas = workspace.get(_ARENA_KEY)
        if not arenas:
            return (0, 0)
        itemsize = self.np_dtype.itemsize
        total = blocks = 0
        plans = self._shape_plans   # one stable snapshot (copy-on-write)
        for shape in arenas:
            sp = plans.get(shape)
            if sp is not None:
                total += sum(sp.block_items) * itemsize
                blocks += len(sp.block_items)
        return (total, blocks)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _shape_plan(self, shape: tuple) -> _ShapePlan:
        sp = self._shape_plans.get(shape)
        if sp is None:
            with self._lock:
                sp = self._shape_plans.get(shape)
                if sp is None:
                    sp = _build_shape_plan(self, shape)
                    # copy-on-write publish: concurrent lock-free readers
                    # only ever see a complete dict
                    plans = dict(self._shape_plans)
                    plans[shape] = sp
                    self._shape_plans = plans
        return sp

    def _materialize(self, sp: _ShapePlan) -> List[Optional[np.ndarray]]:
        """Allocate the arena blocks of ``sp`` and carve the per-step views."""
        dtype = self.plan.np_dtype
        blocks = [np.empty(items, dtype=dtype) for items in sp.block_items]
        views: List[Optional[np.ndarray]] = [None] * len(sp.exec_fns)
        for si, spec in enumerate(sp.view_specs):
            if spec is not None:
                idx, items, shape = spec
                views[si] = blocks[idx][:items].reshape(shape)
        return views

    def _arena_views(self, sp: _ShapePlan,
                     workspace: Optional[dict]) -> Optional[list]:
        if not sp.block_items:
            return None  # no step reads views; nothing to allocate
        if workspace is None:
            return self._materialize(sp)
        arenas = workspace.get(_ARENA_KEY)
        if arenas is None:
            arenas = workspace[_ARENA_KEY] = OrderedDict()
        views = arenas.get(sp.input_shape)
        if views is None:
            views = self._materialize(sp)
            arenas[sp.input_shape] = views
            while len(arenas) > _MAX_ARENAS:
                arenas.popitem(last=False)
        else:
            arenas.move_to_end(sp.input_shape)
        return views
