"""Frozen wrapper modules executing CIM layers through compiled plans.

A :class:`FrozenCIMConv2d` / :class:`FrozenCIMLinear` wraps the original QAT
layer (kept as a submodule, so its parameters, quantizer state, recorder and
variation model stay live) and routes ``forward`` through the layer's
compiled :mod:`~repro.engine.plan` whenever that is semantically safe.

The wrapper falls back to the seed (QAT) forward — bit for bit the original
code path — whenever the fast path cannot reproduce it:

* the module is in training mode (gradients / STE semantics required),
* gradient tracking is on and the input requires a gradient,
* a :class:`~repro.core.psum.PartialSumRecorder` is attached (the recorder
  must observe the raw ``(S, A, N, L, OC)`` partial sums; see
  :mod:`repro.core.psum` for the axis convention),
* the layer's quantizers are not yet initialized (the fallback initializes
  them, after which the plan compiles automatically on the next call).

Plans recompile transparently when the layer's
:func:`~repro.engine.plan.layer_signature` changes, e.g. when a two-stage
trainer toggles partial-sum quantization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor, is_grad_enabled
from .plan import (compile_conv_plan, compile_linear_plan, layer_signature,
                   signature_ready)

__all__ = ["FrozenCIMConv2d", "FrozenCIMLinear"]


class _FrozenLayer(Module):
    """Common freeze-mode plumbing; see the module docstring for semantics."""

    _compile = None  # set by subclasses to the matching plan compiler

    def __init__(self, layer: Module):
        super().__init__()
        self.layer = layer
        self.training = layer.training
        self.plan = None
        if signature_ready(layer_signature(layer)):
            self.plan = type(self)._compile(layer)

    # ---------------------------------------------------------------- #
    def forward(self, x: Tensor) -> Tensor:
        layer = self.layer
        if (self.training or layer.training or layer.recorder is not None
                or (is_grad_enabled() and isinstance(x, Tensor) and x.requires_grad)):
            return layer.forward(x)
        signature = layer_signature(layer)
        plan = self.plan
        if plan is None or plan.signature != signature:
            if not signature_ready(signature):
                # Seed path initializes the lazy LSQ scales; compile eagerly
                # once they have observed this batch.
                out = layer.forward(x)
                if signature_ready(layer_signature(layer)):
                    self.plan = type(self)._compile(layer)
                return out
            plan = self.plan = type(self)._compile(layer)
        variation = layer.variation
        if variation is not None and not variation.enabled:
            variation = None
        data = plan.execute(x.data if isinstance(x, Tensor) else np.asarray(x),
                            variation=variation)
        return Tensor(data)

    def refresh(self) -> None:
        """Recompile the plan from the wrapped layer's current parameters."""
        self.plan = type(self)._compile(self.layer)

    # ---------------------------------------------------------------- #
    # delegation — the wrapper is a drop-in stand-in for the wrapped layer
    # ---------------------------------------------------------------- #
    def set_psum_quant_enabled(self, enabled: bool) -> None:
        """Toggle partial-sum quantization; the plan recompiles lazily."""
        self.layer.set_psum_quant_enabled(enabled)

    def set_variation(self, variation) -> None:
        """Attach (or remove) a device-variation model on the wrapped layer."""
        self.layer.set_variation(variation)

    def attach_recorder(self, recorder, layer_name: str = "") -> None:
        """Attach a partial-sum recorder; forwards fall back to the seed path."""
        self.layer.attach_recorder(recorder, layer_name)

    @property
    def scheme(self):
        """Quantization scheme of the wrapped layer."""
        return self.layer.scheme

    @property
    def cim_config(self):
        """Crossbar macro description of the wrapped layer."""
        return self.layer.cim_config

    @property
    def mapping(self):
        """Crossbar mapping of the wrapped layer."""
        return self.layer.mapping

    @property
    def weight(self):
        """Weight parameter of the wrapped layer (frozen plans hold a copy)."""
        return self.layer.weight

    @property
    def bias(self):
        """Bias parameter of the wrapped layer, or ``None``."""
        return self.layer.bias

    @property
    def n_arrays(self) -> int:
        """Number of row-direction crossbar arrays of the wrapped layer."""
        return self.layer.n_arrays

    @property
    def n_splits(self) -> int:
        """Number of weight bit-splits of the wrapped layer."""
        return self.layer.n_splits

    def extra_repr(self) -> str:
        state = "compiled" if self.plan is not None else "pending-calibration"
        return f"{self.layer.extra_repr()}, plan={state}"


class FrozenCIMConv2d(_FrozenLayer):
    """Eval fast-path wrapper around :class:`~repro.core.cim_conv.CIMConv2d`."""

    _compile = staticmethod(compile_conv_plan)


class FrozenCIMLinear(_FrozenLayer):
    """Eval fast-path wrapper around :class:`~repro.core.cim_linear.CIMLinear`."""

    _compile = staticmethod(compile_linear_plan)
