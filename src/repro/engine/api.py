"""Model-level freeze / thaw API of the inference engine.

:func:`freeze` swaps every CIM layer of a model for its frozen wrapper (a
compiled-plan fast path; see :mod:`repro.engine.frozen`), and :func:`thaw`
swaps the original layers back — a lossless round trip, since the wrapper
keeps the original layer (with all parameters and quantizer state) as a
submodule.

Typical lifecycle::

    model = build_and_train(...)          # QAT as usual
    engine.freeze(model, calibrate=batch) # -> eval fast path
    logits = model(images)                # fused / cached inference
    plan = engine.compile_model_plan(model)
    engine.save_model_plan(plan, "model_plan.npz")   # deployment artifact
    engine.thaw(model)                    # back to the QAT layers
    model.train()                         # resume training

Freezing changes the module tree (``conv1`` becomes ``conv1.layer`` inside a
:class:`~repro.engine.frozen.FrozenCIMConv2d`), so ``state_dict`` keys differ
between the frozen and unfrozen layouts.  A state dict round-trips fine
*within* one layout — the wrapper keeps the original layer (all parameters
and quantizer state) as a submodule — but a strict ``load_state_dict``
across layouts fails loudly on the mismatched keys; thaw first when
checkpointing training state.  Deployment artifacts don't use state dicts at
all: :func:`~repro.engine.model_plan.compile_model_plan` captures the whole
frozen network into a single file that
:func:`~repro.engine.model_plan.load_plan` reloads without reconstructing
the QAT model (see ``docs/engine.md``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.cim_conv import CIMConv2d
from ..core.cim_linear import CIMLinear
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from .frozen import FrozenCIMConv2d, FrozenCIMLinear, _FrozenLayer

__all__ = ["freeze", "thaw", "is_frozen", "frozen_layers"]


def _wrap(layer: Module) -> _FrozenLayer:
    """Wrap one CIM layer in its frozen counterpart."""
    if isinstance(layer, CIMConv2d):
        return FrozenCIMConv2d(layer)
    if isinstance(layer, CIMLinear):
        return FrozenCIMLinear(layer)
    raise TypeError(f"cannot freeze {type(layer).__name__}")


def _disable_param_grads(model: Module) -> None:
    """Put the model in inference-only mode, remembering prior grad flags.

    Freezing means "no more training until thaw": parameters stop requiring
    gradients, so interior activations (e.g. BatchNorm outputs between two
    CIM layers) no longer drag an autograd graph through the network and
    every frozen layer stays on its fast path.  :func:`thaw` restores the
    recorded flags.  Re-freezing an already-frozen model must keep the
    original record — overwriting it with the now-all-False flags would make
    thaw unable to re-enable training.
    """
    if getattr(model, "_engine_saved_grad_flags", None) is not None:
        return
    saved = [(param, param.requires_grad) for _, param in model.named_parameters()]
    for param, _ in saved:
        param.requires_grad = False
    object.__setattr__(model, "_engine_saved_grad_flags", saved)


def _restore_param_grads(model: Module) -> None:
    """Restore the parameter ``requires_grad`` flags recorded by freeze."""
    saved = getattr(model, "_engine_saved_grad_flags", None)
    if saved is not None:
        for param, flag in saved:
            param.requires_grad = flag
        object.__delattr__(model, "_engine_saved_grad_flags")


def freeze(model: Module, calibrate: Optional[Tensor] = None) -> Module:
    """Switch a model into eval fast-path mode.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` tree containing CIM layers —
        or a bare CIM layer, in which case the wrapper itself is returned.
    calibrate:
        Optional example batch.  When given, one forward pass runs first (in
        eval mode, without gradients) so that lazily-initialized LSQ scales
        observe data and every plan compiles eagerly.  Without it, layers
        whose quantizers are uninitialized fall back to the seed forward on
        their first call and compile afterwards.

    Returns
    -------
    Module
        The same model object (layers swapped in place), or the frozen
        wrapper when ``model`` itself is a CIM layer.  Freezing is
        idempotent: already-frozen layers are left untouched.

    Freezing also puts the model in inference-only mode: every parameter's
    ``requires_grad`` flag is cleared (and recorded) so no autograd graph is
    built anywhere in the network; :func:`thaw` restores the flags.
    """
    model.eval()
    if calibrate is not None:
        with no_grad():
            model(calibrate)
    if isinstance(model, (CIMConv2d, CIMLinear)):
        wrapper = _wrap(model)
        _disable_param_grads(wrapper)
        return wrapper
    targets = []
    for _, module in list(model.named_modules()):
        if isinstance(module, _FrozenLayer):
            continue  # the wrapped layer stays wrapped
        for name, child in module._modules.items():
            if isinstance(child, (CIMConv2d, CIMLinear)):
                targets.append((module, name, child))
    for parent, name, child in targets:
        parent.add_module(name, _wrap(child))
    _disable_param_grads(model)
    return model


def thaw(model: Module) -> Module:
    """Undo :func:`freeze`, restoring the original CIM layers in place.

    Returns the same model object (or the unwrapped layer when ``model`` is
    itself a frozen wrapper).  Compiled plans are discarded; the layers keep
    whatever parameter and quantizer state they accumulated, and parameter
    ``requires_grad`` flags recorded by :func:`freeze` are restored.
    """
    _restore_param_grads(model)
    if isinstance(model, _FrozenLayer):
        return model.layer
    targets = []
    for _, module in list(model.named_modules()):
        for name, child in module._modules.items():
            if isinstance(child, _FrozenLayer):
                targets.append((module, name, child.layer))
    for parent, name, original in targets:
        parent.add_module(name, original)
    return model


def is_frozen(model: Module) -> bool:
    """True if ``model`` is, or contains, a frozen CIM layer."""
    return any(isinstance(module, _FrozenLayer) for module in model.modules())


def frozen_layers(model: Module) -> Iterator[Tuple[str, _FrozenLayer]]:
    """Yield ``(name, wrapper)`` for every frozen layer in the model."""
    for name, module in model.named_modules():
        if isinstance(module, _FrozenLayer):
            yield name, module
