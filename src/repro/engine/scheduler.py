"""Dynamic batching scheduler for the concurrent plan server.

Serving traffic arrives one request at a time, but the engine is fastest on
fat batches (``benchmarks/bench_runner_throughput.py``).  The
:class:`DynamicBatcher` bridges the two: requests enqueue individually and
worker shards dequeue *batches*, formed by whichever of two triggers fires
first —

* the pending queue reaches ``max_batch`` (a full batch leaves immediately),
* the oldest pending request has waited ``max_wait_ms`` (a partial batch
  leaves rather than stalling the stream).

The queue is **bounded**: :meth:`DynamicBatcher.put` blocks (or times out)
when ``queue_size`` requests are already pending, which is the server's
backpressure mechanism — producers slow to the pace of the shards instead of
growing an unbounded backlog.  Requests leave in strict FIFO order, so batch
formation never reorders a stream; per-request ordering of *results* is the
futures' job (see :class:`~repro.engine.server.PlanServer`).

The batcher is plan-agnostic plumbing: it moves :class:`Request` objects and
never touches their payloads, which keeps it independently testable (see
``tests/engine/test_scheduler.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["Request", "RequestTiming", "SchedulerStats", "DynamicBatcher",
           "SchedulerClosed"]


class SchedulerClosed(RuntimeError):
    """Raised when submitting to a batcher that has been closed."""


@dataclass
class RequestTiming:
    """Where one request's latency went: queueing vs executing.

    Attached by the server to each request's future (as ``future.timing``)
    **before** the future resolves, so any reader that observed the result
    also observes a fully written timing — the network front end feeds these
    into its per-request latency histograms (queue-wait vs compute split).
    ``cached`` marks result-cache hits, which never queue or execute.
    """

    queue_s: float = 0.0          # submit -> batch claimed by a shard
    compute_s: float = 0.0        # batch claimed -> batch results ready
    cached: bool = False          # resolved from the result cache

    @property
    def total_s(self) -> float:
        """Queue wait plus compute time (the server-side request latency)."""
        return self.queue_s + self.compute_s


@dataclass
class Request:
    """One queued unit of work: a single sample and the future for its row."""

    seq: int                      # submission sequence number (FIFO key)
    payload: np.ndarray           # one sample, no batch axis
    future: Future                # resolves to this sample's output row
    arrival: float = field(default_factory=time.monotonic)
    cache_key: Optional[bytes] = None   # set when result caching is on
    dispatched: Optional[float] = None  # stamped when a batch claims it


@dataclass
class SchedulerStats:
    """Counters describing how the batcher shaped the request stream.

    The live instance hanging off a :class:`DynamicBatcher` is mutated
    under the batcher lock; every reader method below is therefore tagged
    ``:guarded-by: batcher._lock`` for the static analyzer.  A detached
    snapshot from :meth:`DynamicBatcher.stats_snapshot` has no concurrent
    mutators, which satisfies the contract trivially — that is the
    intended way to read these counters.
    """

    _GUARDED_BY = {"requests": "batcher._lock", "batches": "batcher._lock",
                   "batched_samples": "batcher._lock",
                   "max_batch_seen": "batcher._lock",
                   "timeout_flushes": "batcher._lock",
                   "queue_high_water": "batcher._lock"}

    requests: int = 0             # requests accepted into the queue
    batches: int = 0              # batches handed to workers
    batched_samples: int = 0      # sum of batch sizes (= requests dispatched)
    max_batch_seen: int = 0       # largest batch formed
    timeout_flushes: int = 0      # batches flushed by max_wait_ms, not size
    queue_high_water: int = 0     # deepest the pending queue ever got

    @property
    def mean_batch(self) -> float:
        """Average formed batch size (0.0 before any batch).

        :guarded-by: batcher._lock
        """
        return self.batched_samples / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary for the server stats report.

        :guarded-by: batcher._lock
        """
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "max_batch_seen": self.max_batch_seen,
            "timeout_flushes": self.timeout_flushes,
            "queue_high_water": self.queue_high_water,
        }

    def copy(self) -> "SchedulerStats":
        """A field-by-field copy of the counters.

        :guarded-by: batcher._lock

        Use :meth:`DynamicBatcher.stats_snapshot`, which takes the lock
        and calls this — copying the live instance without it can tear a
        multi-field update.
        """
        return SchedulerStats(requests=self.requests, batches=self.batches,
                              batched_samples=self.batched_samples,
                              max_batch_seen=self.max_batch_seen,
                              timeout_flushes=self.timeout_flushes,
                              queue_high_water=self.queue_high_water)


class DynamicBatcher:
    """Bounded FIFO request queue with size- and deadline-triggered batching.

    Parameters
    ----------
    max_batch:
        Upper bound on formed batch size; a full queue segment of this many
        requests is dispatched without waiting.
    max_wait_ms:
        Deadline for partial batches: once the oldest pending request has
        waited this long, whatever is queued (up to ``max_batch``) is
        dispatched.  ``0`` means "never hold a request" — every
        :meth:`next_batch` drains what is pending immediately.
    queue_size:
        Backpressure bound on pending (not yet dispatched) requests.

    Thread model: any number of producers call :meth:`put`; any number of
    consumers (the server's shard workers) call :meth:`next_batch`.  All
    state is guarded by one lock with two conditions (space / work), as
    declared below for the static analyzer.
    """

    _GUARDED_BY = {"_pending": "_lock", "stats": "_lock", "_closed": "_lock"}

    def __init__(self, max_batch: int = 16, max_wait_ms: float = 2.0,
                 queue_size: int = 256):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if queue_size < max_batch:
            raise ValueError("queue_size must be >= max_batch "
                             "(a full batch must fit in the queue)")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.queue_size = int(queue_size)
        self.stats = SchedulerStats()
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)   # producers wait here
        self._work = threading.Condition(self._lock)    # consumers wait here
        self._closed = False

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def put(self, request: Request, timeout: Optional[float] = None) -> None:
        """Enqueue one request, blocking while the queue is full.

        Raises :class:`SchedulerClosed` if the batcher is (or becomes)
        closed, and :class:`TimeoutError` if ``timeout`` seconds pass without
        space freeing up — the caller-visible face of backpressure.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise SchedulerClosed("batcher is closed")
                if len(self._pending) < self.queue_size:
                    break
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"queue full ({self.queue_size} pending) and no "
                            f"shard freed space within {timeout}s")
                self._space.wait(remaining)
            self._pending.append(request)
            self.stats.requests += 1
            self.stats.queue_high_water = max(self.stats.queue_high_water,
                                              len(self._pending))
            self._work.notify()

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def _pop_batch(self, timed_out: bool) -> List[Request]:
        """Claim up to ``max_batch`` pending requests as one batch.

        :guarded-by: _lock
        """
        batch = [self._pending.popleft()
                 for _ in range(min(self.max_batch, len(self._pending)))]
        now = time.monotonic()
        for request in batch:
            request.dispatched = now   # ends the queue-wait clock
        self.stats.batches += 1
        self.stats.batched_samples += len(batch)
        self.stats.max_batch_seen = max(self.stats.max_batch_seen, len(batch))
        if timed_out and len(batch) < self.max_batch:
            self.stats.timeout_flushes += 1
        self._space.notify_all()
        if self._pending:
            self._work.notify()   # leftover work: wake another consumer now
        return batch

    def next_batch(self, stop: Optional[threading.Event] = None
                   ) -> Optional[List[Request]]:
        """Block until a batch is ready; ``None`` once closed and drained.

        A batch is ready when ``max_batch`` requests are pending, when the
        oldest pending request's ``max_wait_ms`` deadline has passed, or when
        the batcher is closed (remaining requests leave in final batches so
        close never drops work).

        ``stop`` makes the wait interruptible for one consumer: when the
        event is set, the call returns ``[]`` (no batch claimed) instead of
        blocking further — how a retiring shard worker leaves the pool
        without waiting for traffic.  Pair it with :meth:`kick`, which wakes
        every blocked consumer so the event is observed promptly.
        """
        with self._lock:
            while True:
                if stop is not None and stop.is_set():
                    return []
                if len(self._pending) >= self.max_batch:
                    return self._pop_batch(timed_out=False)
                if self._pending:
                    if self._closed:
                        return self._pop_batch(timed_out=False)
                    wait = (self._pending[0].arrival + self.max_wait
                            - time.monotonic())
                    if wait <= 0:
                        return self._pop_batch(timed_out=True)
                    self._work.wait(wait)
                else:
                    if self._closed:
                        return None
                    self._work.wait()

    def kick(self) -> None:
        """Wake every blocked consumer to re-check its ``stop`` event."""
        with self._lock:
            self._work.notify_all()

    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> SchedulerStats:
        """A mutually consistent copy of :attr:`stats`.

        Counters update together under the batcher lock (``batches`` and
        ``batched_samples`` move in one :meth:`_pop_batch`); reading them
        without the lock can observe a half-applied update — a torn
        ``/metrics`` report.  Snapshotting under the lock is the only read
        that preserves the invariants (``batched_samples <= requests``,
        ``mean_batch <= max_batch`` ...).
        """
        with self._lock:
            return self.stats.copy()

    @property
    def pending(self) -> int:
        """Number of requests queued but not yet dispatched.
        Thread-safe: reads under the batcher lock."""
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called.
        Thread-safe: reads under the batcher lock."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop accepting requests; queued work still drains into batches.
        Thread-safe and idempotent: flips the flag and wakes every blocked
        producer and consumer under the batcher lock."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self._space.notify_all()
