"""Concurrent plan server: dynamic batching over a pool of sharded executors.

:class:`~repro.engine.runner.InferenceRunner` serves one stream from one
caller; :class:`PlanServer` serves *many* callers.  Requests enter through
:meth:`PlanServer.submit` / :meth:`PlanServer.submit_many` and flow through
three layers:

1. an optional **LRU result cache** — requests whose input digest was served
   before resolve immediately, without touching the queue;
2. the :class:`~repro.engine.scheduler.DynamicBatcher` — a bounded FIFO
   queue that coalesces individual requests into batches (flush on
   ``max_batch`` or ``max_wait_ms``, whichever first) and applies
   backpressure when producers outrun the shards;
3. a pool of **shard workers** — N executors over the same read-only plan,
   each owning its private activation buffers and
   :class:`~repro.engine.runner.RunnerStats` so shards never contend.
   Thread-backed shards (default) run the GEMMs in-process; process-backed
   shards (``backend="process"``) fork one child per shard and stream
   batches over a pipe, stepping around the GIL entirely.

Every request gets a :class:`concurrent.futures.Future` resolving to its own
output row, so per-request ordering is trivially preserved no matter how
batches are formed or which shard finishes first.  A second, module-level
**plan cache** (:func:`load_plan_cached`) makes constructing servers from
artifact paths cheap: hot reloads of the same ``.npz`` skip the disk parse
until the file actually changes.

Numerics: shards execute the same plan arrays as a single runner, and row
results are independent of batch composition, so a float64 server is
bit-identical to the single-runner path —
``benchmarks/bench_server_concurrency.py`` pins that, plus the >= 1.3x
aggregate-throughput contract of dynamic batching over per-request serving.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Iterable, List, Optional

import numpy as np

from .model_plan import load_plan
from .runner import PlanExecutor, RunnerStats, empty_batch_result
from .scheduler import DynamicBatcher, Request, RequestTiming, SchedulerClosed

__all__ = ["PlanServer", "ServerClosed", "ShardDied", "LRUCache",
           "load_plan_cached", "clear_plan_cache"]


class ServerClosed(RuntimeError):
    """Raised when submitting to a :class:`PlanServer` that has been closed."""


class ShardDied(RuntimeError):
    """A worker shard became unusable mid-serving (e.g. its process was killed).

    Requests in the failing batch receive this exception; the dead shard is
    retired and the remaining shards keep serving.  If the *last* shard
    dies, the server closes itself and fails all queued requests with this
    error rather than letting them hang.
    """


# --------------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------------- #
class LRUCache:
    """A small thread-safe least-recently-used cache with hit/miss counters."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        """Return the cached value or ``None``; touches LRU order on hit."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert ``key``; evicts the least-recently-used entry when full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def to_dict(self) -> dict:
        """JSON-serializable counters for the server stats report."""
        return {"entries": len(self), "max_entries": self.max_entries,
                "hits": self.hits, "misses": self.misses}


_PLAN_CACHE = LRUCache(max_entries=8)


def load_plan_cached(path, mode: str = "float", compile: bool = False):
    """:func:`~repro.engine.model_plan.load_plan` behind a process-wide LRU.

    Keyed on the absolute path, the file's (mtime, size) stat, the
    execution mode **and** the ``compile`` flag, so a rewritten artifact is
    transparently reloaded while hot reloads of an unchanged file cost one
    ``stat`` call.  Keying on the mode gives each route its own plan object:
    callers share the returned plan, and a float-mode consumer must never
    observe its cached plan silently flipped to the integer route (plans are
    otherwise read-only at execution time, which is what makes the sharing —
    and the server's shard pool — safe).  ``compile=True`` caches the
    scheduled :class:`~repro.engine.compiler.CompiledPlan` executor for
    model-plan artifacts (see :func:`~repro.engine.model_plan.load_plan`).
    """
    path = os.path.abspath(os.fspath(path))
    stat = os.stat(path)
    key = (path, stat.st_mtime_ns, stat.st_size, mode, bool(compile))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = load_plan(path, mode=mode, compile=compile)
        _PLAN_CACHE.put(key, plan)
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan (e.g. between benchmark phases)."""
    _PLAN_CACHE.clear()


def _digest(sample: np.ndarray) -> bytes:
    """Cache key of one request payload: shape + dtype + content hash."""
    h = hashlib.sha1()
    h.update(str(sample.shape).encode())
    h.update(str(sample.dtype).encode())
    h.update(np.ascontiguousarray(sample).tobytes())
    return h.digest()


# --------------------------------------------------------------------------- #
# shards
# --------------------------------------------------------------------------- #
class _ThreadShard:
    """A shard executing in-process through its own :class:`PlanExecutor`."""

    def __init__(self, plan, collect_timings: bool):
        self._executor = PlanExecutor(plan, collect_timings=collect_timings)

    @property
    def stats(self) -> RunnerStats:
        return self._executor.stats

    def stats_snapshot(self) -> RunnerStats:
        return self._executor.stats_snapshot()

    def execute_batch(self, batch: np.ndarray) -> np.ndarray:
        return self._executor.execute_batch(batch)

    def close(self) -> None:
        pass


def _process_shard_main(conn, plan, collect_timings: bool) -> None:
    """Child-process loop of a process-backed shard: recv batch, send rows."""
    executor = PlanExecutor(plan, collect_timings=collect_timings)
    while True:
        try:
            batch = conn.recv()
        except EOFError:
            break
        if batch is None:
            break
        try:
            out = executor.execute_batch(batch)
            conn.send(("ok", np.asarray(out), executor.stats))
        except Exception as error:   # noqa: BLE001 — relayed to the parent
            conn.send(("err", f"{type(error).__name__}: {error}", None))
    conn.close()


class _ProcessShard:
    """A shard forked into its own process, fed batches over a pipe.

    The child inherits the plan via fork (no pickling of the arrays); each
    round-trip ships one batch in and one result out.  ``stats`` mirrors the
    child's executor stats as of the last completed batch, with the parent's
    pipe round-trip time substituted for ``seconds`` so the server-level
    report reflects what callers actually experienced.
    """

    def __init__(self, plan, collect_timings: bool):
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(target=_process_shard_main,
                                 args=(child_conn, plan, collect_timings),
                                 daemon=True)
        self._proc.start()
        child_conn.close()
        self.stats = RunnerStats()
        self._stats_lock = threading.Lock()

    def stats_snapshot(self) -> RunnerStats:
        with self._stats_lock:
            return RunnerStats(samples=self.stats.samples,
                               batches=self.stats.batches,
                               seconds=self.stats.seconds,
                               layer_seconds=dict(self.stats.layer_seconds),
                               layer_calls=dict(self.stats.layer_calls))

    def execute_batch(self, batch: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        try:
            self._conn.send(batch)
            status, payload, child_stats = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            raise ShardDied(
                f"process shard (pid {self._proc.pid}) died mid-batch: "
                f"{type(error).__name__}: {error}") from error
        elapsed = time.perf_counter() - start
        if status != "ok":
            raise RuntimeError(f"process shard failed: {payload}")
        with self._stats_lock:
            if child_stats is not None:
                self.stats.samples = child_stats.samples
                self.stats.batches = child_stats.batches
                self.stats.layer_seconds = child_stats.layer_seconds
                self.stats.layer_calls = child_stats.layer_calls
            self.stats.seconds += elapsed
        return payload

    def close(self) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn.close()


# --------------------------------------------------------------------------- #
# the server
# --------------------------------------------------------------------------- #
class PlanServer:
    """Concurrent request-facing front end over a frozen model plan.

    Parameters
    ----------
    plan:
        A :class:`~repro.engine.model_plan.ModelPlan` (or any executor with a
        compatible ``execute``/``np_dtype`` surface), **or** a path to a
        saved artifact — paths go through :func:`load_plan_cached`, so
        serving the same file twice reuses the parsed plan.
    n_shards:
        Number of worker executors.  Shards share the read-only plan but own
        private activation buffers and stats.
    backend:
        ``"thread"`` (default) or ``"process"`` (fork-based; POSIX only).
    max_batch / max_wait_ms / queue_size:
        Dynamic batching knobs, passed to
        :class:`~repro.engine.scheduler.DynamicBatcher`: flush when
        ``max_batch`` requests are pending or the oldest has waited
        ``max_wait_ms``; ``queue_size`` bounds the backlog (backpressure).
    result_cache_entries:
        When > 0, an LRU cache keyed on the input digest serves repeated
        requests without executing; cached rows are returned read-only.
    collect_timings:
        Forwarded to each shard's executor (per-layer timing stats).
    mode:
        Optional execution route served by every shard: ``"float"``
        (bit-exact reference) or ``"int"`` (fixed-point requantized).  Plan
        paths resolve through :func:`load_plan_cached` with the mode in the
        cache key; an in-memory plan is switched via ``plan.set_mode`` (mode
        is plan state, shared with other consumers of the same object).
        ``None`` (default) serves the plan in its current mode.

    Use as a context manager, or call :meth:`close` — close drains queued
    requests before the workers exit, so no accepted request is dropped.
    """

    def __init__(self, plan, n_shards: int = 2, backend: str = "thread",
                 max_batch: int = 16, max_wait_ms: float = 2.0,
                 queue_size: int = 256, result_cache_entries: int = 0,
                 collect_timings: bool = True, mode: Optional[str] = None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}; "
                             "expected 'thread' or 'process'")
        if isinstance(plan, (str, os.PathLike)):
            plan = load_plan_cached(plan, mode=mode or "float")
        elif mode is not None:
            plan.set_mode(mode)
        self.plan = plan
        self.backend = backend
        self.batcher = DynamicBatcher(max_batch=max_batch,
                                      max_wait_ms=max_wait_ms,
                                      queue_size=queue_size)
        self.result_cache = (LRUCache(result_cache_entries)
                             if result_cache_entries > 0 else None)
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False
        self._retire_lock = threading.Lock()
        self._live_workers = n_shards
        shard_cls = _ThreadShard if backend == "thread" else _ProcessShard
        self._shards = [shard_cls(plan, collect_timings)
                        for _ in range(n_shards)]
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(shard,),
                             name=f"plan-server-shard-{i}", daemon=True)
            for i, shard in enumerate(self._shards)]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self, shard) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            # claim each future; drop requests the client cancelled while
            # they sat in the queue (a cancelled future rejects set_result)
            batch = [request for request in batch
                     if request.future.set_running_or_notify_cancel()]
            if not batch:
                continue
            try:
                stacked = np.stack([request.payload for request in batch])
                out = shard.execute_batch(stacked)
                completed = time.monotonic()
                for row, request in zip(out, batch):
                    result = np.array(row, copy=True)
                    if self.result_cache is not None and request.cache_key:
                        result.flags.writeable = False
                        self.result_cache.put(request.cache_key, result)
                    self._stamp_timing(request, completed)
                    request.future.set_result(result)
            except ShardDied as error:
                completed = time.monotonic()
                for request in batch:
                    if not request.future.done():
                        self._stamp_timing(request, completed)
                        request.future.set_exception(error)
                self._retire_worker(error)
                return
            except Exception as error:   # noqa: BLE001 — fail the whole batch
                completed = time.monotonic()
                for request in batch:
                    if not request.future.done():
                        self._stamp_timing(request, completed)
                        request.future.set_exception(error)

    @staticmethod
    def _stamp_timing(request: Request, completed: float) -> None:
        """Attach the queue/compute split to the future, pre-resolution.

        Written before ``set_result``/``set_exception``, so any caller that
        observed the outcome also observes the timing (the future's internal
        condition provides the ordering).  The network front end reads it
        as ``future.timing`` for its latency histograms.
        """
        dispatched = request.dispatched
        if dispatched is None:   # defensive: batch never went through _pop_batch
            dispatched = completed
        request.future.timing = RequestTiming(
            queue_s=max(0.0, dispatched - request.arrival),
            compute_s=max(0.0, completed - dispatched))

    def _retire_worker(self, error: Exception) -> None:
        """Take a dead shard's worker out of rotation; keep the rest serving.

        The dead shard stops pulling batches (so it can no longer poison the
        shared queue); surviving shards keep draining it.  When the last
        shard dies the server closes itself and fails every queued request
        with :class:`ShardDied` instead of letting callers hang.
        """
        with self._retire_lock:
            self._live_workers -= 1
            last_one = self._live_workers == 0
        if not last_one:
            return
        self._closed = True
        self.batcher.close()
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            for request in batch:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(ShardDied(
                        f"all shards died; last error: {error}"))

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of worker shards in the pool."""
        return len(self._shards)

    def submit(self, sample: np.ndarray,
               timeout: Optional[float] = None) -> Future:
        """Queue one sample; the future resolves to its output row.

        The sample is cast to the plan dtype and copied into the queue, so
        the caller's array can be reused immediately.  Blocks while the
        bounded queue is full (``timeout`` seconds at most —
        :class:`TimeoutError` after that); raises :class:`ServerClosed` on a
        closed server.  With result caching enabled, a digest hit resolves
        the future immediately with a read-only cached row.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        payload = np.array(sample, dtype=self.plan.np_dtype, copy=True)
        future: Future = Future()
        cache_key = None
        if self.result_cache is not None:
            cache_key = _digest(payload)
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                future.timing = RequestTiming(cached=True)
                future.set_result(cached)
                return future
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        request = Request(seq=seq, payload=payload, future=future,
                          cache_key=cache_key)
        try:
            self.batcher.put(request, timeout=timeout)
        except SchedulerClosed as error:
            raise ServerClosed("server is closed") from error
        return future

    def submit_many(self, samples: Iterable[np.ndarray],
                    timeout: Optional[float] = None) -> List[Future]:
        """Queue each sample of an iterable; futures come back in input order."""
        return [self.submit(sample, timeout=timeout) for sample in samples]

    def predict(self, batch: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Batch-in / batch-out convenience: submit rows, gather, stack.

        Row ``i`` of the result is the output for row ``i`` of ``batch`` —
        the futures preserve per-request order no matter how the scheduler
        batched them or which shard ran them.
        """
        batch = np.asarray(batch)
        if batch.shape[0] == 0:
            return empty_batch_result(self.plan, batch)
        futures = self.submit_many(batch, timeout=timeout)
        return np.stack([future.result(timeout=timeout) for future in futures])

    # ------------------------------------------------------------------ #
    # stats / lifecycle
    # ------------------------------------------------------------------ #
    def stats_report(self) -> dict:
        """Roll the per-shard stats and scheduler counters into one report.

        ``total`` merges every shard's :class:`RunnerStats`; ``shards`` keeps
        the per-shard breakdown (useful for spotting load imbalance);
        ``scheduler`` describes batch shaping and queue depth; ``cache``
        appears when result caching is enabled.
        """
        snapshots = [shard.stats_snapshot() for shard in self._shards]
        total = RunnerStats()
        for snapshot in snapshots:
            total.merge(snapshot)
        report = {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "scheduler": self.batcher.stats.to_dict(),
            "shards": [snapshot.to_dict() for snapshot in snapshots],
            "total": total.to_dict(),
        }
        if self.result_cache is not None:
            report["cache"] = self.result_cache.to_dict()
        return report

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain queued requests, stop the workers, release the shards.

        By default this blocks until every accepted request has been served
        (the no-drop contract).  With ``timeout`` (seconds for the whole
        drain), a :class:`TimeoutError` is raised if workers are still
        draining when it expires — the server stays closed to new submits,
        in-flight work keeps running, and the shards are **not** torn down
        underneath it; call :meth:`close` again to finish the drain.
        """
        self._closed = True
        self.batcher.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self._workers:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            worker.join(timeout=remaining)
        still_draining = sum(worker.is_alive() for worker in self._workers)
        if still_draining:
            raise TimeoutError(
                f"close({timeout=}) expired with {still_draining} worker(s) "
                "still draining; shards left running — call close() again "
                "to finish")
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
