"""Concurrent plan server: dynamic batching over a pool of sharded executors.

:class:`~repro.engine.runner.InferenceRunner` serves one stream from one
caller; :class:`PlanServer` serves *many* callers.  Requests enter through
:meth:`PlanServer.submit` / :meth:`PlanServer.submit_many` and flow through
three layers:

1. an optional **LRU result cache** — requests whose input digest was served
   before resolve immediately, without touching the queue;
2. the :class:`~repro.engine.scheduler.DynamicBatcher` — a bounded FIFO
   queue that coalesces individual requests into batches (flush on
   ``max_batch`` or ``max_wait_ms``, whichever first) and applies
   backpressure when producers outrun the shards;
3. a pool of **shard workers** — N executors over the same read-only plan,
   each owning its private activation buffers and
   :class:`~repro.engine.runner.RunnerStats` so shards never contend.
   Thread-backed shards (default) run the GEMMs in-process; process-backed
   shards (``backend="process"``) fork one child per shard and stream
   batches over a pipe, stepping around the GIL entirely.

Every request gets a :class:`concurrent.futures.Future` resolving to its own
output row, so per-request ordering is trivially preserved no matter how
batches are formed or which shard finishes first.  A second, module-level
**plan cache** (:func:`load_plan_cached`) makes constructing servers from
artifact paths cheap: hot reloads of the same ``.npz`` skip the disk parse
until the file actually changes.

Numerics: shards execute the same plan arrays as a single runner, and row
results are independent of batch composition, so a float64 server is
bit-identical to the single-runner path —
``benchmarks/bench_server_concurrency.py`` pins that, plus the >= 1.3x
aggregate-throughput contract of dynamic batching over per-request serving.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Iterable, List, Optional

import numpy as np

from .model_plan import load_plan
from .runner import PlanExecutor, RunnerStats, empty_batch_result
from .scheduler import DynamicBatcher, Request, RequestTiming, SchedulerClosed

__all__ = ["PlanServer", "ServerClosed", "ShardDied", "LRUCache",
           "load_plan_cached", "clear_plan_cache"]


class ServerClosed(RuntimeError):
    """Raised when submitting to a :class:`PlanServer` that has been closed."""


class ShardDied(RuntimeError):
    """A worker shard became unusable mid-serving (e.g. its process was killed).

    Requests in the failing batch receive this exception; the dead shard is
    retired and the remaining shards keep serving.  If the *last* shard
    dies, the server closes itself and fails all queued requests with this
    error rather than letting them hang.
    """


# --------------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------------- #
class LRUCache:
    """A small thread-safe least-recently-used cache with hit/miss counters.

    All state is guarded by one internal lock (declared below for the
    static analyzer); every method is safe to call from any thread.
    """

    _GUARDED_BY = {"_data": "_lock", "hits": "_lock", "misses": "_lock"}

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        """Return the cached value or ``None``; touches LRU order on hit.
        Thread-safe: lookup and counter update happen under the lock."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert ``key``; evicts the least-recently-used entry when full.
        Thread-safe: insert and eviction happen under the lock."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss counters.
        Thread-safe: one atomic reset under the lock."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def to_dict(self) -> dict:
        """JSON-serializable counters for the server stats report.
        Thread-safe: one consistent snapshot under the lock (``hits`` and
        ``misses`` can otherwise tear against a concurrent ``get``)."""
        with self._lock:
            return {"entries": len(self._data),
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses}


_PLAN_CACHE = LRUCache(max_entries=8)
_PLAN_FLIGHTS: dict = {}                 # cache key -> in-flight parse lock
_PLAN_FLIGHTS_LOCK = threading.Lock()


def load_plan_cached(path, mode: str = "float", compile: bool = False):
    """:func:`~repro.engine.model_plan.load_plan` behind a process-wide LRU.

    Keyed on the absolute path, the file's (mtime, size) stat, the
    execution mode **and** the ``compile`` flag, so a rewritten artifact is
    transparently reloaded while hot reloads of an unchanged file cost one
    ``stat`` call.  Keying on the mode gives each route its own plan object:
    callers share the returned plan, and a float-mode consumer must never
    observe its cached plan silently flipped to the integer route (plans are
    otherwise read-only at execution time, which is what makes the sharing —
    and the server's shard pool — safe).  ``compile=True`` caches the
    scheduled :class:`~repro.engine.compiler.CompiledPlan` executor for
    model-plan artifacts (see :func:`~repro.engine.model_plan.load_plan`).

    Misses are **single-flight**: concurrent callers of the same key share
    one parse and receive the same plan object, instead of each paying the
    disk parse and handing out distinct plans for one cache key (distinct
    plans would defeat the cache and double the resident arrays).  A failed
    parse releases the key so the next caller retries cleanly.
    """
    path = os.path.abspath(os.fspath(path))
    stat = os.stat(path)
    key = (path, stat.st_mtime_ns, stat.st_size, mode, bool(compile))
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        return plan
    with _PLAN_FLIGHTS_LOCK:
        flight = _PLAN_FLIGHTS.setdefault(key, threading.Lock())
    with flight:
        # late arrivals find the leader's plan here and skip the parse
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            try:
                plan = load_plan(path, mode=mode, compile=compile)
                _PLAN_CACHE.put(key, plan)
            finally:
                with _PLAN_FLIGHTS_LOCK:
                    _PLAN_FLIGHTS.pop(key, None)
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan (e.g. between benchmark phases)."""
    _PLAN_CACHE.clear()


def _digest(sample: np.ndarray) -> bytes:
    """Cache key of one request payload: shape + dtype + content hash."""
    h = hashlib.sha1()
    h.update(str(sample.shape).encode())
    h.update(str(sample.dtype).encode())
    h.update(np.ascontiguousarray(sample).tobytes())
    return h.digest()


# --------------------------------------------------------------------------- #
# shards
# --------------------------------------------------------------------------- #
class _ThreadShard:
    """A shard executing in-process through its own :class:`PlanExecutor`."""

    def __init__(self, plan, collect_timings: bool):
        self._executor = PlanExecutor(plan, collect_timings=collect_timings)

    @property
    def stats(self) -> RunnerStats:
        return self._executor.stats

    def stats_snapshot(self) -> RunnerStats:
        return self._executor.stats_snapshot()

    def execute_batch(self, batch: np.ndarray) -> np.ndarray:
        return self._executor.execute_batch(batch)

    def close(self) -> None:
        pass


def _process_shard_main(conn, plan, collect_timings: bool) -> None:
    """Child-process loop of a process-backed shard: recv batch, send rows."""
    executor = PlanExecutor(plan, collect_timings=collect_timings)
    while True:
        try:
            batch = conn.recv()
        except EOFError:
            break
        if batch is None:
            break
        try:
            out = executor.execute_batch(batch)
            conn.send(("ok", np.asarray(out), executor.stats))
        except Exception as error:   # noqa: BLE001 — relayed to the parent
            conn.send(("err", f"{type(error).__name__}: {error}", None))
    conn.close()


class _ProcessShard:
    """A shard forked into its own process, fed batches over a pipe.

    The child inherits the plan via fork (no pickling of the arrays); each
    round-trip ships one batch in and one result out.  ``stats`` mirrors the
    child's executor stats as of the last completed batch, with the parent's
    pipe round-trip time substituted for ``seconds`` so the server-level
    report reflects what callers actually experienced — mirrored under
    ``_stats_lock``, as declared below.
    """

    _GUARDED_BY = {"stats": "_stats_lock"}

    def __init__(self, plan, collect_timings: bool):
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(target=_process_shard_main,
                                 args=(child_conn, plan, collect_timings),
                                 daemon=True)
        self._proc.start()
        child_conn.close()
        self.stats = RunnerStats()
        self._stats_lock = threading.Lock()

    def stats_snapshot(self) -> RunnerStats:
        with self._stats_lock:
            return RunnerStats(samples=self.stats.samples,
                               batches=self.stats.batches,
                               seconds=self.stats.seconds,
                               layer_seconds=dict(self.stats.layer_seconds),
                               layer_calls=dict(self.stats.layer_calls))

    def execute_batch(self, batch: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        try:
            self._conn.send(batch)
            status, payload, child_stats = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            raise ShardDied(
                f"process shard (pid {self._proc.pid}) died mid-batch: "
                f"{type(error).__name__}: {error}") from error
        elapsed = time.perf_counter() - start
        if status != "ok":
            raise RuntimeError(f"process shard failed: {payload}")
        with self._stats_lock:
            if child_stats is not None:
                self.stats.samples = child_stats.samples
                self.stats.batches = child_stats.batches
                self.stats.layer_seconds = child_stats.layer_seconds
                self.stats.layer_calls = child_stats.layer_calls
            self.stats.seconds += elapsed
        return payload

    def close(self) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn.close()


class _ShardSlot:
    """One pool slot: a shard executor, its worker thread, its retire flag.

    The slot is the unit the pool grows and shrinks by — the shard executes
    batches, the worker thread pulls them from the shared batcher, and the
    ``retire`` event asks the worker to leave the pool at the next batch
    boundary (no batch is ever abandoned mid-execution).
    """

    def __init__(self, shard):
        self.shard = shard
        self.worker: Optional[threading.Thread] = None
        self.retire = threading.Event()


# --------------------------------------------------------------------------- #
# the server
# --------------------------------------------------------------------------- #
class PlanServer:
    """Concurrent request-facing front end over a frozen model plan.

    Parameters
    ----------
    plan:
        A :class:`~repro.engine.model_plan.ModelPlan` (or any executor with a
        compatible ``execute``/``np_dtype`` surface), **or** a path to a
        saved artifact — paths go through :func:`load_plan_cached`, so
        serving the same file twice reuses the parsed plan.
    n_shards:
        Number of worker executors.  Shards share the read-only plan but own
        private activation buffers and stats.
    backend:
        ``"thread"`` (default) or ``"process"`` (fork-based; POSIX only).
    max_batch / max_wait_ms / queue_size:
        Dynamic batching knobs, passed to
        :class:`~repro.engine.scheduler.DynamicBatcher`: flush when
        ``max_batch`` requests are pending or the oldest has waited
        ``max_wait_ms``; ``queue_size`` bounds the backlog (backpressure).
    result_cache_entries:
        When > 0, an LRU cache keyed on the input digest serves repeated
        requests without executing; cached rows are returned read-only.
    collect_timings:
        Forwarded to each shard's executor (per-layer timing stats).
    mode:
        Optional execution route served by every shard: ``"float"``
        (bit-exact reference) or ``"int"`` (fixed-point requantized).  Plan
        paths resolve through :func:`load_plan_cached` with the mode in the
        cache key; an in-memory plan is switched via ``plan.set_mode`` (mode
        is plan state, shared with other consumers of the same object).
        ``None`` (default) serves the plan in its current mode.
    compile:
        Serve the scheduled (fused + arena) executor instead of the
        interpreted plan.  Paths resolve through :func:`load_plan_cached`
        with ``compile`` in the cache key; an in-memory plan is compiled
        via ``plan.compile()`` when it supports it (an already-compiled
        plan serves as-is).  Keeping this a *construction* argument — not a
        pre-converted plan object — is what lets lifecycle rebuilds
        (restart, rolling reload) re-resolve the artifact path and still
        come up compiled.

    Use as a context manager, or call :meth:`close` — close drains queued
    requests before the workers exit, so no accepted request is dropped.

    Thread model: the shard pool membership and scale counters live under
    ``_pool_lock``, submission sequencing under ``_seq_lock`` (declared
    below for the static analyzer); ``_closed`` is an advisory fast-fail
    flag read without a lock — the authoritative rejection of late submits
    is the batcher's own closed check, made under the batcher lock.
    """

    _GUARDED_BY = {"_seq": "_seq_lock",
                   "_slots": "_pool_lock",
                   "_drained_stats": "_pool_lock",
                   "_shards_added": "_pool_lock",
                   "_shards_retired": "_pool_lock",
                   "_shards_died": "_pool_lock"}

    def __init__(self, plan, n_shards: int = 2, backend: str = "thread",
                 max_batch: int = 16, max_wait_ms: float = 2.0,
                 queue_size: int = 256, result_cache_entries: int = 0,
                 collect_timings: bool = True, mode: Optional[str] = None,
                 compile: bool = False):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}; "
                             "expected 'thread' or 'process'")
        if isinstance(plan, (str, os.PathLike)):
            plan = load_plan_cached(plan, mode=mode or "float",
                                    compile=compile)
        else:
            if mode is not None:
                plan.set_mode(mode)
            if compile and hasattr(plan, "compile"):
                plan = plan.compile()
        self.plan = plan
        self.backend = backend
        self.batcher = DynamicBatcher(max_batch=max_batch,
                                      max_wait_ms=max_wait_ms,
                                      queue_size=queue_size)
        self.result_cache = (LRUCache(result_cache_entries)
                             if result_cache_entries > 0 else None)
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False
        self._collect_timings = collect_timings
        self._shard_cls = _ThreadShard if backend == "thread" else _ProcessShard
        self._pool_lock = threading.Lock()
        self._slots: List[_ShardSlot] = []
        self._drained_stats = RunnerStats()   # stats of retired/dead shards
        self._shards_added = 0
        self._shards_retired = 0
        self._shards_died = 0
        for _ in range(n_shards):
            self._spawn_shard()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _spawn_shard(self) -> _ShardSlot:
        """Build one shard + worker and put it into rotation (pool lock held
        or construction-time single-threaded)."""
        slot = _ShardSlot(self._shard_cls(self.plan, self._collect_timings))
        with self._pool_lock:
            if self._closed:
                slot.shard.close()
                raise ServerClosed("server is closed")
            index = self._shards_added
            self._shards_added += 1
            self._slots.append(slot)
        slot.worker = threading.Thread(target=self._worker_loop, args=(slot,),
                                       name=f"plan-server-shard-{index}",
                                       daemon=True)
        slot.worker.start()
        return slot

    def _worker_loop(self, slot: _ShardSlot) -> None:
        shard = slot.shard
        while True:
            batch = self.batcher.next_batch(stop=slot.retire)
            if batch is None:
                return                    # closed and drained; close() cleans up
            if not batch:                 # woken to retire, no batch claimed
                with self._pool_lock:
                    alone = all(other is slot for other in self._slots)
                if alone and not self._closed:
                    slot.retire.clear()   # raced a dying sibling: the pool
                    continue              # must keep its last shard serving
                self._leave_pool(slot, died=False)
                return
            # claim each future; drop requests the client cancelled while
            # they sat in the queue (a cancelled future rejects set_result)
            batch = [request for request in batch
                     if request.future.set_running_or_notify_cancel()]
            if not batch:
                continue
            try:
                stacked = np.stack([request.payload for request in batch])
                out = shard.execute_batch(stacked)
                completed = time.monotonic()
                for row, request in zip(out, batch):
                    result = np.array(row, copy=True)
                    if self.result_cache is not None and request.cache_key:
                        result.flags.writeable = False
                        self.result_cache.put(request.cache_key, result)
                    self._stamp_timing(request, completed)
                    request.future.set_result(result)
            except ShardDied as error:
                completed = time.monotonic()
                for request in batch:
                    if not request.future.done():
                        self._stamp_timing(request, completed)
                        request.future.set_exception(error)
                self._leave_pool(slot, died=True, error=error)
                return
            except Exception as error:   # noqa: BLE001 — fail the whole batch
                completed = time.monotonic()
                for request in batch:
                    if not request.future.done():
                        self._stamp_timing(request, completed)
                        request.future.set_exception(error)

    @staticmethod
    def _stamp_timing(request: Request, completed: float) -> None:
        """Attach the queue/compute split to the future, pre-resolution.

        Written before ``set_result``/``set_exception``, so any caller that
        observed the outcome also observes the timing (the future's internal
        condition provides the ordering).  The network front end reads it
        as ``future.timing`` for its latency histograms.
        """
        dispatched = request.dispatched
        if dispatched is None:   # defensive: batch never went through _pop_batch
            dispatched = completed
        request.future.timing = RequestTiming(
            queue_s=max(0.0, dispatched - request.arrival),
            compute_s=max(0.0, completed - dispatched))

    def _leave_pool(self, slot: _ShardSlot, died: bool,
                    error: Optional[Exception] = None) -> None:
        """Take one shard out of rotation; keep the rest serving.

        The leaving shard stops pulling batches (a dead one can no longer
        poison the shared queue); its final stats fold into the drained
        accumulator so server totals stay monotonic across scale-downs.
        When the *last* shard dies the server closes itself and fails every
        queued request with :class:`ShardDied` instead of letting callers
        hang.
        """
        with self._pool_lock:
            if slot in self._slots:
                self._slots.remove(slot)
            self._drained_stats.merge(slot.shard.stats_snapshot())
            if died:
                self._shards_died += 1
            else:
                self._shards_retired += 1
            pool_empty = not self._slots
        slot.shard.close()
        if not pool_empty:
            return
        self._closed = True
        self.batcher.close()
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            for request in batch:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(ShardDied(
                        f"all shards died; last error: {error}"))

    # ------------------------------------------------------------------ #
    # pool scaling
    # ------------------------------------------------------------------ #
    def add_shard(self) -> int:
        """Grow the pool by one shard while serving; returns the new size.

        Thread-safe: the pool mutates under the pool lock.  The new worker
        joins the existing batcher immediately, so queued requests start
        landing on it without any pause in service.  Raises
        :class:`ServerClosed` on a closed (or all-shards-dead) server.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        self._spawn_shard()
        return self.n_shards

    def retire_shard(self, wait: bool = False,
                     timeout: Optional[float] = None) -> int:
        """Shrink the pool by one shard without dropping any request.

        Thread-safe: the retirement mark is placed under the pool lock.
        Marks one live shard for retirement and wakes the workers; the
        marked worker leaves at its next batch boundary (an executing batch
        always completes — accepted requests are never abandoned).  The
        leave is asynchronous unless ``wait=True`` joins the worker (bounded
        by ``timeout``).  Returns the pool size still in rotation; refuses
        to retire the last shard (:class:`ValueError`).
        """
        with self._pool_lock:
            if self._closed:
                raise ServerClosed("server is closed")
            live = [slot for slot in self._slots if not slot.retire.is_set()]
            if len(live) <= 1:
                raise ValueError("cannot retire the last shard of the pool")
            slot = live[-1]
            slot.retire.set()
            remaining = len(live) - 1
        self.batcher.kick()
        if wait:
            slot.worker.join(timeout)
        return remaining

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of worker shards in rotation (retiring shards excluded).
        Thread-safe: counts under the pool lock."""
        with self._pool_lock:
            return sum(1 for slot in self._slots
                       if not slot.retire.is_set())

    @property
    def _shards(self) -> List:
        """The live shard executors (test/diagnostic hook, order = spawn)."""
        with self._pool_lock:
            return [slot.shard for slot in self._slots]

    def submit(self, sample: np.ndarray,
               timeout: Optional[float] = None) -> Future:
        """Queue one sample; the future resolves to its output row.

        The sample is cast to the plan dtype and copied into the queue, so
        the caller's array can be reused immediately.  Blocks while the
        bounded queue is full (``timeout`` seconds at most —
        :class:`TimeoutError` after that); raises :class:`ServerClosed` on a
        closed server.  With result caching enabled, a digest hit resolves
        the future immediately with a read-only cached row.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        payload = np.array(sample, dtype=self.plan.np_dtype, copy=True)
        future: Future = Future()
        cache_key = None
        if self.result_cache is not None:
            cache_key = _digest(payload)
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                future.timing = RequestTiming(cached=True)
                future.set_result(cached)
                return future
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        request = Request(seq=seq, payload=payload, future=future,
                          cache_key=cache_key)
        try:
            self.batcher.put(request, timeout=timeout)
        except SchedulerClosed as error:
            raise ServerClosed("server is closed") from error
        return future

    @staticmethod
    def _abandon(futures: List[Future]) -> int:
        """Withdraw a partially-submitted prefix; returns how many cancelled.

        Still-queued futures cancel outright (the worker loop drops
        cancelled requests before batching).  Futures a shard already
        claimed cannot be cancelled; a done-callback marks their eventual
        outcome observed so no enqueued work resolves reader-less.  Never
        blocks — safe to call under the endpoint admission lock.
        """
        cancelled = 0
        for future in futures:
            if future.cancel():
                cancelled += 1
            else:
                future.add_done_callback(lambda f: f.exception())
        return cancelled

    def submit_many(self, samples: Iterable[np.ndarray],
                    timeout: Optional[float] = None) -> List[Future]:
        """Queue each sample of an iterable; futures come back in input order.

        Thread-safe, like :meth:`submit`, and all-or-nothing: when a submit
        fails mid-iteration (backpressure timeout, server closing), the
        already-enqueued prefix is withdrawn via :meth:`_abandon` before
        the error propagates — the caller never leaks
        accepted-but-unreadable work, and sample-level accounting can
        treat the whole call as rejected.
        """
        futures: List[Future] = []
        try:
            for sample in samples:
                futures.append(self.submit(sample, timeout=timeout))
        except BaseException:
            self._abandon(futures)
            raise
        return futures

    def predict(self, batch: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Batch-in / batch-out convenience: submit rows, gather, stack.

        Thread-safe: any number of callers may predict concurrently; their
        rows interleave in the shared queue.  Row ``i`` of the result is
        the output for row ``i`` of ``batch`` — the futures preserve
        per-request order no matter how the scheduler batched them or
        which shard ran them.

        ``timeout`` is **one shared deadline** for the whole call — queue
        admission and result gathering together.  (It used to be applied to
        each future in turn, so an N-sample request could wait up to
        N x timeout before failing.)  On expiry the not-yet-claimed
        remainder is withdrawn and :class:`TimeoutError` propagates.
        """
        batch = np.asarray(batch)
        if batch.shape[0] == 0:
            return empty_batch_result(self.plan, batch)
        deadline = None if timeout is None else time.monotonic() + timeout

        def remaining() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - time.monotonic())

        futures: List[Future] = []
        try:
            for sample in batch:
                futures.append(self.submit(sample, timeout=remaining()))
            return np.stack([future.result(timeout=remaining())
                             for future in futures])
        except BaseException:
            self._abandon(futures)
            raise

    # ------------------------------------------------------------------ #
    # stats / lifecycle
    # ------------------------------------------------------------------ #
    def stats_report(self) -> dict:
        """Roll the per-shard stats and scheduler counters into one report.

        ``total`` merges every live shard's :class:`RunnerStats` plus the
        drained stats of shards that retired or died, so totals stay
        monotonic across pool scaling; ``shards`` keeps the live per-shard
        breakdown (useful for spotting load imbalance); ``scheduler``
        describes batch shaping and queue depth (snapshotted under the
        batcher lock — counters in the report are mutually consistent);
        ``pool`` counts scale events; ``cache`` appears when result caching
        is enabled.
        """
        with self._pool_lock:
            shards = [slot.shard for slot in self._slots]
            total = RunnerStats().merge(self._drained_stats)
            pool = {"added": self._shards_added,
                    "retired": self._shards_retired,
                    "died": self._shards_died}
        snapshots = [shard.stats_snapshot() for shard in shards]
        for snapshot in snapshots:
            total.merge(snapshot)
        report = {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "pool": pool,
            "scheduler": self.batcher.stats_snapshot().to_dict(),
            "shards": [snapshot.to_dict() for snapshot in snapshots],
            "total": total.to_dict(),
        }
        if self.result_cache is not None:
            report["cache"] = self.result_cache.to_dict()
        return report

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain queued requests, stop the workers, release the shards.

        By default this blocks until every accepted request has been served
        (the no-drop contract).  With ``timeout`` (seconds for the whole
        drain), a :class:`TimeoutError` is raised if workers are still
        draining when it expires — the server stays closed to new submits,
        in-flight work keeps running, and the shards are **not** torn down
        underneath it; call :meth:`close` again to finish the drain.
        """
        self._closed = True
        self.batcher.close()
        with self._pool_lock:
            slots = list(self._slots)
        deadline = None if timeout is None else time.monotonic() + timeout
        for slot in slots:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            slot.worker.join(timeout=remaining)
        still_draining = sum(slot.worker.is_alive() for slot in slots)
        if still_draining:
            raise TimeoutError(
                f"close({timeout=}) expired with {still_draining} worker(s) "
                "still draining; shards left running — call close() again "
                "to finish")
        for slot in slots:
            slot.shard.close()

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
