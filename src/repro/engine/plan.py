"""Compiled per-layer inference plans for the frozen CIM engine.

The QAT-oriented forward of :class:`~repro.core.cim_conv.CIMConv2d` /
:class:`~repro.core.cim_linear.CIMLinear` re-derives everything from the
learnable parameters on every call: it re-quantizes the weights, re-runs
bit-splitting, re-builds the tiled layout and re-broadcasts the dequantization
scales.  None of that depends on the input, so at inference time it is pure
overhead.  A *plan* snapshots all of it once, at freeze time:

* the integer tiled weight ``w_bar`` and its per-cell bit-splits,
* the weight scale ``s_w`` and the valid-rows mask of the tiling,
* the activation and partial-sum quantizer parameters (scales + clip ranges),
* the folded dequantization multiplier ``M = s_p * 2**(j*cell_bits) * s_w``
  (one multiplication per ADC column instead of three broadcast passes —
  the deployment folding of Fig. 4(d) of the paper),
* a pre-reshaped weight operand for a single batched GEMM per layer.

The snapshot is not re-derived here: :meth:`repro.core.pipeline.CIMPipeline.
compile_state` walks the *same stage list* that executes the QAT forward and
asks each stage for its static arrays.  Whatever math a stage computes at
training time is, by construction, the math the compiled plan caches.

Two execution strategies are compiled into every plan:

fused path (partial-sum quantization disabled, no recorder)
    The bit-splits are folded back into the integer weight (exact, since
    ``sum_j split_j * 2**(j*cell_bits) == w_bar``), the weight scale is folded
    in, and the whole layer collapses to **one** GEMM over the activation
    columns — the ``(S, A, N, L, OC)`` partial-sum intermediate (axis
    convention: :mod:`repro.core.psum`) is never materialized.

quantized path (partial-sum quantization enabled)
    The per-(split, array) partial sums are semantically observable — the ADC
    rounds each one — so the intermediate must exist; the plan computes it
    with a single batched GEMM over arrays, quantizes in place, and reduces
    with one ``einsum`` against the folded multiplier ``M``.

Plans are plain data (NumPy arrays + geometry) and can be serialized with
:func:`save_plan` / :func:`load_plan`; the crossbar mapping travels along via
:func:`repro.cim.tiling.mapping_to_dict`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..cim.tiling import WeightMapping, mapping_from_dict, mapping_to_dict
from ..core.pipeline import varied_splits
from ..core.requant import RequantConstants, requantize
from ..nn import functional as F
from .hotpath import hot_path, scratch

__all__ = [
    "ConvPlan",
    "LinearPlan",
    "PlanNotReadyError",
    "compile_plan",
    "compile_conv_plan",
    "compile_linear_plan",
    "layer_signature",
    "signature_ready",
    "normalize_dtype",
    "plan_meta",
    "plan_arrays",
    "plan_from_parts",
    "save_plan",
    "load_plan",
]


class PlanNotReadyError(RuntimeError):
    """Raised when compiling a layer whose LSQ quantizers are not initialized.

    Activation and partial-sum scales are initialized from the first observed
    batch; until then there is nothing to snapshot.  Run one forward pass (or
    pass ``calibrate=`` to :func:`repro.engine.freeze`) and compile again.
    """


def layer_signature(layer) -> Tuple[bool, bool, bool]:
    """Snapshot of the layer state a compiled plan depends on.

    Returns ``(psum_quant_enabled, act_ready, psum_ready)``.  A plan compiled
    under one signature is stale once the layer's signature changes (e.g.
    partial-sum quantization was toggled by a two-stage trainer, or a lazy
    LSQ scale got initialized); :class:`~repro.engine.frozen.FrozenCIMConv2d`
    recompiles automatically when that happens.
    """
    act_ready = layer.act_quant is None or layer.act_quant.is_initialized()
    psum_enabled = bool(layer.psum_quant_enabled)
    psum_ready = (not psum_enabled) or layer.psum_quant.is_initialized()
    return (psum_enabled, act_ready, psum_ready)


def signature_ready(signature: Tuple[bool, bool, bool]) -> bool:
    """True when every quantizer a plan needs has been initialized."""
    _, act_ready, psum_ready = signature
    return act_ready and psum_ready


# --------------------------------------------------------------------------- #
# plan dataclasses
# --------------------------------------------------------------------------- #
@dataclass
class _PlanBase:
    """State shared by the convolution and linear plans.

    All arrays are detached copies — mutating the source layer after freezing
    does not change the plan (call :meth:`FrozenCIMConv2d.refresh` or re-freeze
    to pick up new parameters).
    """

    out_channels: int
    n_arrays: int
    rows_per_array: int
    n_splits: int
    pad_rows: int
    w_bar: np.ndarray             # (A, R, OC) integer weight codes
    splits: np.ndarray            # (S, A, R, OC) integer cell codes
    s_w: np.ndarray               # weight scale, broadcastable to (A, R, OC)
    valid_mask: np.ndarray        # (A, R, 1) rows holding real weights
    shift_factors: np.ndarray     # (S,) shift-and-add factors 2**(j*cell_bits)
    w_eff_mat: np.ndarray         # (A*R, OC) folded weight for the fused path
    bias: Optional[np.ndarray]
    act_scale: Optional[np.ndarray]   # (1,) activation scale, None = raw input
    act_qmin: float
    act_qmax: float
    psum_quant_enabled: bool
    s_p: Optional[np.ndarray]     # (S|1, A|1, OC|1) partial-sum scale
    psum_qmin: float
    psum_qmax: float
    mapping: WeightMapping
    signature: Tuple[bool, bool, bool]
    dtype: str = "float64"        # execution dtype ("float64" | "float32")
    requant: Optional[RequantConstants] = None  # None = float-only artifact
    mode: str = field(default="float", repr=False)  # runtime, not serialized
    # derived operands, rebuilt by _build_derived()
    row_slices: list = field(init=False, repr=False, default=None)
    w_split_mats: list = field(init=False, repr=False, default=None)
    w_eff_valid: np.ndarray = field(init=False, repr=False, default=None)
    s_p_full: Optional[np.ndarray] = field(init=False, repr=False, default=None)
    m_fold: Optional[np.ndarray] = field(init=False, repr=False, default=None)

    def __post_init__(self):
        self._build_derived()

    def _build_derived(self) -> None:
        """Pre-reshape the cached arrays into GEMM-ready per-array operands.

        The tiled layout zero-pads every array to ``rows_per_array`` word
        lines, but zero rows contribute nothing to a partial sum; the derived
        operands keep only the valid rows of each tile (via the mapping's row
        partition), so the hot path never pads activation columns and never
        multiplies dead rows.
        """
        s, a, r, oc = self.splits.shape
        self.row_slices = [(t.row_start, t.row_stop) for t in self.mapping.tiles]
        # per-array (rows_a, S*OC) bit-split weights for the quantized path
        self.w_split_mats = [
            np.ascontiguousarray(
                self.splits[:, i, :stop - start, :].transpose(1, 0, 2)
            ).reshape(stop - start, s * oc)
            for i, (start, stop) in enumerate(self.row_slices)]
        # (in_features, OC) folded weight for the fused path (valid rows only)
        self.w_eff_valid = np.concatenate(
            [self.w_eff_mat[i * r:i * r + (stop - start)]
             for i, (start, stop) in enumerate(self.row_slices)], axis=0)
        if self.psum_quant_enabled and self.s_p is not None:
            self.s_p_full = np.ascontiguousarray(
                np.broadcast_to(self.s_p, (s, a, oc)).transpose(1, 0, 2))
            s_w_sq = self.s_w.reshape(self.s_w.shape[0], self.s_w.shape[2])
            m = self.s_p * self.shift_factors[:, None, None] * s_w_sq[None, :, :]
            self.m_fold = np.ascontiguousarray(
                np.broadcast_to(m, (s, a, oc)).transpose(1, 0, 2))
        else:
            self.s_p_full = None
            self.m_fold = None
        self._build_int_operands()

    def _build_int_operands(self) -> None:
        """GEMM-ready integer-route operands (no-ops for float-only plans).

        The integer operands are carried in the exact-integer GEMM dtype the
        compiler certified (``requant.gemm_dtype`` — see
        :mod:`repro.core.requant`); the fixed-point multipliers are widened
        to ``int64`` once so the hot loop multiplies without per-batch casts.
        """
        rq = self.requant
        self._w_int_mats = self._w_split_int_mats = None
        self._m0_fused64 = self._m0_adc64 = self._m0_out64 = None
        self._shift_adc64 = self._half_adc64 = None
        self._half_out = self._shift_out = None
        self._s_out_cast = None
        if rq is None:
            return
        carrier = np.dtype(rq.gemm_dtype)
        s, _, _, oc = self.splits.shape
        if self.psum_quant_enabled:
            self._w_split_int_mats = [
                np.ascontiguousarray(
                    self.splits[:, i, :stop - start, :].transpose(1, 0, 2)
                    .astype(carrier)).reshape(stop - start, s * oc)
                for i, (start, stop) in enumerate(self.row_slices)]
            # broadcast-ready (A, 1, S, OC) views so the hot loop applies
            # every array's constants in one vectorized in-place pass
            self._m0_adc64 = rq.m0_adc.astype(np.int64)[:, None]
            self._shift_adc64 = rq.shift_adc.astype(np.int64)[:, None]
            self._half_adc64 = (np.int64(1) << self._shift_adc64) >> np.int64(1)
            self._m0_out64 = rq.m0_out.astype(np.int64)
        else:
            self._w_int_mats = [
                np.ascontiguousarray(
                    self.w_bar[i, :stop - start, :].astype(carrier))
                for i, (start, stop) in enumerate(self.row_slices)]
            self._m0_fused64 = rq.m0_fused.astype(np.int64)[:, None]
        self._half_out = (np.int64(1) << np.int64(rq.shift)) >> np.int64(1)
        self._shift_out = np.int64(rq.shift)
        self._s_out_cast = rq.s_out.astype(self.np_dtype)

    # ---------------------------------------------------------------- #
    @property
    def ready(self) -> bool:
        """Compiled plans are always executable for their signature."""
        return True

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype the plan's arrays are stored (and executed) in."""
        return np.dtype(self.dtype)

    def _cast_input(self, x: np.ndarray) -> np.ndarray:
        """View/copy the activation array in the plan's execution dtype."""
        return np.asarray(x, dtype=self.np_dtype)

    def set_mode(self, mode: str) -> None:
        """Select the execution route: ``"float"`` (reference) or ``"int"``.

        Runtime state, not part of the artifact — a freshly loaded plan is
        always in float mode.  ``"int"`` requires the plan to carry
        :class:`~repro.core.requant.RequantConstants` (artifacts saved before
        the integer path exist but are float-only) and is accepted — as a
        recorded no-op — on raw-input plans (``act_scale is None``): without
        an input quantizer there is no integer grid to execute on, so such
        layers legitimately stay on the float route in integer mode.
        """
        if mode not in ("float", "int"):
            raise ValueError(f"unknown execution mode {mode!r}; "
                             "expected 'float' or 'int'")
        if mode == "int" and self.requant is None and self.act_scale is not None:
            raise ValueError(
                "this plan carries no requant constants (the artifact "
                "predates the integer execution path); recompile the layer "
                "or re-save the artifact to enable mode='int'")
        self.mode = mode

    def _int_route(self, variation) -> bool:
        """True when this call executes on the integer route."""
        if self.mode != "int" or self.requant is None:
            return False
        if variation is not None:
            raise ValueError(
                "device variation perturbs the programmed cells with float "
                "noise and has no fixed-point equivalent; run variation "
                "studies in mode='float'")
        return True

    def _quantize_acts(self, x: np.ndarray) -> np.ndarray:
        """LSQ activation quantization: ``round(clamp(x / s_a))`` codes."""
        if self.act_scale is None:
            return x
        a = np.clip(x / self.act_scale, self.act_qmin, self.act_qmax)
        return np.round(a, out=a)

    @hot_path
    def _quantize_acts_carrier(self, x: np.ndarray) -> np.ndarray:
        """Activation codes cast onto the integer route's GEMM carrier.

        The divide/clamp/round runs in the plan dtype — bit-identical codes
        to :meth:`_quantize_acts` — and only the final (exact, small-integer)
        values land in the carrier, fused into the rounding pass; with a
        ``float32`` carrier every downstream unfold and GEMM then moves half
        the bytes.

        Registered hot: the code array is a thread-local :func:`scratch`
        buffer, fully overwritten by the rounding pass and consumed (by the
        unfold/GEMM) before this request returns — steady-state calls with a
        stable batch shape allocate nothing.
        """
        a = np.clip(x / self.act_scale, self.act_qmin, self.act_qmax)
        codes = scratch((id(self), "act_codes"), a.shape,
                        np.dtype(self.requant.gemm_dtype))
        return np.rint(a, out=codes, casting="unsafe")

    def _varied_splits(self, variation) -> np.ndarray:
        """Apply a device-variation model to the cached cell codes.

        Delegates to the layers' own
        :func:`~repro.core.pipeline.varied_splits` — same math, same RNG draw
        order — so a frozen layer with the same
        :class:`~repro.cim.variation.VariationModel` state produces the same
        perturbed cells as the unfrozen one.
        """
        return varied_splits(self.splits, self.w_bar, variation)

    def _varied_wsplit_mats(self, variation) -> list:
        """Per-array ``(rows_a, S*OC)`` operands under device variation."""
        s, _, _, oc = self.splits.shape
        sv = self._varied_splits(variation)
        return [np.ascontiguousarray(
                    sv[:, i, :stop - start, :].transpose(1, 0, 2)
                ).reshape(stop - start, s * oc)
                for i, (start, stop) in enumerate(self.row_slices)]

    def _varied_w_eff(self, variation) -> np.ndarray:
        """Fused ``(in_features, OC)`` weight with variation folded through the shifts."""
        sv = self._varied_splits(variation)
        w_eff = (sv * self.shift_factors.reshape(-1, 1, 1, 1)).sum(axis=0) * self.s_w
        return np.concatenate(
            [w_eff[i, :stop - start, :]
             for i, (start, stop) in enumerate(self.row_slices)], axis=0)

    def _contract(self, cols_flat: np.ndarray, variation) -> np.ndarray:
        """Contract activation columns ``(NL, in_features)`` into ``(NL, OC)``.

        Dispatches between the fused single-GEMM path and the quantized
        (ADC-observing) path; see the module docstring for when each applies.
        """
        if not self.psum_quant_enabled:
            w_eff = self.w_eff_valid if variation is None else self._varied_w_eff(variation)
            return cols_flat @ w_eff
        nl = cols_flat.shape[0]
        s, oc = self.n_splits, self.out_channels
        w_mats = self.w_split_mats if variation is None else self._varied_wsplit_mats(variation)
        out = np.zeros((nl, oc), dtype=cols_flat.dtype)
        for i, (start, stop) in enumerate(self.row_slices):
            p = cols_flat[:, start:stop] @ w_mats[i]        # (NL, S*OC) partial sums
            p = p.reshape(nl, s, oc)
            p /= self.s_p_full[i]
            np.clip(p, self.psum_qmin, self.psum_qmax, out=p)
            np.round(p, out=p)                              # ADC codes
            # ``optimize=False`` skips the per-call path/parse machinery
            # (~50us/call).  It is only safe when no axis is singleton: the
            # optimizer can reach a BLAS kernel (different summation order,
            # different bits) solely by squeezing a length-1 axis, so with
            # every axis > 1 both settings resolve to the same ``c_einsum``
            # call and the results are bit-identical.
            m = self.m_fold[i]
            if nl > 1 and s > 1 and oc > 1:
                out += np.einsum("xso,so->xo", p, m, optimize=False)
            else:
                out += np.einsum("xso,so->xo", p, m, optimize=True)
        return out

    @hot_path
    def _contract_int(self, cols_flat: np.ndarray) -> np.ndarray:
        """Integer-route contraction: ``(NL, in_features)`` to ``(NL, OC)``.

        Between the incoming activation codes and the final per-channel
        output dequant (``* s_out``) every operation is integer arithmetic:
        the GEMMs multiply integer-valued operands in the certified
        exact-integer carrier dtype, everything downstream — ADC
        requantization, fixed-point multipliers, the bias fold, the single
        output rounding shift — runs in ``int64``.  The returned array is
        the finished layer output (scale and bias already applied); callers
        must not re-apply ``act_scale`` or ``bias``.

        Registered hot: every intermediate lives in a thread-local
        :func:`scratch` buffer, fully overwritten before it is read and
        consumed before this call returns (the returned array is the fresh
        output of the final dequant multiply, never a scratch view), so
        steady-state calls with a stable batch shape allocate only the
        result.  The fixed-point section is fenced with ``int-pure``
        markers for the static analyzer.
        """
        rq = self.requant
        cols_c = cols_flat.astype(np.dtype(rq.gemm_dtype), copy=False)
        nl = cols_flat.shape[0]
        s, oc = self.n_splits, self.out_channels
        n_arrays = len(self.row_slices)
        if self.psum_quant_enabled:
            # one GEMM per array into a shared buffer, then a single
            # vectorized fixed-point pass over all arrays at once: the exact
            # float-carrier partial sums cast+multiply onto int64 in one
            # fused ufunc, then the sign-uniform half-up ADC divide of
            # requantize_up is three in-place passes (add, shift, clip) —
            # constants were validated and verified at build time, so the
            # hot loop carries no per-array call or sign-handling overhead
            p = scratch((id(self), "ci_p"), (n_arrays, nl, s * oc),
                        cols_c.dtype)
            for i, (start, stop) in enumerate(self.row_slices):
                np.matmul(cols_c[:, start:stop], self._w_split_int_mats[i],
                          out=p[i])
            # the fixed-point passes are memory-bound; blocking over the
            # batch axis keeps each block cache-resident across all of them
            qmin_i, qmax_i = int(self.psum_qmin), int(self.psum_qmax)
            rows = max(1, (1 << 18) // max(1, n_arrays * s * oc))
            acc = scratch((id(self), "ci_acc"), (nl, oc), np.int64)
            buf = scratch((id(self), "ci_buf"),
                          (n_arrays, min(rows, max(nl, 1)), s, oc), np.int64)
            # int-pure: begin
            for j in range(0, nl, rows):
                c = min(rows, nl - j)
                b = buf[:, :c]
                np.multiply(p[:, j:j + c].reshape(n_arrays, c, s, oc),
                            self._m0_adc64, out=b, casting="unsafe")  # exact
                b += self._half_adc64               # (A, 1, S, OC) bcast
                b >>= self._shift_adc64             # arithmetic: half-up
                np.clip(b, qmin_i, qmax_i, out=b)
                # fused multiply-reduce: sum_{a,s} codes * m0_out -> (c, OC)
                np.einsum("anso,aso->no", b, self._m0_out64,
                          out=acc[j:j + c])
            # int-pure: end
        else:
            p = scratch((id(self), "ci_pf"), (n_arrays, nl, oc), cols_c.dtype)
            for i, (start, stop) in enumerate(self.row_slices):
                np.matmul(cols_c[:, start:stop], self._w_int_mats[i],
                          out=p[i])
            # int-pure: begin
            p64 = np.multiply(p, self._m0_fused64,      # (A, 1, OC) bcast
                              dtype=np.int64, casting="unsafe")
            acc = p64.sum(axis=0)
            # int-pure: end
        # int-pure: begin
        if rq.bias_q is not None:
            acc += rq.bias_q
        acc += self._half_out                # one half-up rounding shift for
        acc >>= self._shift_out              # the whole layer (see requantize_up)
        # int-pure: end
        # output dequant fused with the cast: the only float multiply, at the
        # layer boundary (codes are exact in float64; float32 plans narrow
        # here exactly as the float route's output does)
        return np.multiply(acc, self._s_out_cast, dtype=self.np_dtype,
                           casting="unsafe")


@dataclass
class ConvPlan(_PlanBase):
    """Frozen inference plan of one :class:`~repro.core.cim_conv.CIMConv2d`."""

    in_channels: int = 0
    kernel_size: Tuple[int, int] = (1, 1)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)

    layer_type = "conv2d"

    def execute(self, x: np.ndarray, variation=None) -> np.ndarray:
        """Run the frozen forward on a ``(N, C, H, W)`` activation array."""
        x = self._cast_input(x)
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        kh, kw = self.kernel_size
        out_h = F.conv_output_size(h, kh, self.stride[0], self.padding[0])
        out_w = F.conv_output_size(w, kw, self.stride[1], self.padding[1])
        length = out_h * out_w

        int_route = self._int_route(variation)
        a = (self._quantize_acts_carrier(x) if int_route
             else self._quantize_acts(x))
        cols = F.unfold_array(a, self.kernel_size, self.stride, self.padding,
                              layout="nlk")                 # (N, L, D)
        # explicit D (not -1): zero-row batches make -1 ambiguous
        cols_flat = cols.reshape(n * length, cols.shape[2])
        if int_route:
            out = self._contract_int(cols_flat)  # scale + bias already folded
        else:
            out = self._contract(cols_flat, variation)      # (NL, OC)
            if self.act_scale is not None:
                out *= self.act_scale
        out = out.reshape(n, length, self.out_channels).transpose(0, 2, 1)
        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None and not int_route:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out


@dataclass
class LinearPlan(_PlanBase):
    """Frozen inference plan of one :class:`~repro.core.cim_linear.CIMLinear`."""

    in_features: int = 0

    layer_type = "linear"

    def execute(self, x: np.ndarray, variation=None) -> np.ndarray:
        """Run the frozen forward on a ``(N, in_features)`` activation array."""
        x = self._cast_input(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {x.shape}")
        if self._int_route(variation):
            return self._contract_int(self._quantize_acts_carrier(x))
        a = self._quantize_acts(x)
        out = self._contract(a, variation)                  # (N, OC)
        if self.act_scale is not None:
            out *= self.act_scale
        if self.bias is not None:
            out = out + self.bias
        return out


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def normalize_dtype(dtype) -> str:
    """Canonical plan-dtype name (``"float64"`` / ``"float32"``) for ``dtype``.

    Accepts the canonical strings, NumPy dtypes and dtype-like objects; any
    other width is rejected — plans are pure floating-point GEMM recipes and
    only ship in the two widths the engine supports.
    """
    name = np.dtype(dtype).name
    if name not in ("float64", "float32"):
        raise ValueError(f"unsupported plan dtype {name!r}; "
                         "expected 'float64' or 'float32'")
    return name


def _snapshot_common(layer, signature, dtype: str) -> dict:
    """Detached copies of everything both plan kinds cache.

    Compiled from the layer's own stage list: each
    :class:`~repro.core.pipeline.PipelineStage` contributes the static arrays
    it would compute in the QAT forward (weight codes, bit-splits, quantizer
    snapshots, the fused dequant operand), and the
    :class:`~repro.core.pipeline.LayerGeometry` contributes the structural
    fields.  The plan never re-derives stage math.
    """
    state = layer.pipeline.compile_state(dtype=np.dtype(dtype))
    state["signature"] = signature
    state["dtype"] = dtype
    return state


def compile_conv_plan(layer, dtype="float64") -> ConvPlan:
    """Compile a :class:`~repro.core.cim_conv.CIMConv2d` into a :class:`ConvPlan`.

    Raises :class:`PlanNotReadyError` if the layer's lazily-initialized LSQ
    scales have not yet observed a batch.  ``dtype`` selects the execution
    precision of the compiled plan (QAT Tensor math stays float64).
    """
    signature = layer_signature(layer)
    if not signature_ready(signature):
        raise PlanNotReadyError(
            "activation / partial-sum quantizers are uninitialized; run one "
            "forward pass (or freeze with calibrate=...) before compiling")
    return ConvPlan(in_channels=layer.in_channels,
                    kernel_size=layer.kernel_size,
                    stride=layer.stride,
                    padding=layer.padding,
                    **_snapshot_common(layer, signature, normalize_dtype(dtype)))


def compile_linear_plan(layer, dtype="float64") -> LinearPlan:
    """Compile a :class:`~repro.core.cim_linear.CIMLinear` into a :class:`LinearPlan`."""
    signature = layer_signature(layer)
    if not signature_ready(signature):
        raise PlanNotReadyError(
            "activation / partial-sum quantizers are uninitialized; run one "
            "forward pass (or freeze with calibrate=...) before compiling")
    return LinearPlan(in_features=layer.in_features,
                      **_snapshot_common(layer, signature, normalize_dtype(dtype)))


def compile_plan(layer, dtype="float64"):
    """Compile a plan for any CIM layer (dispatch on the layer type)."""
    from ..core.cim_conv import CIMConv2d
    from ..core.cim_linear import CIMLinear
    if isinstance(layer, CIMConv2d):
        return compile_conv_plan(layer, dtype=dtype)
    if isinstance(layer, CIMLinear):
        return compile_linear_plan(layer, dtype=dtype)
    raise TypeError(f"cannot compile a plan for {type(layer).__name__}")


# --------------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------------- #
_ARRAY_FIELDS = ("w_bar", "splits", "s_w", "valid_mask", "shift_factors",
                 "w_eff_mat", "bias", "act_scale", "s_p")


def plan_meta(plan) -> dict:
    """JSON-serializable metadata of one layer plan (everything non-array).

    This is the single owner of the layer-plan manifest schema: the per-layer
    :func:`save_plan` archives and the ``layers`` section of a
    :class:`~repro.engine.model_plan.ModelPlan` manifest both embed exactly
    this dictionary.
    """
    meta = {
        "layer_type": plan.layer_type,
        "out_channels": plan.out_channels,
        "n_arrays": plan.n_arrays,
        "rows_per_array": plan.rows_per_array,
        "n_splits": plan.n_splits,
        "pad_rows": plan.pad_rows,
        "act_qmin": plan.act_qmin,
        "act_qmax": plan.act_qmax,
        "psum_quant_enabled": plan.psum_quant_enabled,
        "psum_qmin": plan.psum_qmin,
        "psum_qmax": plan.psum_qmax,
        "signature": list(plan.signature),
        "dtype": plan.dtype,
        "mapping": mapping_to_dict(plan.mapping),
        "requant": None if plan.requant is None else plan.requant.meta(),
    }
    if isinstance(plan, ConvPlan):
        meta.update(in_channels=plan.in_channels,
                    kernel_size=list(plan.kernel_size),
                    stride=list(plan.stride),
                    padding=list(plan.padding))
    else:
        meta.update(in_features=plan.in_features)
    return meta


def plan_arrays(plan) -> dict:
    """The plan's array payload, keyed by field name (``None`` fields omitted).

    Requant constants travel as additional ``rq_*`` entries so the archive
    stays a flat array namespace; float-only plans simply have none.
    """
    arrays = {name: getattr(plan, name) for name in _ARRAY_FIELDS
              if getattr(plan, name) is not None}
    if plan.requant is not None:
        arrays.update(plan.requant.arrays())
    return arrays


def plan_from_parts(meta: dict, arrays: dict):
    """Rebuild a :class:`ConvPlan` / :class:`LinearPlan` from manifest + arrays.

    Inverse of (:func:`plan_meta`, :func:`plan_arrays`); shared by
    :func:`load_plan` and the model-plan loader.
    """
    common = dict(
        out_channels=int(meta["out_channels"]),
        n_arrays=int(meta["n_arrays"]),
        rows_per_array=int(meta["rows_per_array"]),
        n_splits=int(meta["n_splits"]),
        pad_rows=int(meta["pad_rows"]),
        act_qmin=float(meta["act_qmin"]),
        act_qmax=float(meta["act_qmax"]),
        psum_quant_enabled=bool(meta["psum_quant_enabled"]),
        psum_qmin=float(meta["psum_qmin"]),
        psum_qmax=float(meta["psum_qmax"]),
        signature=tuple(meta["signature"]),
        dtype=normalize_dtype(meta.get("dtype", "float64")),
        mapping=mapping_from_dict(meta["mapping"]),
        requant=(None if meta.get("requant") is None else
                 RequantConstants.from_parts(meta["requant"], arrays)),
        **{name: arrays.get(name) for name in _ARRAY_FIELDS},
    )
    if meta["layer_type"] == "conv2d":
        return ConvPlan(in_channels=int(meta["in_channels"]),
                        kernel_size=tuple(meta["kernel_size"]),
                        stride=tuple(meta["stride"]),
                        padding=tuple(meta["padding"]),
                        **common)
    return LinearPlan(in_features=int(meta["in_features"]), **common)


def save_plan(plan, path) -> None:
    """Serialize a plan to an ``.npz`` archive (arrays + JSON metadata)."""
    np.savez(path, __meta__=np.frombuffer(
        json.dumps(plan_meta(plan)).encode("utf-8"), dtype=np.uint8),
        **plan_arrays(plan))


def load_plan(path, mode: str = "float"):
    """Rebuild a :class:`ConvPlan` / :class:`LinearPlan` saved by :func:`save_plan`.

    ``mode`` selects the execution route of the returned plan (see
    :meth:`_PlanBase.set_mode`); ``"int"`` raises :class:`ValueError` on
    float-only artifacts saved before the integer path existed.
    """
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        arrays = {name: archive[name] for name in archive.files
                  if name != "__meta__"}
    plan = plan_from_parts(meta, arrays)
    if mode != "float":
        plan.set_mode(mode)
    return plan
