"""Wire protocol of the network serving front end: framing-free JSON bodies.

:mod:`repro.engine.netserver` speaks HTTP/1.1, so framing (content length,
keep-alive, status lines) is the transport's problem; what is left — and
what this module owns — is the **payload contract** between a client and a
served model:

* a predict request body is ``{"inputs": <nested list>}`` where the list
  decodes to a rectangular numeric array of shape ``(N, *sample_shape)``
  (the batch axis is always explicit, even for ``N == 1``);
* a predict response body is ``{"model", "outputs", "batch", "timing_ms"}``
  with outputs row ``i`` belonging to input row ``i``;
* every error body is ``{"error": {"status", "reason", "detail"}}``.

Decoding failures raise a :class:`WireError` subtype that carries the HTTP
status the front end should answer with — :class:`BadRequest` (400,
syntactically broken), :class:`PayloadTooLarge` (413, refused before
parsing) or :class:`UnprocessableInput` (422, well-formed but not runnable
by the target model).  Keeping the classification here, away from sockets,
is what makes the 400/413/422 paths unit-testable without a live server
(``tests/engine/test_netserver_faults.py`` exercises both levels).

Numerics: float64 values survive a JSON round-trip bit-exactly (Python
serializes the shortest string that reparses to the same double), which is
what lets the load suite assert **bit-identical** outputs over the socket
vs the in-process runner.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

__all__ = ["WireError", "BadRequest", "PayloadTooLarge", "UnprocessableInput",
           "ReloadRejected", "decode_predict_request", "decode_reload_request",
           "encode_predict_response", "encode_error", "MAX_BODY_BYTES"]

# Default cap on a request body; netserver rejects larger Content-Lengths
# with 413 before reading them.  Generous for image batches at benchmark
# scale, small enough that a hostile body cannot balloon the heap.
MAX_BODY_BYTES = 8 * 1024 * 1024


class WireError(Exception):
    """A request the server refuses; carries the HTTP status to answer with."""

    status = 400
    reason = "bad request"

    def __init__(self, detail: str):
        super().__init__(detail)
        self.detail = detail


class BadRequest(WireError):
    """400 — body is not the protocol (broken JSON, wrong/missing fields)."""

    status = 400
    reason = "bad request"


class PayloadTooLarge(WireError):
    """413 — body (or decoded batch) exceeds the configured limits."""

    status = 413
    reason = "payload too large"


class UnprocessableInput(WireError):
    """422 — well-formed request the target model cannot execute (shape)."""

    status = 422
    reason = "unprocessable input"


class ReloadRejected(WireError):
    """409 — a rolling reload refused before any swap happened.

    Raised when the replacement artifact cannot be loaded or fails its
    probe validation: the request conflicts with the state on disk, the old
    pool keeps serving untouched, and the caller should fix the artifact
    and retry — which is why this is a 4xx, not a 5xx (the *server* is
    healthy; the *request* named an unservable artifact).
    """

    status = 409
    reason = "reload rejected"


def decode_predict_request(body: bytes, dtype,
                           max_samples: Optional[int] = None) -> np.ndarray:
    """Parse a predict body into a ``(N, *sample_shape)`` batch array.

    Applies the protocol checks that need no model knowledge: valid JSON
    object, an ``"inputs"`` field, rectangular numeric content, an explicit
    batch axis (``ndim >= 2``), at least one sample, and — when
    ``max_samples`` is given — a batch no larger than the server is willing
    to queue from one request.  Shape-vs-model validation happens later, in
    the endpoint, where the plan is known.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequest(f"body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object, got "
                         f"{type(payload).__name__}")
    if "inputs" not in payload:
        raise BadRequest('body is missing the "inputs" field')
    try:
        batch = np.asarray(payload["inputs"], dtype=dtype)
    except (TypeError, ValueError) as error:
        raise BadRequest(
            f'"inputs" must be a rectangular numeric array: {error}'
        ) from error
    if batch.ndim < 2:
        raise UnprocessableInput(
            f'"inputs" must carry an explicit batch axis — shape '
            f"(N, *sample_shape), got shape {batch.shape}; wrap a single "
            "sample in one more list level")
    if batch.shape[0] == 0:
        raise UnprocessableInput('"inputs" contains no samples')
    if max_samples is not None and batch.shape[0] > max_samples:
        raise PayloadTooLarge(
            f'"inputs" carries {batch.shape[0]} samples but this server '
            f"accepts at most {max_samples} per request; split the batch")
    return batch


def decode_reload_request(body: bytes) -> Optional[str]:
    """Parse a reload body into its optional replacement artifact path.

    An empty body (the common case — re-stat the artifact the model was
    mounted from) decodes to ``None``.  A non-empty body must be a JSON
    object whose only recognized field is ``"path"``, a non-empty string
    naming the artifact to serve next; anything else is a
    :class:`BadRequest` so typos fail loudly instead of silently reloading
    the old path.
    """
    if not body:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequest(f"body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise BadRequest("reload body must be a JSON object, got "
                         f"{type(payload).__name__}")
    unknown = sorted(set(payload) - {"path"})
    if unknown:
        raise BadRequest(f"unknown reload field(s) {unknown}; "
                         'only "path" is accepted')
    if "path" not in payload:
        return None
    path = payload["path"]
    if not isinstance(path, str) or not path:
        raise BadRequest('"path" must be a non-empty string, got '
                         f"{path!r}")
    return path


def encode_predict_response(model: str, outputs: np.ndarray,
                            timing_ms: Optional[dict] = None) -> bytes:
    """Serialize a batch of output rows into the response body."""
    payload = {
        "model": model,
        "batch": int(np.asarray(outputs).shape[0]),
        "outputs": np.asarray(outputs).tolist(),
    }
    if timing_ms is not None:
        payload["timing_ms"] = timing_ms
    return json.dumps(payload).encode("utf-8")


def encode_error(status: int, reason: str, detail: str) -> bytes:
    """Serialize the uniform error body every non-2xx response carries."""
    return json.dumps(
        {"error": {"status": int(status), "reason": reason,
                   "detail": detail}}).encode("utf-8")
