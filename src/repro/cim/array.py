"""Single-crossbar behavioural model.

:class:`CrossbarArray` models one ``rows x cols`` memory array executing an
analog matrix-vector multiplication: programmed cell values multiply the
word-line inputs and currents sum along each bit line.  The class is the
ground-truth reference for the vectorised multi-array implementation inside
:class:`repro.core.cim_conv.CIMConv2d` and the object the inspection example
uses to show exactly what ends up in each array.

It intentionally operates on plain NumPy arrays (no autograd): it represents
deployed inference hardware, not the QAT training path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .adc import ADCModel
from .config import CIMConfig
from .variation import VariationModel

__all__ = ["CrossbarArray"]


@dataclass
class CrossbarArray:
    """One physical crossbar array.

    Attributes
    ----------
    rows, cols:
        Physical dimensions (word lines x bit lines).
    cell_bits:
        Bits per cell; programmed values outside the representable range
        raise an error, catching mapping bugs early.
    signed_cells:
        Whether a column may hold the signed top bit-split slice (see
        :mod:`repro.quant.bitsplit`).
    """

    rows: int
    cols: int
    cell_bits: int = 1
    signed_cells: bool = True
    _cells: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def from_config(cls, config: CIMConfig) -> "CrossbarArray":
        return cls(rows=config.array_rows, cols=config.array_cols,
                   cell_bits=config.cell_bits)

    # ------------------------------------------------------------------ #
    @property
    def cell_min(self) -> int:
        return -(2 ** (self.cell_bits - 1)) if self.signed_cells else 0

    @property
    def cell_max(self) -> int:
        return 2 ** self.cell_bits - 1

    @property
    def cells(self) -> np.ndarray:
        if self._cells is None:
            raise RuntimeError("array has not been programmed yet")
        return self._cells

    def program(self, values: np.ndarray) -> None:
        """Program cell values; zero-pads to the full array dimensions."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("cell values must be 2-D (rows x cols)")
        if values.shape[0] > self.rows or values.shape[1] > self.cols:
            raise ValueError(
                f"values {values.shape} exceed array dimensions {(self.rows, self.cols)}")
        if values.min(initial=0) < self.cell_min or values.max(initial=0) > self.cell_max:
            raise ValueError(
                f"programmed values outside cell range [{self.cell_min}, {self.cell_max}]")
        cells = np.zeros((self.rows, self.cols), dtype=np.float64)
        cells[:values.shape[0], :values.shape[1]] = values
        self._cells = cells

    def apply_variation(self, variation: VariationModel) -> None:
        """Perturb the programmed cells with device variation (Eq. 5)."""
        self._cells = variation.perturb(self.cells)

    # ------------------------------------------------------------------ #
    def mac(self, wordline_inputs: np.ndarray) -> np.ndarray:
        """Analog MAC: ``inputs @ cells``.

        ``wordline_inputs`` may be 1-D (one input vector) or 2-D
        ``(batch, rows_used)``; inputs shorter than ``rows`` address only the
        first word lines.  Returns the per-column analog partial sums.
        """
        inputs = np.asarray(wordline_inputs, dtype=np.float64)
        single = inputs.ndim == 1
        if single:
            inputs = inputs[None, :]
        if inputs.shape[1] > self.rows:
            raise ValueError(f"input length {inputs.shape[1]} exceeds {self.rows} word lines")
        padded = np.zeros((inputs.shape[0], self.rows), dtype=np.float64)
        padded[:, :inputs.shape[1]] = inputs
        psums = padded @ self.cells
        return psums[0] if single else psums

    def mac_digitized(self, wordline_inputs: np.ndarray, adc: ADCModel,
                      scale: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """MAC followed by ADC digitization; returns ``(codes, reconstruction)``."""
        psums = self.mac(wordline_inputs)
        codes = adc.convert(psums, scale)
        return codes, adc.reconstruct(codes, scale)

    def column(self, index: int) -> np.ndarray:
        """Programmed values of one bit-line column."""
        return self.cells[:, index]

    def occupancy(self) -> float:
        """Fraction of cells holding a non-zero value."""
        return float(np.count_nonzero(self.cells)) / self.cells.size
