"""Memory-cell variation model (Sec. IV-E, Eq. 5).

Non-volatile memory cells deviate from their programmed conductance.
Following Charan et al. [11] and Eq. (5) of the paper, the deviation is
modelled multiplicatively with log-normal noise:

    w_var = w * exp(theta),     theta ~ N(0, sigma^2)

The noise is applied to the *programmed cell values*, i.e. the bit-split
integer weights stored in the crossbar, which is what a device-level
variation physically perturbs.  A convenience mode applying the noise to the
full quantized weight (the coarser abstraction some prior works use) is also
provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["VariationModel", "apply_lognormal_variation"]


def apply_lognormal_variation(values: np.ndarray, sigma: float,
                              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Return ``values * exp(theta)`` with ``theta ~ N(0, sigma^2)`` elementwise."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.array(values, copy=True)
    rng = rng or np.random.default_rng()
    theta = rng.normal(0.0, sigma, size=np.shape(values))
    return values * np.exp(theta)


@dataclass
class VariationModel:
    """Configured device-variation injector.

    Attributes
    ----------
    sigma:
        Standard deviation of the log-normal exponent (x-axis of Fig. 10).
    target:
        ``"cells"`` perturbs each programmed bit-split cell independently;
        ``"weights"`` perturbs the quantized weight once (all its cells move
        together).
    seed:
        Seed for reproducible Monte-Carlo evaluation.
    """

    sigma: float = 0.0
    target: str = "cells"
    seed: Optional[int] = None

    def __post_init__(self):
        if self.target not in ("cells", "weights"):
            raise ValueError("target must be 'cells' or 'weights'")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @property
    def enabled(self) -> bool:
        return self.sigma > 0.0

    def reseed(self, seed: int) -> None:
        """Reset the RNG, e.g. between Monte-Carlo trials."""
        self._rng = np.random.default_rng(seed)

    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Apply log-normal variation to an array of programmed values."""
        if not self.enabled:
            return np.array(values, copy=True)
        return apply_lognormal_variation(values, self.sigma, self._rng)

    def sweep(self, sigmas: Iterable[float]) -> Iterable["VariationModel"]:
        """Yield copies of this model across a sigma sweep (Fig. 10 x-axis)."""
        for sigma in sigmas:
            yield VariationModel(sigma=float(sigma), target=self.target, seed=self.seed)
