"""Mapping and tiling of layer weights onto CIM crossbar arrays.

A convolution layer with weight ``(OC, IC, K, K)`` is first unrolled
(im2col): every output channel becomes one *stretched kernel* — a column
vector of length ``IC*K*K`` — and the unrolled weight matrix has
``IC*K*K`` rows and ``OC`` columns.  Because the crossbar has only
``array_rows`` word lines, the rows must be tiled across several arrays.

Two strategies are implemented:

``im2col`` tiling (conventional)
    Cut the ``IC*K*K`` rows into consecutive chunks of exactly
    ``array_rows`` rows.  Chunks may slice through the middle of a kernel,
    which is why frameworks built on this tiling must fall back to explicit
    ``im2col`` + matrix multiplication for every array (the bottleneck the
    paper points out).

``kernel_preserving`` tiling (the paper's proposal)
    Choose the tiling stride as a multiple of ``K*K`` so that each array
    holds a whole number of stretched-kernel segments, i.e.
    ``channels_per_array = floor(array_rows / (K*K))`` input channels per
    array.  Each array's content can then be reshaped back into a 4-D
    convolution weight ``(OC, channels_per_array, K, K)`` and all arrays can
    be evaluated at once with a *group convolution* whose group count equals
    the number of arrays (Fig. 5).

Both strategies are expressed as a row partition of the unrolled weight
matrix, so the downstream CIM layer code is tiling-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .config import CIMConfig

__all__ = ["ArrayTile", "WeightMapping", "build_mapping", "build_linear_mapping",
           "rows_utilization", "valid_rows_mask", "mapping_to_dict",
           "mapping_from_dict"]


@dataclass(frozen=True)
class ArrayTile:
    """One crossbar array worth of rows of the unrolled weight matrix."""

    index: int
    row_start: int
    row_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


@dataclass(frozen=True)
class WeightMapping:
    """Complete mapping of one layer onto crossbar arrays.

    Attributes
    ----------
    tiles:
        Row partition of the unrolled weight matrix (one entry per
        row-direction array).
    rows_per_array:
        Uniform padded row count used by the vectorised simulation; every
        tile has ``rows <= rows_per_array`` and shorter tiles are zero-padded.
    col_tiles:
        Number of array tiles in the column (output channel x bit-split)
        direction; it does not change the computed values, only the
        number of physical arrays (and therefore the cost model).
    """

    layer_type: str
    in_features: int          # IC*K*K for conv, in_features for linear
    out_channels: int
    kernel_size: Tuple[int, int]
    tiles: Tuple[ArrayTile, ...]
    rows_per_array: int
    col_tiles: int
    n_splits: int
    config: CIMConfig
    strategy: str

    # ------------------------------------------------------------------ #
    @property
    def n_arrays_row(self) -> int:
        """Number of arrays along the word-line (row) direction."""
        return len(self.tiles)

    @property
    def n_arrays(self) -> int:
        """Total number of physical arrays used by the layer."""
        return self.n_arrays_row * self.col_tiles

    @property
    def channels_per_array(self) -> int:
        """Output channels mapped into one array (``noc`` in the paper)."""
        return int(math.ceil(self.out_channels / self.col_tiles))

    @property
    def used_rows(self) -> int:
        return sum(t.rows for t in self.tiles)

    def row_slices(self) -> List[slice]:
        return [slice(t.row_start, t.row_stop) for t in self.tiles]

    def describe(self) -> str:
        return (f"{self.layer_type}: {self.in_features}x{self.out_channels} -> "
                f"{self.n_arrays_row} row-tiles x {self.col_tiles} col-tiles "
                f"({self.rows_per_array} rows/array, {self.n_splits} bit-splits, "
                f"strategy={self.strategy})")


def _conv_row_partition(in_channels: int, kernel_size: Tuple[int, int],
                        config: CIMConfig, strategy: str) -> Tuple[List[ArrayTile], int]:
    """Partition the ``IC*K*K`` unrolled rows according to the tiling strategy."""
    kh, kw = kernel_size
    receptive = kh * kw
    total_rows = in_channels * receptive

    if strategy == "im2col" or receptive > config.array_rows:
        # Conventional tiling: consecutive chunks of array_rows rows.  Also the
        # fallback when a single stretched kernel does not fit in one array.
        n_tiles = int(math.ceil(total_rows / config.array_rows))
        tiles = []
        for i in range(n_tiles):
            start = i * config.array_rows
            stop = min(start + config.array_rows, total_rows)
            tiles.append(ArrayTile(i, start, stop))
        return tiles, min(config.array_rows, total_rows)

    # kernel-preserving tiling: whole input channels per array
    channels_per_array = max(1, config.array_rows // receptive)
    channels_per_array = min(channels_per_array, in_channels)
    rows_per_array = channels_per_array * receptive
    n_tiles = int(math.ceil(in_channels / channels_per_array))
    tiles = []
    for i in range(n_tiles):
        c_start = i * channels_per_array
        c_stop = min(c_start + channels_per_array, in_channels)
        tiles.append(ArrayTile(i, c_start * receptive, c_stop * receptive))
    return tiles, rows_per_array


def build_mapping(in_channels: int, out_channels: int, kernel_size: Tuple[int, int],
                  weight_bits: int, config: CIMConfig,
                  strategy: str | None = None) -> WeightMapping:
    """Build the crossbar mapping of a convolution layer."""
    strategy = strategy or config.tiling
    if strategy not in ("kernel_preserving", "im2col"):
        raise ValueError(f"unknown tiling strategy {strategy!r}")
    tiles, rows_per_array = _conv_row_partition(in_channels, kernel_size, config, strategy)
    n_splits = config.n_splits(weight_bits)
    cols_needed = out_channels * n_splits
    col_tiles = int(math.ceil(cols_needed / config.array_cols))
    return WeightMapping(
        layer_type="conv2d",
        in_features=in_channels * kernel_size[0] * kernel_size[1],
        out_channels=out_channels,
        kernel_size=tuple(kernel_size),
        tiles=tuple(tiles),
        rows_per_array=rows_per_array,
        col_tiles=col_tiles,
        n_splits=n_splits,
        config=config,
        strategy=strategy,
    )


def build_linear_mapping(in_features: int, out_features: int, weight_bits: int,
                         config: CIMConfig) -> WeightMapping:
    """Build the crossbar mapping of a fully-connected layer.

    A linear layer is a 1x1 'kernel', so both tiling strategies coincide:
    rows are cut into chunks of ``array_rows``.
    """
    n_tiles = int(math.ceil(in_features / config.array_rows))
    tiles = [ArrayTile(i, i * config.array_rows,
                       min((i + 1) * config.array_rows, in_features))
             for i in range(n_tiles)]
    n_splits = config.n_splits(weight_bits)
    cols_needed = out_features * n_splits
    col_tiles = int(math.ceil(cols_needed / config.array_cols))
    return WeightMapping(
        layer_type="linear",
        in_features=in_features,
        out_channels=out_features,
        kernel_size=(1, 1),
        tiles=tuple(tiles),
        rows_per_array=min(config.array_rows, in_features),
        col_tiles=col_tiles,
        n_splits=n_splits,
        config=config,
        strategy="im2col",
    )


def valid_rows_mask(mapping: WeightMapping) -> np.ndarray:
    """``(A, R, 1)`` mask marking word lines that hold real weights.

    The tiled simulation layout zero-pads every array to ``rows_per_array``
    word lines; this mask is 1.0 on rows backed by an actual tile row and 0.0
    on padding.  Built vectorised (no per-tile Python loop) and cached by
    :class:`repro.core.pipeline.LayerGeometry`, since it only depends on the
    mapping — layers and compiled plans share one copy.
    """
    lengths = np.zeros(mapping.n_arrays_row)
    for tile in mapping.tiles:
        lengths[tile.index] = tile.rows
    rows = np.arange(mapping.rows_per_array)
    return (rows[None, :] < lengths[:, None]).astype(np.float64)[:, :, None]


def rows_utilization(mapping: WeightMapping) -> float:
    """Fraction of allocated word lines actually holding weights.

    Kernel-preserving tiling may leave ``array_rows mod (K*K)`` rows unused
    per array; this metric quantifies that trade-off.
    """
    allocated = mapping.n_arrays_row * mapping.rows_per_array
    if allocated == 0:
        return 0.0
    return mapping.used_rows / allocated


def mapping_to_dict(mapping: WeightMapping) -> dict:
    """Serialize a :class:`WeightMapping` (and its :class:`CIMConfig`) to plain data.

    The result contains only JSON-compatible builtins, so a compiled inference
    plan can be persisted next to its cached arrays (see
    :mod:`repro.engine.plan`) and rebuilt in a fresh process with
    :func:`mapping_from_dict`.
    """
    cfg = mapping.config
    return {
        "layer_type": mapping.layer_type,
        "in_features": mapping.in_features,
        "out_channels": mapping.out_channels,
        "kernel_size": list(mapping.kernel_size),
        "tiles": [[t.index, t.row_start, t.row_stop] for t in mapping.tiles],
        "rows_per_array": mapping.rows_per_array,
        "col_tiles": mapping.col_tiles,
        "n_splits": mapping.n_splits,
        "strategy": mapping.strategy,
        "config": {
            "array_rows": cfg.array_rows,
            "array_cols": cfg.array_cols,
            "cell_bits": cfg.cell_bits,
            "adc_bits": cfg.adc_bits,
            "dac_bits": cfg.dac_bits,
            "tiling": cfg.tiling,
        },
    }


def mapping_from_dict(state: dict) -> WeightMapping:
    """Rebuild a :class:`WeightMapping` serialized by :func:`mapping_to_dict`."""
    config = CIMConfig(**state["config"])
    tiles = tuple(ArrayTile(int(i), int(start), int(stop))
                  for i, start, stop in state["tiles"])
    return WeightMapping(
        layer_type=state["layer_type"],
        in_features=int(state["in_features"]),
        out_channels=int(state["out_channels"]),
        kernel_size=tuple(int(k) for k in state["kernel_size"]),
        tiles=tiles,
        rows_per_array=int(state["rows_per_array"]),
        col_tiles=int(state["col_tiles"]),
        n_splits=int(state["n_splits"]),
        config=config,
        strategy=state["strategy"],
    )


def tile_weight_matrix(w_matrix: np.ndarray, mapping: WeightMapping) -> np.ndarray:
    """Tile an unrolled weight matrix ``(in_features, OC)`` into arrays.

    Returns an array of shape ``(n_arrays_row, rows_per_array, OC)`` with
    zero padding for tiles shorter than ``rows_per_array``.  This is the
    NumPy (non-differentiable) counterpart of the tiling performed inside
    :class:`repro.core.cim_conv.CIMConv2d`; it is used by inspection tools
    and tests.
    """
    if w_matrix.shape[0] != mapping.in_features:
        raise ValueError(
            f"weight matrix has {w_matrix.shape[0]} rows, mapping expects {mapping.in_features}")
    out = np.zeros((mapping.n_arrays_row, mapping.rows_per_array, w_matrix.shape[1]))
    for tile in mapping.tiles:
        out[tile.index, :tile.rows, :] = w_matrix[tile.row_start:tile.row_stop, :]
    return out


__all__.append("tile_weight_matrix")
