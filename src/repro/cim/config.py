"""Configuration dataclasses describing a CIM macro and a quantization scheme."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..quant.bitsplit import BitSplitConfig, num_splits
from ..quant.granularity import Granularity

__all__ = ["CIMConfig", "QuantScheme"]


@dataclass(frozen=True)
class CIMConfig:
    """Static description of the CIM macro used to execute a layer.

    Attributes
    ----------
    array_rows, array_cols:
        Crossbar dimensions (word lines x bit lines).  The paper uses
        128x128 for the CIFAR experiments and 256x256 for ImageNet
        (Table II).
    cell_bits:
        Bits stored per memory cell; weights wider than this are split
        across ``ceil(weight_bits / cell_bits)`` cells (columns).
    adc_bits:
        Partial-sum (ADC output) precision.
    dac_bits:
        Input (DAC) precision; equals the activation precision in the
        paper's settings.
    tiling:
        ``"kernel_preserving"`` (the paper's proposed tiling, keeping whole
        stretched kernels inside one array) or ``"im2col"`` (conventional
        row-major tiling of the unrolled weight matrix).
    """

    array_rows: int = 128
    array_cols: int = 128
    cell_bits: int = 1
    adc_bits: int = 4
    dac_bits: int = 4
    tiling: str = "kernel_preserving"

    def __post_init__(self):
        if self.array_rows < 1 or self.array_cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.cell_bits < 1:
            raise ValueError("cell_bits must be >= 1")
        if self.adc_bits < 1:
            raise ValueError("adc_bits must be >= 1")
        if self.tiling not in ("kernel_preserving", "im2col"):
            raise ValueError("tiling must be 'kernel_preserving' or 'im2col'")

    def n_splits(self, weight_bits: int) -> int:
        return num_splits(weight_bits, min(self.cell_bits, weight_bits))

    def bitsplit(self, weight_bits: int) -> BitSplitConfig:
        return BitSplitConfig(weight_bits, min(self.cell_bits, weight_bits))

    def with_(self, **kwargs) -> "CIMConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class QuantScheme:
    """Full quantization scheme of a layer (Table I / Table II of the paper).

    ``weight_granularity`` / ``psum_granularity`` select how many scale
    factors are used; ``learnable_weight_scale`` / ``learnable_psum_scale``
    distinguish QAT (LSQ) from PTQ baselines; ``two_stage`` marks schemes
    that quantize partial sums only in a second training stage.
    """

    name: str = "ours"
    weight_bits: int = 4
    act_bits: int = 4
    psum_bits: int = 4
    weight_granularity: Granularity = Granularity.COLUMN
    psum_granularity: Granularity = Granularity.COLUMN
    quantize_psum: bool = True
    learnable_weight_scale: bool = True
    learnable_psum_scale: bool = True
    train_from_scratch: bool = True
    two_stage: bool = False
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "weight_granularity",
                           Granularity.parse(self.weight_granularity))
        object.__setattr__(self, "psum_granularity",
                           Granularity.parse(self.psum_granularity))
        for name in ("weight_bits", "act_bits", "psum_bits"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def granularity_aligned(self) -> bool:
        """True when weight and partial-sum granularities match (the paper's key idea)."""
        return self.weight_granularity == self.psum_granularity

    def with_(self, **kwargs) -> "QuantScheme":
        return replace(self, **kwargs)

    def label(self) -> str:
        """Short 'W-granularity / P-granularity' label used in plots (Fig. 9)."""
        w = self.weight_granularity.value.capitalize()
        p = self.psum_granularity.value.capitalize() if self.quantize_psum else "None"
        return f"{w}/{p}"
