"""Behavioural DAC / word-line driver model.

Activations enter the crossbar through DACs on the word lines.  The paper
quantizes activations to ``act_bits`` (Table II) and drives them in a single
analog step; an optional bit-serial mode (1 bit per cycle, as used by
ISAAC-style architectures) is provided for completeness and for the energy
model, which needs the number of word-line cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..quant.fake_quant import quant_range

__all__ = ["DACModel", "bit_serial_slices"]


@dataclass
class DACModel:
    """Word-line DAC with ``bits`` resolution.

    ``bit_serial=True`` models architectures that stream the activation one
    bit per cycle (each cycle drives a binary word-line voltage); otherwise
    the full ``bits``-wide code is converted in one cycle.
    """

    bits: int = 4
    bit_serial: bool = False

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("DAC bits must be >= 1")

    @property
    def cycles_per_input(self) -> int:
        """Number of word-line cycles needed to apply one input vector."""
        return self.bits if self.bit_serial else 1

    def encode(self, activations_int: np.ndarray) -> np.ndarray:
        """Clip integer activation codes to the DAC range (unsigned)."""
        rng = quant_range(self.bits, signed=False)
        return np.clip(np.round(activations_int), rng.qmin, rng.qmax)

    def drive(self, activations_int: np.ndarray) -> List[Tuple[np.ndarray, float]]:
        """Return the word-line drive pattern.

        Returns a list of ``(driven_values, significance)`` pairs: a single
        pair for parallel DACs, or ``bits`` binary slices with significance
        ``2**k`` for bit-serial operation.  The sum of
        ``driven * significance`` always reconstructs the encoded input.
        """
        codes = self.encode(activations_int)
        if not self.bit_serial:
            return [(codes, 1.0)]
        return [(slice_k, float(2 ** k))
                for k, slice_k in enumerate(bit_serial_slices(codes, self.bits))]


def bit_serial_slices(codes: np.ndarray, bits: int) -> List[np.ndarray]:
    """Decompose unsigned integer codes into ``bits`` binary slices (LSB first)."""
    codes = np.asarray(np.round(codes), dtype=np.int64)
    if codes.min(initial=0) < 0:
        raise ValueError("bit-serial slicing expects unsigned activation codes")
    return [((codes >> k) & 1).astype(np.float64) for k in range(bits)]
