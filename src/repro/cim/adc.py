"""Behavioural ADC model.

In a CIM macro the analog column currents (partial sums) are digitized by
ADCs.  The paper models this digitization as a uniform quantization of the
integer-valued partial sum with a per-column reference voltage derived from
the partial sum's scale factor (Sec. II-A).  This module provides the
behavioural equivalent: given a partial-sum array and scale factors, produce
the digital codes that a ``adc_bits`` ADC would output, along with the
clipping/rounding error statistics needed by the analysis tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..quant.fake_quant import quant_range

__all__ = ["ADCModel", "ADCStats", "ideal_adc_codes"]


@dataclass
class ADCStats:
    """Aggregate statistics of one ADC conversion pass."""

    clipped_fraction: float
    mse: float
    mean_code: float
    code_range: Tuple[float, float]


class ADCModel:
    """Uniform ADC with configurable precision and reference scaling.

    Parameters
    ----------
    bits:
        ADC resolution (= partial-sum precision).
    signed:
        Whether the column current can be negative (true in our signed
        bit-split encoding, where the most significant slice carries sign).
    """

    def __init__(self, bits: int, signed: bool = True):
        self.bits = int(bits)
        self.signed = bool(signed)
        self.qrange = quant_range(bits, signed)

    def convert(self, psum: np.ndarray, scale: np.ndarray) -> np.ndarray:
        """Digitize ``psum`` with per-column reference ``scale``.

        The reference voltage of each ADC is set so that one LSB corresponds
        to ``scale``; the output code is ``clamp(round(psum / scale))``.
        """
        codes = np.round(psum / scale)
        return np.clip(codes, self.qrange.qmin, self.qrange.qmax)

    def reconstruct(self, codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
        """Map digital codes back to the partial-sum domain."""
        return codes * scale

    def convert_with_stats(self, psum: np.ndarray,
                           scale: np.ndarray) -> Tuple[np.ndarray, ADCStats]:
        """Digitize and also report clipping / error statistics."""
        raw = psum / scale
        codes = np.round(raw)
        clipped = np.logical_or(codes < self.qrange.qmin, codes > self.qrange.qmax)
        codes = np.clip(codes, self.qrange.qmin, self.qrange.qmax)
        recon = codes * scale
        stats = ADCStats(
            clipped_fraction=float(np.mean(clipped)),
            mse=float(np.mean((psum - recon) ** 2)),
            mean_code=float(np.mean(codes)),
            code_range=(float(codes.min(initial=0)), float(codes.max(initial=0))),
        )
        return codes, stats

    def saturation_value(self, scale: np.ndarray) -> np.ndarray:
        """Largest partial-sum magnitude representable without clipping."""
        return scale * max(abs(self.qrange.qmin), abs(self.qrange.qmax))


def ideal_adc_codes(psum: np.ndarray) -> np.ndarray:
    """Codes of an ideal (infinite-precision) ADC: the integer partial sums.

    With integer activations and integer bit-split weights the analog column
    current is an integer multiple of the unit conductance, so an ideal ADC
    simply reports that integer.  Used as the no-partial-sum-quantization
    reference in the experiments.
    """
    return np.round(psum)
