"""Hardware cost models: dequantization overhead, ADC energy and area.

Fig. 8 of the paper ranks quantization schemes by the number of
*dequantize-operation multiplications per layer*:

* layer-wise partial sums  -> 1 multiplication,
* array-wise partial sums  -> ``n_array * n_oc`` multiplications,
* column-wise partial sums -> ``n_split * n_array * n_oc`` multiplications,

and — this is the paper's key observation — the *weight* granularity does not
add any overhead, because the weight scale of a column can be folded into the
partial-sum scale of the same column before deployment (Fig. 4(d)).

The ADC energy / area figures implement the standard first-order model used
in CIM design-space exploration (energy and area grow exponentially with
resolution); they are provided so that users can extend the evaluation to
energy-delay product studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..quant.granularity import Granularity
from .tiling import WeightMapping

__all__ = ["dequant_mults_per_layer", "DequantOverhead", "ADCCostModel",
           "layer_adc_conversions", "CostReport"]


def dequant_mults_per_layer(psum_granularity: Granularity, n_arrays: int,
                            channels_per_array: int, n_splits: int) -> int:
    """Number of dequantization multiplications for one layer (Fig. 8 x-axis)."""
    granularity = Granularity.parse(psum_granularity)
    if granularity is Granularity.LAYER:
        return 1
    if granularity is Granularity.ARRAY:
        return n_arrays * channels_per_array
    return n_splits * n_arrays * channels_per_array


@dataclass(frozen=True)
class DequantOverhead:
    """Dequantization overhead of one layer under a given scheme."""

    layer_name: str
    psum_granularity: Granularity
    weight_granularity: Granularity
    n_arrays: int
    channels_per_array: int
    n_splits: int

    @property
    def multiplications(self) -> int:
        """Dequantize multiplications per layer invocation (Fig. 8 x-axis)."""
        return dequant_mults_per_layer(self.psum_granularity, self.n_arrays,
                                       self.channels_per_array, self.n_splits)

    @property
    def stored_scale_factors(self) -> int:
        """Number of distinct (folded) scale factors that must be stored.

        Weight and partial-sum scales of the same column are folded into one
        stored multiplier, so aligning the granularities does not increase
        storage — the claim behind Fig. 4(d).
        """
        return self.multiplications


def model_dequant_overhead(mappings: Dict[str, WeightMapping],
                           weight_granularity: Granularity,
                           psum_granularity: Granularity) -> Dict[str, DequantOverhead]:
    """Per-layer dequantization overhead for a whole model's mappings."""
    report = {}
    for name, mapping in mappings.items():
        report[name] = DequantOverhead(
            layer_name=name,
            psum_granularity=Granularity.parse(psum_granularity),
            weight_granularity=Granularity.parse(weight_granularity),
            n_arrays=mapping.n_arrays,
            channels_per_array=mapping.channels_per_array,
            n_splits=mapping.n_splits,
        )
    return report


__all__.append("model_dequant_overhead")


@dataclass(frozen=True)
class ADCCostModel:
    """First-order ADC energy / area model.

    ``energy_per_conversion`` follows the usual SAR-ADC scaling
    ``E = e0 * 2**bits`` (pJ) and ``area`` follows ``A = a0 * 2**bits`` (um^2),
    normalised so the default constants reproduce the relative numbers quoted
    for ISAAC-class designs.  Only *relative* comparisons between schemes are
    meaningful.
    """

    energy_unit_pj: float = 0.0015
    area_unit_um2: float = 30.0

    def energy_per_conversion(self, bits: int) -> float:
        """Energy (pJ) of one ADC conversion at ``bits`` of resolution."""
        return self.energy_unit_pj * (2 ** bits)

    def area_per_adc(self, bits: int) -> float:
        """Silicon area (um^2) of one ADC at ``bits`` of resolution."""
        return self.area_unit_um2 * (2 ** bits)

    def layer_energy(self, conversions: int, bits: int) -> float:
        """Total ADC energy (pJ) of ``conversions`` conversions at ``bits``."""
        return conversions * self.energy_per_conversion(bits)


def layer_adc_conversions(mapping: WeightMapping, n_outputs_spatial: int,
                          batch: int = 1) -> int:
    """ADC conversions needed for one layer invocation.

    Every (bit-split, array, output-channel, output-pixel) partial sum goes
    through one ADC conversion.
    """
    return (mapping.n_splits * mapping.n_arrays_row * mapping.out_channels
            * n_outputs_spatial * batch)


@dataclass
class CostReport:
    """Aggregated cost summary for a model under one quantization scheme."""

    total_dequant_mults: int = 0
    total_adc_conversions: int = 0
    total_adc_energy_pj: float = 0.0
    total_arrays: int = 0
    per_layer: Dict[str, DequantOverhead] = None

    @classmethod
    def aggregate(cls, overheads: Dict[str, DequantOverhead],
                  conversions: Dict[str, int] | None = None,
                  adc_bits: int = 4,
                  adc_model: ADCCostModel | None = None) -> "CostReport":
        """Sum per-layer overheads (and optional ADC conversion counts) into one report."""
        adc_model = adc_model or ADCCostModel()
        conversions = conversions or {}
        total_conv = sum(conversions.values())
        return cls(
            total_dequant_mults=sum(o.multiplications for o in overheads.values()),
            total_adc_conversions=total_conv,
            total_adc_energy_pj=adc_model.layer_energy(total_conv, adc_bits),
            total_arrays=sum(o.n_arrays for o in overheads.values()),
            per_layer=dict(overheads),
        )
