"""``repro.cim`` — behavioural compute-in-memory hardware substrate.

Contains everything that describes or models the hardware the paper targets:
crossbar geometry and tiling, ADC / DAC behavioural models, memory-cell
variation, and the cost models (dequantization overhead, ADC energy/area)
used by the evaluation figures.
"""

from .adc import ADCModel, ADCStats, ideal_adc_codes
from .array import CrossbarArray
from .config import CIMConfig, QuantScheme
from .cost import (ADCCostModel, CostReport, DequantOverhead, dequant_mults_per_layer,
                   layer_adc_conversions, model_dequant_overhead)
from .dac import DACModel, bit_serial_slices
from .tiling import (ArrayTile, WeightMapping, build_linear_mapping, build_mapping,
                     mapping_from_dict, mapping_to_dict, rows_utilization,
                     tile_weight_matrix)
from .variation import VariationModel, apply_lognormal_variation

__all__ = [
    "CIMConfig", "QuantScheme",
    "ADCModel", "ADCStats", "ideal_adc_codes",
    "DACModel", "bit_serial_slices",
    "CrossbarArray",
    "ArrayTile", "WeightMapping", "build_mapping", "build_linear_mapping",
    "rows_utilization", "tile_weight_matrix", "mapping_to_dict", "mapping_from_dict",
    "VariationModel", "apply_lognormal_variation",
    "ADCCostModel", "CostReport", "DequantOverhead", "dequant_mults_per_layer",
    "layer_adc_conversions", "model_dequant_overhead",
]
