"""Batch iteration over synthetic datasets."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from .synthetic import SyntheticImageDataset
from .transforms import Compose

__all__ = ["DataLoader", "train_loader", "test_loader"]

Batch = Tuple[np.ndarray, np.ndarray]


class DataLoader:
    """Mini-batch iterator with optional shuffling and augmentation.

    Iterating yields ``(images, labels)`` NumPy pairs; a fresh permutation is
    drawn every epoch when ``shuffle=True``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 32,
                 shuffle: bool = False, transform: Optional[Compose] = None,
                 drop_last: bool = False, seed: int = 0):
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(self.images.shape[0], self.batch_size)
        return full if (self.drop_last or remainder == 0) else full + 1

    @property
    def num_samples(self) -> int:
        return self.images.shape[0]

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(self.num_samples)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.num_samples, self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and index.size < self.batch_size:
                break
            batch = self.images[index]
            if self.transform is not None:
                batch = self.transform(batch, self._rng)
            yield batch, self.labels[index]


def train_loader(dataset: SyntheticImageDataset, batch_size: int = 32,
                 transform: Optional[Compose] = None, seed: int = 0) -> DataLoader:
    """Shuffled training loader over a synthetic dataset."""
    return DataLoader(dataset.train_images, dataset.train_labels, batch_size=batch_size,
                      shuffle=True, transform=transform, seed=seed)


def test_loader(dataset: SyntheticImageDataset, batch_size: int = 64) -> DataLoader:
    """Deterministic evaluation loader over a synthetic dataset."""
    return DataLoader(dataset.test_images, dataset.test_labels, batch_size=batch_size,
                      shuffle=False)
