"""``repro.data`` — synthetic dataset substrates and loaders."""

from .loaders import DataLoader, test_loader, train_loader
from .synthetic import (DatasetSpec, SyntheticImageDataset, make_dataset,
                        synthetic_cifar10, synthetic_cifar100, synthetic_imagenet)
from .transforms import (Compose, Normalize, RandomCrop, RandomHorizontalFlip,
                         standard_augmentation)

__all__ = [
    "SyntheticImageDataset", "DatasetSpec", "make_dataset",
    "synthetic_cifar10", "synthetic_cifar100", "synthetic_imagenet",
    "DataLoader", "train_loader", "test_loader",
    "Compose", "Normalize", "RandomCrop", "RandomHorizontalFlip", "standard_augmentation",
]
