"""Data augmentation and normalisation transforms.

The paper's recipe trains CIFAR models with the usual random-crop +
horizontal-flip augmentation; the same transforms are provided here operating
on ``(N, C, H, W)`` NumPy batches.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["Compose", "Normalize", "RandomCrop", "RandomHorizontalFlip", "standard_augmentation"]


class Compose:
    """Apply a sequence of batch transforms in order."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray, np.random.Generator], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class Normalize:
    """Per-channel standardisation ``(x - mean) / std``."""

    def __init__(self, mean: Optional[np.ndarray] = None, std: Optional[np.ndarray] = None):
        self.mean = mean
        self.std = std

    def fit(self, images: np.ndarray) -> "Normalize":
        self.mean = images.mean(axis=(0, 2, 3), keepdims=True)[0]
        self.std = images.std(axis=(0, 2, 3), keepdims=True)[0] + 1e-8
        return self

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("Normalize must be fit() or given mean/std before use")
        return (batch - self.mean) / self.std


class RandomCrop:
    """Random crop after reflect-padding, the standard CIFAR augmentation."""

    def __init__(self, padding: int = 2):
        self.padding = padding

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        p = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)), mode="reflect")
        out = np.empty_like(batch)
        offsets_h = rng.integers(0, 2 * p + 1, size=n)
        offsets_w = rng.integers(0, 2 * p + 1, size=n)
        for i in range(n):
            out[i] = padded[i, :, offsets_h[i]:offsets_h[i] + h, offsets_w[i]:offsets_w[i] + w]
        return out


class RandomHorizontalFlip:
    """Flip each sample left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


def standard_augmentation(padding: int = 2, flip_probability: float = 0.5) -> Compose:
    """The CIFAR-style augmentation pipeline used for QAT from scratch."""
    return Compose([RandomCrop(padding), RandomHorizontalFlip(flip_probability)])
