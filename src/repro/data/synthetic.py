"""Synthetic image-classification datasets.

The paper evaluates on CIFAR-10, CIFAR-100 and ImageNet, none of which can be
downloaded in this offline reproduction.  These generators produce
deterministic, *learnable* substitutes with the same tensor shapes:

* each class is defined by a smooth random prototype image (low-frequency
  structure, so convolutions with small receptive fields can discriminate
  classes) plus a class-specific texture;
* every sample is the prototype under a random spatial shift, amplitude
  jitter and additive Gaussian noise;
* train and test splits are disjoint samples from the same distribution.

Because every quantization scheme sees exactly the same data, the *relative*
accuracy ordering between schemes — which is what the paper's figures
establish — is preserved, even though absolute accuracies differ from the
paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["SyntheticImageDataset", "DatasetSpec", "synthetic_cifar10",
           "synthetic_cifar100", "synthetic_imagenet", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and size description of a synthetic dataset."""

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    train_samples: int = 2048
    test_samples: int = 512
    noise_std: float = 0.25
    seed: int = 0


def _smooth_noise(rng: np.random.Generator, channels: int, size: int,
                  smoothing: int = 3) -> np.ndarray:
    """Low-frequency random pattern obtained by box-blurring white noise."""
    img = rng.normal(size=(channels, size, size))
    for _ in range(smoothing):
        img = (img
               + np.roll(img, 1, axis=1) + np.roll(img, -1, axis=1)
               + np.roll(img, 1, axis=2) + np.roll(img, -1, axis=2)) / 5.0
    return img


class SyntheticImageDataset:
    """Deterministic synthetic classification dataset.

    Attributes
    ----------
    train_images, train_labels, test_images, test_labels:
        NumPy arrays; images are ``(N, C, H, W)`` float64 roughly in
        ``[-2, 2]``, labels are int64 class indices.
    """

    def __init__(self, spec: DatasetSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        c, s = spec.channels, spec.image_size

        # class prototypes: smooth structure + class-specific texture direction
        self.prototypes = np.stack([
            _smooth_noise(rng, c, s) * 1.5 + 0.3 * rng.normal(size=(c, 1, 1))
            for _ in range(spec.num_classes)
        ])
        self.textures = rng.normal(size=(spec.num_classes, c, s, s)) * 0.3

        self.train_images, self.train_labels = self._generate(
            rng, spec.train_samples)
        self.test_images, self.test_labels = self._generate(
            rng, spec.test_samples)

    # ------------------------------------------------------------------ #
    def _generate(self, rng: np.random.Generator,
                  count: int) -> Tuple[np.ndarray, np.ndarray]:
        spec = self.spec
        labels = rng.integers(0, spec.num_classes, size=count)
        images = np.empty((count, spec.channels, spec.image_size, spec.image_size))
        for index, label in enumerate(labels):
            base = self.prototypes[label] + self.textures[label] * rng.normal()
            shift_h = int(rng.integers(-2, 3))
            shift_w = int(rng.integers(-2, 3))
            sample = np.roll(base, (shift_h, shift_w), axis=(1, 2))
            amplitude = 1.0 + 0.15 * rng.normal()
            sample = amplitude * sample + spec.noise_std * rng.normal(size=sample.shape)
            images[index] = sample
        return images, labels.astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.spec.channels, self.spec.image_size, self.spec.image_size)

    def __len__(self) -> int:
        return self.train_images.shape[0]

    def subset(self, train_samples: int, test_samples: int) -> "SyntheticImageDataset":
        """Return a view-like copy restricted to the first N samples of each split."""
        clone = object.__new__(SyntheticImageDataset)
        clone.spec = self.spec
        clone.prototypes = self.prototypes
        clone.textures = self.textures
        clone.train_images = self.train_images[:train_samples]
        clone.train_labels = self.train_labels[:train_samples]
        clone.test_images = self.test_images[:test_samples]
        clone.test_labels = self.test_labels[:test_samples]
        return clone


# ---------------------------------------------------------------------- #
# named dataset constructors matching the paper's benchmarks
# ---------------------------------------------------------------------- #
def synthetic_cifar10(image_size: int = 32, train_samples: int = 2048,
                      test_samples: int = 512, seed: int = 0) -> SyntheticImageDataset:
    """CIFAR-10 stand-in: 10 classes, 3x32x32 (size reducible for CI)."""
    return SyntheticImageDataset(DatasetSpec(
        name="synthetic-cifar10", num_classes=10, image_size=image_size,
        train_samples=train_samples, test_samples=test_samples, seed=seed))


def synthetic_cifar100(image_size: int = 32, train_samples: int = 4096,
                       test_samples: int = 1024, seed: int = 1) -> SyntheticImageDataset:
    """CIFAR-100 stand-in: 100 classes, 3x32x32."""
    return SyntheticImageDataset(DatasetSpec(
        name="synthetic-cifar100", num_classes=100, image_size=image_size,
        train_samples=train_samples, test_samples=test_samples, seed=seed))


def synthetic_imagenet(image_size: int = 64, num_classes: int = 100,
                       train_samples: int = 4096, test_samples: int = 1024,
                       seed: int = 2) -> SyntheticImageDataset:
    """ImageNet stand-in: default 100 classes at 3x64x64 (full 224 is supported
    but impractical for CPU training)."""
    return SyntheticImageDataset(DatasetSpec(
        name="synthetic-imagenet", num_classes=num_classes, image_size=image_size,
        train_samples=train_samples, test_samples=test_samples, seed=seed))


_NAMED = {
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "imagenet": synthetic_imagenet,
}


def make_dataset(name: str, **kwargs) -> SyntheticImageDataset:
    """Build a named synthetic dataset (``cifar10``, ``cifar100``, ``imagenet``)."""
    if name not in _NAMED:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_NAMED)}")
    return _NAMED[name](**kwargs)
