"""Calibration observers for post-training quantization (PTQ).

The PTQ baselines of the paper (Kim [5], Bai [6, 7]) do not learn their scale
factors; they derive them from the statistics of weights / partial sums
observed on a calibration set.  Observers accumulate those statistics per
quantization group and convert them into scales.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .fake_quant import quant_range

__all__ = ["Observer", "MinMaxObserver", "PercentileObserver", "MeanAbsObserver"]


class Observer:
    """Base class accumulating per-group statistics of observed arrays.

    ``group_shape`` must be broadcastable to every observed array; statistics
    are reduced over the axes where ``group_shape`` is 1.
    """

    def __init__(self, bits: int, signed: bool = True,
                 group_shape: Tuple[int, ...] = (1,)):
        self.bits = bits
        self.signed = signed
        self.qrange = quant_range(bits, signed)
        self.group_shape = tuple(group_shape)
        self.num_observed = 0

    def _reduce_axes(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        group = self.group_shape
        if len(group) < len(shape):
            group = (1,) * (len(shape) - len(group)) + group
        if len(group) != len(shape):
            raise ValueError(f"group shape {self.group_shape} incompatible with {shape}")
        return tuple(i for i, dim in enumerate(group) if dim == 1)

    def observe(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def compute_scale(self, minimum: float = 1e-8) -> np.ndarray:
        raise NotImplementedError


class MinMaxObserver(Observer):
    """Scale from the running min / max of the observed values."""

    def __init__(self, bits: int, signed: bool = True,
                 group_shape: Tuple[int, ...] = (1,)):
        super().__init__(bits, signed, group_shape)
        self.max_val: Optional[np.ndarray] = None
        self.min_val: Optional[np.ndarray] = None

    def observe(self, values: np.ndarray) -> None:
        axes = self._reduce_axes(values.shape)
        cur_max = values.max(axis=axes, keepdims=True)
        cur_min = values.min(axis=axes, keepdims=True)
        if self.max_val is None:
            self.max_val, self.min_val = cur_max, cur_min
        else:
            self.max_val = np.maximum(self.max_val, cur_max)
            self.min_val = np.minimum(self.min_val, cur_min)
        self.num_observed += values.size

    def compute_scale(self, minimum: float = 1e-8) -> np.ndarray:
        if self.max_val is None:
            raise RuntimeError("observer has not seen any data")
        if self.signed:
            bound = np.maximum(np.abs(self.max_val), np.abs(self.min_val))
            scale = bound / max(self.qrange.qmax, 1)
        else:
            scale = self.max_val / max(self.qrange.qmax, 1)
        return np.maximum(scale, minimum).reshape(self.group_shape)


class PercentileObserver(Observer):
    """Scale from a high percentile of ``|x|``, clipping outliers.

    Keeping a fixed-size reservoir of absolute values per call keeps memory
    bounded while still approximating the percentile over the calibration set.
    """

    def __init__(self, bits: int, signed: bool = True,
                 group_shape: Tuple[int, ...] = (1,), percentile: float = 99.9):
        super().__init__(bits, signed, group_shape)
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.percentile = percentile
        self.bound: Optional[np.ndarray] = None

    def observe(self, values: np.ndarray) -> None:
        axes = self._reduce_axes(values.shape)
        cur = np.percentile(np.abs(values), self.percentile, axis=axes, keepdims=True)
        if self.bound is None:
            self.bound = cur
        else:
            # running max of per-batch percentiles: conservative but stable
            self.bound = np.maximum(self.bound, cur)
        self.num_observed += values.size

    def compute_scale(self, minimum: float = 1e-8) -> np.ndarray:
        if self.bound is None:
            raise RuntimeError("observer has not seen any data")
        scale = self.bound / max(self.qrange.qmax, 1)
        return np.maximum(scale, minimum).reshape(self.group_shape)


class MeanAbsObserver(Observer):
    """LSQ-style initialisation statistic ``2 * E[|x|] / sqrt(Qp)`` as a scale."""

    def __init__(self, bits: int, signed: bool = True,
                 group_shape: Tuple[int, ...] = (1,)):
        super().__init__(bits, signed, group_shape)
        self.sum_abs: Optional[np.ndarray] = None
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        axes = self._reduce_axes(values.shape)
        cur = np.sum(np.abs(values), axis=axes, keepdims=True)
        if self.sum_abs is None:
            self.sum_abs = cur
        else:
            self.sum_abs = self.sum_abs + cur
        group_count = values.size / max(int(np.prod(self.group_shape)), 1)
        self.count += group_count
        self.num_observed += values.size

    def compute_scale(self, minimum: float = 1e-8) -> np.ndarray:
        if self.sum_abs is None or self.count == 0:
            raise RuntimeError("observer has not seen any data")
        mean_abs = self.sum_abs / self.count
        scale = 2.0 * mean_abs / np.sqrt(max(self.qrange.qmax, 1))
        return np.maximum(scale, minimum).reshape(self.group_shape)
