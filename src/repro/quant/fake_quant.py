"""Uniform fake-quantization primitives.

These are the plain (non-learnable) quantize / dequantize operations used by
post-training quantization baselines (Kim [5], Bai [6, 7]) and by the
analysis utilities.  The learnable counterpart lives in :mod:`repro.quant.lsq`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["QuantRange", "quant_range", "fake_quantize", "fake_quantize_tensor",
           "quantize_to_int", "dequantize_from_int", "quantization_error"]


@dataclass(frozen=True)
class QuantRange:
    """Integer range of a uniform quantizer."""

    qmin: int
    qmax: int

    @property
    def n_levels(self) -> int:
        return self.qmax - self.qmin + 1

    def clamp(self, values: np.ndarray) -> np.ndarray:
        return np.clip(values, self.qmin, self.qmax)


def quant_range(bits: int, signed: bool = True) -> QuantRange:
    """Return the integer range of a ``bits``-wide uniform quantizer.

    Signed quantizers use the symmetric range ``[-2**(b-1), 2**(b-1)-1]``
    (binary, ``bits == 1``, degenerates to ``{-1, 0, 1}`` clipping at
    ``[-1, 1]`` which matches the ternary-free "binary partial sum" setting
    used for the CIFAR-10 experiment); unsigned use ``[0, 2**b - 1]``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if signed:
        if bits == 1:
            return QuantRange(-1, 1)
        return QuantRange(-(2 ** (bits - 1)), 2 ** (bits - 1) - 1)
    return QuantRange(0, 2 ** bits - 1)


def quantize_to_int(values: np.ndarray, scale: np.ndarray, bits: int,
                    signed: bool = True) -> np.ndarray:
    """Quantize ``values`` to integers: ``round(clamp(values / scale))``."""
    rng = quant_range(bits, signed)
    scaled = values / scale
    return rng.clamp(np.round(scaled))


def dequantize_from_int(int_values: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Map integer codes back to real values."""
    return int_values * scale


def fake_quantize(values: np.ndarray, scale: np.ndarray, bits: int,
                  signed: bool = True) -> np.ndarray:
    """Quantize then dequantize (NumPy arrays, no gradients)."""
    return dequantize_from_int(quantize_to_int(values, scale, bits, signed), scale)


def fake_quantize_tensor(x: Tensor, scale: Union[Tensor, np.ndarray, float], bits: int,
                         signed: bool = True) -> Tensor:
    """Differentiable fake quantization with a *fixed* (non-learnable) scale.

    Uses the straight-through estimator for the rounding; the scale is treated
    as a constant, which is the PTQ setting of the baselines.
    """
    rng = quant_range(bits, signed)
    scale_t = scale if isinstance(scale, Tensor) else Tensor(np.asarray(scale, dtype=np.float64))
    scaled = x / scale_t
    clipped = scaled.clamp(float(rng.qmin), float(rng.qmax))
    return clipped.round_ste() * scale_t


def quantization_error(values: np.ndarray, scale: np.ndarray, bits: int,
                       signed: bool = True) -> float:
    """Mean-squared quantization error of ``values`` under the given scale."""
    return float(np.mean((values - fake_quantize(values, scale, bits, signed)) ** 2))
