"""Weight bit-splitting for bit-scalable CIM arrays.

A ``weight_bits``-wide signed integer weight cannot be stored in a single
memory cell when the cell holds fewer than ``weight_bits`` bits.  The weight
is therefore split into ``n_splits = ceil(weight_bits / cell_bits)`` slices
("bit-splits"); each slice occupies its own column of cells, produces its own
partial sum, and the digitized partial sums are shift-and-added with weights
``2**(split_index * cell_bits)`` (Fig. 5 of the paper).

Encoding
--------
We use a two's-complement grouping: the low slices hold unsigned
``cell_bits``-wide fields and the top slice holds the remaining
``weight_bits - (n_splits - 1) * cell_bits`` bits interpreted as signed.  This
gives the exact reconstruction invariant

``sum_j  split_j * 2**(j * cell_bits)  ==  w_int``

which the property-based tests rely on.  (Physically the signed top slice
corresponds to the standard differential-column / reference-subtraction
technique; functionally it exercises the same partial-sum path.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["BitSplitConfig", "num_splits", "split_signed", "merge_splits",
           "split_tensor_ste", "split_ranges"]


@dataclass(frozen=True)
class BitSplitConfig:
    """Static description of a bit-splitting arrangement."""

    weight_bits: int
    cell_bits: int

    def __post_init__(self):
        if self.weight_bits < 1 or self.cell_bits < 1:
            raise ValueError("weight_bits and cell_bits must be >= 1")
        if self.cell_bits > self.weight_bits:
            raise ValueError("cell_bits may not exceed weight_bits")

    @property
    def n_splits(self) -> int:
        return num_splits(self.weight_bits, self.cell_bits)

    @property
    def top_bits(self) -> int:
        """Number of bits carried by the (signed) top slice."""
        return self.weight_bits - (self.n_splits - 1) * self.cell_bits

    @property
    def shift_factors(self) -> np.ndarray:
        """Per-split shift-and-add factors ``2**(j*cell_bits)``."""
        return np.array([2.0 ** (j * self.cell_bits) for j in range(self.n_splits)])


def num_splits(weight_bits: int, cell_bits: int) -> int:
    """Number of memory cells needed per weight."""
    return int(math.ceil(weight_bits / cell_bits))


def split_ranges(config: BitSplitConfig) -> List[Tuple[int, int]]:
    """Return the ``(min, max)`` integer range each split slice may take."""
    ranges = []
    for j in range(config.n_splits):
        if j < config.n_splits - 1:
            ranges.append((0, 2 ** config.cell_bits - 1))
        else:
            top = config.top_bits
            if top == 1:
                ranges.append((-1, 0))
            else:
                ranges.append((-(2 ** (top - 1)), 2 ** (top - 1) - 1))
    return ranges


def split_signed(w_int: np.ndarray, config: BitSplitConfig) -> np.ndarray:
    """Split signed integer weights into bit slices.

    Parameters
    ----------
    w_int:
        Integer-valued array (float dtype is accepted) within the signed
        ``weight_bits`` range.
    config:
        Bit-split arrangement.

    Returns
    -------
    np.ndarray
        Array of shape ``(n_splits,) + w_int.shape`` with slice ``j`` holding
        the ``j``-th least-significant field.
    """
    bits, cell = config.weight_bits, config.cell_bits
    n = config.n_splits
    w = np.asarray(np.round(w_int), dtype=np.int64)
    lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    if w.min(initial=0) < lo or w.max(initial=0) > hi:
        raise ValueError(f"weights out of signed {bits}-bit range [{lo}, {hi}]")
    unsigned = np.mod(w, 2 ** bits)  # two's-complement representation
    splits = np.empty((n,) + w.shape, dtype=np.float64)
    for j in range(n):
        field = (unsigned >> (j * cell)) & (2 ** cell - 1)
        if j == n - 1:
            top = config.top_bits
            field = field & (2 ** top - 1)
            # reinterpret the top field as signed over `top` bits
            field = np.where(field >= 2 ** (top - 1), field - 2 ** top, field)
        splits[j] = field
    return splits


def merge_splits(splits: np.ndarray, config: BitSplitConfig) -> np.ndarray:
    """Inverse of :func:`split_signed` via shift-and-add."""
    factors = config.shift_factors.reshape((config.n_splits,) + (1,) * (splits.ndim - 1))
    return np.sum(splits * factors, axis=0)


def split_tensor_ste(w_bar: Tensor, config: BitSplitConfig) -> Tensor:
    """Differentiable bit-splitting of an integer-valued weight tensor.

    Forward: exact :func:`split_signed` of ``w_bar``'s data, producing a
    tensor of shape ``(n_splits,) + w_bar.shape``.

    Backward: the slicing is piecewise constant, so a straight-through
    surrogate is used.  The gradient flowing into slice ``j`` is mapped back
    to ``w_bar`` scaled by ``2**(-j*cell_bits) / n_splits``; summed over
    slices this preserves the gradient magnitude of the reconstructed weight
    (because ``sum_j 2**(j c) * 2**(-j c) / n == 1``), mirroring the paper's
    weight-duplication trick where every bit-split processes (and
    back-propagates into) a copy of the same underlying weight.
    """
    data = split_signed(w_bar.data, config)
    n = config.n_splits
    cell = config.cell_bits

    def backward(grad):
        if not w_bar.requires_grad:
            return
        grad = np.asarray(grad)
        total = np.zeros_like(w_bar.data)
        for j in range(n):
            total = total + grad[j] * (2.0 ** (-j * cell)) / n
        w_bar._accumulate(total)

    return Tensor._make(data, (w_bar,), backward)
