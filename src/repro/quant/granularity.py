"""Quantization granularity model.

The paper compares three granularities for both weights and partial sums
(Fig. 1): *layer-wise* (one scale factor per layer), *array-wise* (one per
crossbar array) and *column-wise* (one per crossbar column).  This module
defines the :class:`Granularity` enum and the helpers that translate a
granularity into the broadcastable shape of its scale-factor tensor for the
tiled weight / partial-sum layouts used by :mod:`repro.core`.

Tiled layouts
-------------
* tiled weights: ``(n_arrays, rows_per_array, out_channels)``
* partial sums:  ``(n_splits, n_arrays, batch, L, out_channels)`` — the
  canonical ``(S, A, N, L, OC)`` convention documented in
  :mod:`repro.core.psum`.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

__all__ = ["Granularity", "weight_scale_shape", "psum_scale_shape",
           "weight_group_size", "psum_group_size"]


class Granularity(str, Enum):
    """Scale-factor sharing granularity for weights or partial sums."""

    LAYER = "layer"
    ARRAY = "array"
    COLUMN = "column"

    @classmethod
    def parse(cls, value) -> "Granularity":
        """Accept a :class:`Granularity`, or a case-insensitive string."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError as exc:
                raise ValueError(
                    f"unknown granularity {value!r}; expected one of "
                    f"{[g.value for g in cls]}") from exc
        raise TypeError(f"cannot interpret {value!r} as a Granularity")

    @property
    def is_finer_than_layer(self) -> bool:
        return self is not Granularity.LAYER

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ORDER = {Granularity.LAYER: 0, Granularity.ARRAY: 1, Granularity.COLUMN: 2}


def finer(a: Granularity, b: Granularity) -> Granularity:
    """Return the finer of two granularities."""
    return a if _ORDER[a] >= _ORDER[b] else b


def weight_scale_shape(granularity: Granularity, n_arrays: int,
                       out_channels: int) -> Tuple[int, int, int]:
    """Scale shape broadcastable over tiled weights ``(A, R, OC)``.

    Column-wise weight quantization assigns one scale to every crossbar
    column, i.e. one per ``(array, output channel)`` pair; the rows of a
    column always share the scale because they feed the same ADC column.
    """
    granularity = Granularity.parse(granularity)
    if granularity is Granularity.LAYER:
        return (1, 1, 1)
    if granularity is Granularity.ARRAY:
        return (n_arrays, 1, 1)
    return (n_arrays, 1, out_channels)


def psum_scale_shape(granularity: Granularity, n_splits: int, n_arrays: int,
                     out_channels: int) -> Tuple[int, int, int, int, int]:
    """Scale shape broadcastable over partial sums ``(S, A, N, L, OC)``.

    * layer  — a single scale for every partial sum of the layer;
    * array  — one scale per (bit-split, array);
    * column — one scale per (bit-split, array, output channel), i.e. per
      physical ADC column, which is the paper's proposal.
    """
    granularity = Granularity.parse(granularity)
    if granularity is Granularity.LAYER:
        return (1, 1, 1, 1, 1)
    if granularity is Granularity.ARRAY:
        return (n_splits, n_arrays, 1, 1, 1)
    return (n_splits, n_arrays, 1, 1, out_channels)


def weight_group_size(granularity: Granularity, n_arrays: int, rows_per_array: int,
                      out_channels: int) -> int:
    """Number of weight elements sharing one scale factor."""
    granularity = Granularity.parse(granularity)
    total = n_arrays * rows_per_array * out_channels
    if granularity is Granularity.LAYER:
        return total
    if granularity is Granularity.ARRAY:
        return rows_per_array * out_channels
    return rows_per_array


def psum_group_size(granularity: Granularity, n_splits: int, n_arrays: int,
                    out_channels: int, samples: int) -> int:
    """Number of partial-sum elements sharing one scale factor for a batch."""
    granularity = Granularity.parse(granularity)
    total = n_splits * n_arrays * out_channels * samples
    if granularity is Granularity.LAYER:
        return total
    if granularity is Granularity.ARRAY:
        return out_channels * samples
    return samples
