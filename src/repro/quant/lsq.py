"""Learned Step-size Quantization (LSQ) extended to arbitrary granularities.

The paper trains scale factors for weights, activations and partial sums with
LSQ [Esser et al., ICLR 2020] and extends it "to support scale factors at
varying granularities, including column-wise quantization" (Sec. III-A).

The implementation follows the LSQ recipe:

* fake quantization ``x_hat = round(clamp(x / s, Qn, Qp)) * s`` with a
  straight-through estimator for the rounding,
* the gradient w.r.t. ``s`` follows automatically from the composite above
  (``round(x/s) - x/s`` inside the range, ``Qn`` / ``Qp`` outside), which is
  exactly the LSQ update rule,
* the scale gradient is rescaled by ``g = 1 / sqrt(N_group * Qp)`` where
  ``N_group`` is the number of elements sharing that scale, so that coarse and
  fine granularities train equally stably,
* scales are initialised from the first observed batch as
  ``2 * mean(|x|) / sqrt(Qp)`` computed per group.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Parameter, Tensor
from .fake_quant import QuantRange, quant_range

__all__ = ["LSQQuantizer", "lsq_quantize", "lsq_init_scale"]


def lsq_init_scale(values: np.ndarray, qmax: int, group_shape: Tuple[int, ...],
                   minimum: float = 1e-8,
                   valid_mask: Optional[np.ndarray] = None) -> np.ndarray:
    """LSQ scale initialisation ``2 * E[|x|] / sqrt(Qp)`` computed per group.

    ``group_shape`` must be broadcastable to ``values.shape``; the mean is
    taken over every axis in which ``group_shape`` is 1.  ``valid_mask``
    (same shape as ``values``, or broadcastable) restricts the statistic to
    real elements — the CIM layers use it to exclude the zero rows added when
    padding a weight tile to the full array height, which would otherwise
    bias the scale low.
    """
    if len(group_shape) != values.ndim:
        raise ValueError("group_shape must have the same rank as values")
    axes = tuple(i for i, dim in enumerate(group_shape) if dim == 1)
    if valid_mask is None:
        mean_abs = np.mean(np.abs(values), axis=axes, keepdims=True)
    else:
        mask = np.broadcast_to(np.asarray(valid_mask, dtype=np.float64), values.shape)
        counts = np.maximum(mask.sum(axis=axes, keepdims=True), 1.0)
        mean_abs = (np.abs(values) * mask).sum(axis=axes, keepdims=True) / counts
    scale = 2.0 * mean_abs / math.sqrt(max(qmax, 1))
    return np.maximum(scale, minimum).reshape(group_shape)


def lsq_quantize(x: Tensor, scale: Tensor, qrange: QuantRange,
                 grad_scale: float) -> Tensor:
    """Functional LSQ fake quantization (differentiable in ``x`` and ``scale``)."""
    s = scale.scale_grad(grad_scale)
    scaled = x / s
    clipped = scaled.clamp(float(qrange.qmin), float(qrange.qmax))
    return clipped.round_ste() * s


class LSQQuantizer(Module):
    """LSQ quantizer with per-group learnable scales.

    Parameters
    ----------
    bits:
        Quantizer precision.
    signed:
        ``True`` for symmetric signed ranges (weights, partial sums),
        ``False`` for unsigned ranges (post-ReLU activations).
    scale_shape:
        Shape of the learnable scale tensor.  Must be broadcastable to the
        input of :meth:`forward`.  ``(1,) * ndim`` gives layer-wise
        quantization; finer shapes give array- or column-wise quantization.
    grad_scale_override:
        Optional fixed gradient-scaling factor; by default it is computed
        from the group size of the first observed input.
    """

    def __init__(self, bits: int, signed: bool = True,
                 scale_shape: Union[int, Sequence[int]] = (1,),
                 grad_scale_override: Optional[float] = None):
        super().__init__()
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = int(bits)
        self.signed = bool(signed)
        self.qrange = quant_range(bits, signed)
        if isinstance(scale_shape, int):
            scale_shape = (scale_shape,)
        self.scale_shape = tuple(int(d) for d in scale_shape)
        self.scale = Parameter(np.ones(self.scale_shape), name="lsq_scale")
        self.grad_scale_override = grad_scale_override
        self.register_buffer("initialized", np.zeros(1))
        self._grad_scale: Optional[float] = grad_scale_override

    # ------------------------------------------------------------------ #
    @property
    def qmin(self) -> int:
        return self.qrange.qmin

    @property
    def qmax(self) -> int:
        return self.qrange.qmax

    @property
    def num_groups(self) -> int:
        return int(np.prod(self.scale_shape))

    def is_initialized(self) -> bool:
        return bool(self.initialized[0] > 0)

    # ------------------------------------------------------------------ #
    def initialize_from(self, values: np.ndarray,
                        valid_mask: Optional[np.ndarray] = None) -> None:
        """Initialise scales from a batch of data (LSQ init rule).

        ``valid_mask`` optionally marks which elements are real data (see
        :func:`lsq_init_scale`).
        """
        group_shape = self._broadcast_group_shape(values.shape)
        init = lsq_init_scale(values, self.qmax, group_shape, valid_mask=valid_mask)
        self.scale.data = init.reshape(self.scale_shape).astype(np.float64)
        group_size = values.size / max(self.num_groups, 1)
        if self.grad_scale_override is None:
            self._grad_scale = 1.0 / math.sqrt(max(group_size * max(self.qmax, 1), 1.0))
        self.initialized[...] = 1.0

    def _broadcast_group_shape(self, data_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Expand ``self.scale_shape`` to the rank of ``data_shape``."""
        if len(self.scale_shape) == data_shape.__len__():
            return self.scale_shape
        if len(self.scale_shape) < len(data_shape):
            # pad with leading singleton dims, matching NumPy broadcasting
            return (1,) * (len(data_shape) - len(self.scale_shape)) + self.scale_shape
        raise ValueError(
            f"scale shape {self.scale_shape} has higher rank than data {data_shape}")

    def grad_scale_for(self, x: Tensor) -> float:
        if self._grad_scale is not None:
            return self._grad_scale
        group_size = x.size / max(self.num_groups, 1)
        return 1.0 / math.sqrt(max(group_size * max(self.qmax, 1), 1.0))

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        """Return the fake-quantized version of ``x``."""
        if not self.is_initialized():
            self.initialize_from(x.data)
        return lsq_quantize(x, self.scale, self.qrange, self.grad_scale_for(x))

    def quantize_int(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(integer codes, scale)`` with gradients attached.

        The integer tensor is ``round(clamp(x / s))`` and is what gets
        programmed into memory cells (weights) or produced by the ADC
        (partial sums); callers multiply by the returned scale to dequantize.
        """
        if not self.is_initialized():
            self.initialize_from(x.data)
        s = self.scale.scale_grad(self.grad_scale_for(x))
        scaled = x / s
        clipped = scaled.clamp(float(self.qmin), float(self.qmax))
        return clipped.round_ste(), s

    def quantization_error(self, values: np.ndarray) -> float:
        """MSE between ``values`` and their fake-quantized reconstruction."""
        if not self.is_initialized():
            self.initialize_from(values)
        scale = np.broadcast_to(self.scale.data.reshape(
            self._broadcast_group_shape(values.shape)), values.shape)
        q = np.clip(np.round(values / scale), self.qmin, self.qmax) * scale
        return float(np.mean((values - q) ** 2))

    def extra_repr(self) -> str:
        return (f"bits={self.bits}, signed={self.signed}, "
                f"groups={self.num_groups}, scale_shape={self.scale_shape}")
