"""``repro.quant`` — granularity-aware quantization primitives.

Provides the building blocks of the paper's quantization scheme:

* :class:`~repro.quant.granularity.Granularity` — layer / array / column
  scale-factor sharing,
* :class:`~repro.quant.lsq.LSQQuantizer` — learnable-scale quantizer (LSQ)
  extended to per-array and per-column scale tensors,
* PTQ observers for the non-learnable baselines,
* weight bit-splitting for multi-cell weights.
"""

from .bitsplit import (BitSplitConfig, merge_splits, num_splits, split_ranges,
                       split_signed, split_tensor_ste)
from .fake_quant import (QuantRange, dequantize_from_int, fake_quantize,
                         fake_quantize_tensor, quant_range, quantization_error,
                         quantize_to_int)
from .granularity import (Granularity, finer, psum_group_size, psum_scale_shape,
                          weight_group_size, weight_scale_shape)
from .lsq import LSQQuantizer, lsq_init_scale, lsq_quantize
from .observers import MeanAbsObserver, MinMaxObserver, Observer, PercentileObserver

__all__ = [
    "Granularity", "finer", "weight_scale_shape", "psum_scale_shape",
    "weight_group_size", "psum_group_size",
    "QuantRange", "quant_range", "fake_quantize", "fake_quantize_tensor",
    "quantize_to_int", "dequantize_from_int", "quantization_error",
    "LSQQuantizer", "lsq_quantize", "lsq_init_scale",
    "Observer", "MinMaxObserver", "PercentileObserver", "MeanAbsObserver",
    "BitSplitConfig", "num_splits", "split_signed", "merge_splits",
    "split_tensor_ste", "split_ranges",
]
