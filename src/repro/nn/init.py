"""Weight initialisation utilities (Kaiming / Xavier / constant)."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "calculate_fan",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "xavier_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
    "default_rng",
]

_GLOBAL_SEED = 0


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Library-wide RNG factory so every initialiser is reproducible."""
    return np.random.default_rng(_GLOBAL_SEED if seed is None else seed)


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for linear or convolutional weight shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kh, kw = shape
        receptive = kh * kw
        return in_channels * receptive, out_channels * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape, gain: float = math.sqrt(2.0),
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks."""
    rng = rng or default_rng()
    fan_in, _ = calculate_fan(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, gain: float = math.sqrt(2.0),
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    fan_in, _ = calculate_fan(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    fan_in, fan_out = calculate_fan(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, gain: float = 1.0,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    fan_in, fan_out = calculate_fan(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape, low: float = -0.1, high: float = 0.1,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    return rng.uniform(low, high, size=shape)


def normal(shape, mean: float = 0.0, std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    return rng.normal(mean, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
