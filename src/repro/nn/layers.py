"""Standard neural-network layers (full-precision reference implementations).

These layers are the floating-point substrate on which the CIM-quantized
layers in :mod:`repro.core` are built: ``CIMConv2d`` re-uses the same
convolution geometry and initialisation but replaces the MAC datapath with the
bit-split / array-tiled / partial-sum-quantized pipeline of the paper.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Parameter, Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "ReLU",
    "ReLU6",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
]

IntPair = Union[int, Tuple[int, int]]


class Linear(Module):
    """Affine transformation ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features),
                                                     gain=1.0, rng=rng), name="weight")
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"


class Conv2d(Module):
    """Full-precision 2-D convolution layer."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, groups: int = 1,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kh, kw)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng), name="weight")
        if bias:
            fan_in = (in_channels // groups) * kh * kw
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(init.uniform((out_channels,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, g={self.groups}")


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """ReLU clipped at 6, a common companion of low-bit activation quantization."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clamp(0.0, 6.0)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None,
                 padding: IntPair = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}, p={self.padding}"


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None,
                 padding: IntPair = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Global average pooling returning ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
