"""Reverse-mode automatic differentiation on top of NumPy arrays.

This module provides the :class:`Tensor` class used throughout the library.  It
is a deliberately small, explicit engine: every differentiable primitive
records a backward closure on a tape, and :meth:`Tensor.backward` walks the
tape in reverse topological order.

The engine supports the operations needed by the CIM quantization framework:

* broadcasting arithmetic with correct gradient reduction,
* (batched) matrix multiplication,
* reductions (sum / mean / max / min) over arbitrary axes,
* shape manipulation (reshape, transpose, pad, slice, concatenate),
* ``im2col``-style unfolding with a scatter-add backward (``fold``),
* straight-through-estimator rounding and gradient scaling, which are the two
  non-standard primitives required by LSQ quantization-aware training.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "tensor"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient tracking inside the block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record gradients."""
    return _GRAD_ENABLED


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Broadcasting may have added leading dimensions and/or stretched size-1
    dimensions; the gradient of a broadcast is the sum over the broadcast
    axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 1000  # ensure ndarray.__op__(Tensor) defers to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})\n{self.data!r}"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a reference, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad or p._parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        # Topological ordering of the graph reachable from ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __neg__(self):
        data = -self.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        return self.matmul(other)

    # comparisons produce detached boolean/float tensors
    def __gt__(self, other):
        other = self._coerce(other)
        return Tensor((self.data > other.data).astype(self.data.dtype))

    def __lt__(self, other):
        other = self._coerce(other)
        return Tensor((self.data < other.data).astype(self.data.dtype))

    def __ge__(self, other):
        other = self._coerce(other)
        return Tensor((self.data >= other.data).astype(self.data.dtype))

    def __le__(self, other):
        other = self._coerce(other)
        return Tensor((self.data <= other.data).astype(self.data.dtype))

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(data, 1e-30))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def clamp(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        """Clip values to ``[low, high]``; gradient is zero where clipped."""
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def round_ste(self) -> "Tensor":
        """Round to nearest integer, with straight-through (identity) gradient."""
        data = np.round(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    def floor_ste(self) -> "Tensor":
        """Floor, with straight-through (identity) gradient."""
        data = np.floor(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    def scale_grad(self, factor: float) -> "Tensor":
        """Identity in the forward pass; multiplies the gradient by ``factor``.

        This is the gradient-scaling trick used by LSQ to normalise the scale
        factor's gradient magnitude.
        """
        data = self.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * factor)

        return Tensor._make(data, (self,), backward)

    def where(self, condition: Union["Tensor", np.ndarray], other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Select ``self`` where ``condition`` is true, ``other`` elsewhere."""
        cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
        cond = cond.astype(bool)
        other = self._coerce(other)
        data = np.where(cond, self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * cond)
            if other.requires_grad:
                other._accumulate(grad * (~cond))

        return Tensor._make(data, (self, other), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = np.maximum(self.data, other.data)
        take_self = self.data >= other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * (~take_self))

        return Tensor._make(data, (self, other), backward)

    def minimum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = np.minimum(self.data, other.data)
        take_self = self.data <= other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * (~take_self))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        if eps:
            out = out + eps
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            full = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
                full = np.expand_dims(data, axis=tuple(sorted(axes)))
            mask = (self.data == full)
            # Split gradient equally between ties to keep the sum of gradients
            # equal to the upstream gradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.squeeze(np.asarray(grad), axis=axis))

        return Tensor._make(data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        original = self.shape
        data = np.squeeze(self.data, axis=axis)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        data = np.broadcast_to(self.data, shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(np.asarray(grad), original))

        return Tensor._make(data, (self,), backward)

    def pad(self, pad_width, value: float = 0.0) -> "Tensor":
        """Pad with a constant ``value``.  ``pad_width`` follows ``np.pad``."""
        data = np.pad(self.data, pad_width, mode="constant", constant_values=value)
        slices = tuple(slice(before, before + dim)
                       for (before, _after), dim in zip(pad_width, self.shape))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad)[slices])

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                full = np.zeros(original_shape, dtype=self.data.dtype)
                np.add.at(full, index, np.asarray(grad))
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            grad = np.asarray(grad)
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(index)])

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix product with NumPy batched-matmul broadcasting semantics.

        Supports the 1-D / 2-D special cases of ``np.matmul`` as well as
        broadcast batched matmul for operands with ``ndim >= 2``.
        """
        other = self._coerce(other)
        a, b = self.data, other.data
        data = np.matmul(a, b)

        def _reduce_batch(grad_operand: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
            """Sum gradient over broadcast batch dimensions of a matmul operand."""
            if grad_operand.shape == shape:
                return grad_operand
            extra = grad_operand.ndim - len(shape)
            if extra > 0:
                grad_operand = grad_operand.sum(axis=tuple(range(extra)))
            axes = tuple(i for i, dim in enumerate(shape)
                         if dim == 1 and grad_operand.shape[i] != 1)
            if axes:
                grad_operand = grad_operand.sum(axis=axes, keepdims=True)
            return grad_operand.reshape(shape)

        def backward(grad):
            grad = np.asarray(grad)
            if a.ndim == 1 and b.ndim == 1:
                # inner product -> scalar
                if self.requires_grad:
                    self._accumulate(grad * b)
                if other.requires_grad:
                    other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                if self.requires_grad:
                    ga = np.matmul(grad[..., None, :], np.swapaxes(b, -1, -2))[..., 0, :]
                    self._accumulate(_unbroadcast(ga, a.shape))
                if other.requires_grad:
                    gb = np.multiply.outer(a, grad) if b.ndim == 2 else \
                        np.einsum("k,...n->...kn", a, grad)
                    other._accumulate(_reduce_batch(np.asarray(gb), b.shape))
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                if self.requires_grad:
                    ga = np.einsum("...m,k->...mk", grad, b)
                    self._accumulate(_reduce_batch(ga, a.shape))
                if other.requires_grad:
                    gb = np.einsum("...mk,...m->k", a, grad)
                    other._accumulate(gb.reshape(b.shape))
                return
            # general batched case: both operands >= 2-D
            if self.requires_grad:
                ga = np.matmul(grad, np.swapaxes(b, -1, -2))
                self._accumulate(_reduce_batch(ga, a.shape))
            if other.requires_grad:
                gb = np.matmul(np.swapaxes(a, -1, -2), grad)
                other._accumulate(_reduce_batch(gb, b.shape))

        return Tensor._make(data, (self, other), backward)


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable module parameter."""

    def __init__(self, data: ArrayLike, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
