"""``repro.nn`` — a NumPy reverse-mode autodiff and neural-network substrate.

The paper trains ResNet models with PyTorch; this package provides the
equivalent primitives (tensors with autograd, convolution / normalisation /
pooling layers, SGD, LR schedules and losses) so the quantization framework
in :mod:`repro.quant` and :mod:`repro.core` can run end-to-end without any
external deep-learning dependency.
"""

from . import functional
from . import init
from .gradcheck import gradcheck, numerical_gradient
from .layers import (AvgPool2d, Conv2d, Dropout, Flatten, GlobalAvgPool2d, Identity,
                     Linear, MaxPool2d, ReLU, ReLU6)
from .losses import CrossEntropyLoss, KLDistillationLoss, MSELoss
from .lr_scheduler import (CosineAnnealingLR, LRScheduler, MultiStepLR, StepLR,
                           WarmupCosineLR)
from .module import Module, ModuleList, Sequential
from .norm import BatchNorm1d, BatchNorm2d
from .optim import SGD, Adam, Optimizer
from .tensor import Parameter, Tensor, is_grad_enabled, no_grad, tensor

__all__ = [
    "Tensor", "Parameter", "tensor", "no_grad", "is_grad_enabled",
    "Module", "Sequential", "ModuleList",
    "Linear", "Conv2d", "ReLU", "ReLU6", "Identity", "Flatten",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Dropout",
    "BatchNorm1d", "BatchNorm2d",
    "CrossEntropyLoss", "MSELoss", "KLDistillationLoss",
    "Optimizer", "SGD", "Adam",
    "LRScheduler", "CosineAnnealingLR", "StepLR", "MultiStepLR", "WarmupCosineLR",
    "functional", "init", "gradcheck", "numerical_gradient",
]
