"""Numerical gradient checking used by the test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(fn: Callable[[], Tensor], param: Tensor,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn().item()
        flat[index] = original - eps
        minus = fn().item()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def gradcheck(fn: Callable[[], Tensor], params: Sequence[Tensor],
              eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare analytic and numerical gradients for every tensor in ``params``.

    ``fn`` must rebuild the graph on every call (it is re-evaluated many times
    for the finite differences).  Raises ``AssertionError`` with a diagnostic
    message on mismatch and returns ``True`` otherwise.
    """
    for param in params:
        param.grad = None
    loss = fn()
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in params]

    for param, analytic_grad in zip(params, analytic):
        numeric = numerical_gradient(fn, param, eps=eps)
        if analytic_grad is None:
            analytic_grad = np.zeros_like(numeric)
        if not np.allclose(analytic_grad, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic_grad - numeric))
            raise AssertionError(
                f"gradient mismatch for parameter {param.name or param.shape}: "
                f"max abs diff {worst:.3e}\nanalytic:\n{analytic_grad}\nnumeric:\n{numeric}")
    return True
