"""Loss modules."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "KLDistillationLoss"]


class CrossEntropyLoss(Module):
    """Cross-entropy over raw logits with optional label smoothing."""

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, labels, self.label_smoothing)


class MSELoss(Module):
    """Mean-squared error; used for layer-wise quantization-error analysis."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target.detach()
        return (diff * diff).mean()


class KLDistillationLoss(Module):
    """KL divergence between a student and a (detached) teacher distribution.

    Useful when recovering accuracy of a partial-sum-quantized model from its
    full-precision counterpart without retraining from scratch.
    """

    def __init__(self, temperature: float = 1.0):
        super().__init__()
        self.temperature = temperature

    def forward(self, student_logits: Tensor, teacher_logits: Tensor) -> Tensor:
        t = self.temperature
        student_log_probs = F.log_softmax(student_logits * (1.0 / t), axis=-1)
        teacher_probs = F.softmax(teacher_logits.detach() * (1.0 / t), axis=-1)
        loss = -(teacher_probs.detach() * student_log_probs).sum(axis=-1).mean()
        entropy = -(teacher_probs.data * np.log(np.maximum(teacher_probs.data, 1e-12))).sum(axis=-1).mean()
        return (loss - float(entropy)) * (t * t)
