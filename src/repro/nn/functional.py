"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

The convolution path is implemented with an explicit ``unfold`` (im2col)
primitive followed by a matrix multiplication.  This mirrors how the CIM
convolution framework of the paper maps a convolution onto crossbar arrays:
the unfolded activation columns are exactly what gets driven onto the word
lines, and the unrolled weight matrix is what gets programmed into the cells.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "unfold",
    "unfold_array",
    "fold_grad",
    "conv2d",
    "conv_output_size",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "one_hot",
    "dropout",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


@lru_cache(maxsize=256)
def _im2col_index_cache(channels: int, height: int, width: int,
                        kh: int, kw: int, sh: int, sw: int):
    """Index arrays gathering sliding windows from a padded ``(N, C, H, W)`` input.

    The arrays depend only on the (padded) spatial geometry, not on the batch
    or the data, so they are memoised: repeated inference calls with the same
    layer geometry — the common case for the frozen inference engine — reuse
    the cached indices instead of rebuilding them every forward.  The cached
    arrays are shared; callers must treat them as read-only.
    """
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


@lru_cache(maxsize=256)
def _im2col_index_cache_nlk(channels: int, height: int, width: int,
                            kh: int, kw: int, sh: int, sw: int):
    """Transposed ``(L, K)`` variant of :func:`_im2col_index_cache`.

    Indexing a padded input with these arrays yields columns in ``(N, L, K)``
    layout directly, which is what the engine's fused GEMM consumes — saving
    the ``(N, K, L) -> (N, L, K)`` transpose-copy on the hot path.
    """
    k, i, j, out_h, out_w = _im2col_index_cache(channels, height, width, kh, kw, sh, sw)
    return (np.ascontiguousarray(k.T), np.ascontiguousarray(i.T),
            np.ascontiguousarray(j.T), out_h, out_w)


@lru_cache(maxsize=256)
def _im2col_flat_index_cache(channels: int, height: int, width: int,
                             kh: int, kw: int, sh: int, sw: int, layout: str):
    """Flat gather indices into a padded ``(N, C*H*W)`` view.

    ``x[:, k, i, j]`` (one slice + three advanced indices) makes NumPy build
    the result with the advanced subspace first and hand back a transposed,
    non-contiguous array — so the engine's follow-up ``reshape`` silently
    copied every column matrix.  A single ``np.take`` along the flattened
    ``C*H*W`` axis gathers the same elements (bit-identical: pure data
    movement) directly into a C-contiguous array in the requested layout,
    which benchmarks several times faster and makes the reshape free.
    """
    k, i, j, out_h, out_w = _im2col_index_cache(channels, height, width,
                                                kh, kw, sh, sw)
    flat = k * (height * width) + i * width + j          # (K, L)
    if layout == "nlk":
        flat = flat.T
    return np.ascontiguousarray(flat), out_h, out_w


def _im2col_indices(x_padded_shape, kernel, stride):
    """Return index arrays that gather sliding windows from a padded input."""
    _, channels, height, width = x_padded_shape
    kh, kw = kernel
    sh, sw = stride
    return _im2col_index_cache(int(channels), int(height), int(width),
                               int(kh), int(kw), int(sh), int(sw))


def unfold_array(x: np.ndarray, kernel_size: IntPair, stride: IntPair = 1,
                 padding: IntPair = 0, layout: str = "nkl") -> np.ndarray:
    """Pure-NumPy im2col (no autograd graph).

    Parameters
    ----------
    x:
        Input array of shape ``(N, C, H, W)``.
    kernel_size, stride, padding:
        Convolution geometry.
    layout:
        ``"nkl"`` returns ``(N, C*kh*kw, L)`` — the layout of :func:`unfold`;
        ``"nlk"`` returns ``(N, L, C*kh*kw)``, the layout consumed by the
        frozen inference engine's fused matmul.

    This is the inference fast path behind :func:`unfold`: it reuses the
    memoised gather indices and skips the backward-closure bookkeeping.
    """
    kernel = _pair(kernel_size)
    stride = _pair(stride)
    ph, pw = _pair(padding)
    x = np.asarray(x)
    if ph or pw:
        # hand-rolled constant-0 pad: ``np.pad``'s generic machinery costs
        # >100us/call in pure Python; a zeros allocation plus one interior
        # slice-assign writes the identical bytes
        n0, c0, h0, w0 = x.shape
        padded = np.zeros((n0, c0, h0 + 2 * ph, w0 + 2 * pw), dtype=x.dtype)
        padded[:, :, ph:ph + h0, pw:pw + w0] = x
        x = padded
    n, channels, height, width = x.shape
    if layout not in ("nkl", "nlk"):
        raise ValueError(f"unknown layout {layout!r}; expected 'nkl' or 'nlk'")
    flat, _, _ = _im2col_flat_index_cache(int(channels), int(height),
                                          int(width), int(kernel[0]),
                                          int(kernel[1]), int(stride[0]),
                                          int(stride[1]), layout)
    return np.take(x.reshape(n, channels * height * width), flat, axis=1)


def unfold(x: Tensor, kernel_size: IntPair, stride: IntPair = 1,
           padding: IntPair = 0, layout: str = "nkl") -> Tensor:
    """im2col: extract sliding local blocks.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel_size, stride, padding:
        Convolution geometry.
    layout:
        ``"nkl"`` returns ``(N, C*kh*kw, L)``, matching
        ``torch.nn.functional.unfold``; ``"nlk"`` returns ``(N, L, C*kh*kw)``,
        the layout the CIM pipeline's MAC stage consumes directly — choosing
        it here avoids a large transpose node in the autograd graph.

    Returns
    -------
    Tensor
        Columns in the requested layout, where ``L = out_h * out_w``.  The
        backward pass scatter-adds the gradient back into the input (col2im).
    """
    kernel = _pair(kernel_size)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    ph, pw = padding

    x_padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    _, channels, height, width = x_padded.shape
    if layout == "nkl":
        k, i, j, out_h, out_w = _im2col_index_cache(
            channels, height, width, kernel[0], kernel[1], stride[0], stride[1])
    elif layout == "nlk":
        k, i, j, out_h, out_w = _im2col_index_cache_nlk(
            channels, height, width, kernel[0], kernel[1], stride[0], stride[1])
    else:
        raise ValueError(f"unknown layout {layout!r}; expected 'nkl' or 'nlk'")
    cols = x_padded[:, k, i, j]  # (N, K, L) or (N, L, K)

    padded_shape = x_padded.shape
    input_shape = x.shape

    def backward(grad):
        if not x.requires_grad:
            return
        grad = np.asarray(grad)
        dx_padded = np.zeros(padded_shape, dtype=grad.dtype)
        np.add.at(dx_padded, (slice(None), k, i, j), grad)
        if ph or pw:
            dx = dx_padded[:, :, ph:ph + input_shape[2], pw:pw + input_shape[3]]
        else:
            dx = dx_padded
        x._accumulate(dx)

    return Tensor._make(cols, (x,), backward)


def fold_grad(cols_grad: np.ndarray, input_shape, kernel_size: IntPair,
              stride: IntPair = 1, padding: IntPair = 0) -> np.ndarray:
    """col2im scatter-add used for testing the :func:`unfold` backward pass."""
    kernel = _pair(kernel_size)
    stride = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = input_shape
    padded_shape = (n, c, h + 2 * ph, w + 2 * pw)
    k, i, j, _, _ = _im2col_indices(padded_shape, kernel, stride)
    out = np.zeros(padded_shape, dtype=cols_grad.dtype)
    np.add.at(out, (slice(None), k, i, j), cols_grad)
    if ph or pw:
        out = out[:, :, ph:ph + h, pw:pw + w]
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0, groups: int = 1) -> Tensor:
    """2-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in // groups, kh, kw)``.
    bias:
        Optional ``(C_out,)`` bias.
    groups:
        Number of convolution groups; the CIM framework uses grouped
        convolution to evaluate all crossbar arrays of a layer in parallel.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in != c_in_per_group * groups:
        raise ValueError(
            f"input channels ({c_in}) do not match weight ({c_in_per_group}) x groups ({groups})")
    if c_out % groups != 0:
        raise ValueError("output channels must be divisible by groups")

    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    cols = unfold(x, (kh, kw), stride, padding)  # (N, C_in*kh*kw, L)
    length = out_h * out_w

    if groups == 1:
        w_mat = weight.reshape(c_out, c_in_per_group * kh * kw)
        out = w_mat.matmul(cols)  # (N, C_out, L) via broadcasting
    else:
        oc_per_group = c_out // groups
        # (N, groups, C_in/g*kh*kw, L)
        cols_g = cols.reshape(n, groups, c_in_per_group * kh * kw, length)
        # (groups, oc/g, C_in/g*kh*kw)
        w_g = weight.reshape(groups, oc_per_group, c_in_per_group * kh * kw)
        out = w_g.matmul(cols_g)  # (N, groups, oc/g, L)
        out = out.reshape(n, c_out, length)

    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, c_out, 1, 1)
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Max pooling over spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride if stride is not None else kernel_size)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = conv_output_size(w, kernel[1], stride[1], padding[1])

    cols = unfold(x, kernel, stride, padding)  # (N, C*kh*kw, L)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    out = cols.max(axis=2)
    return out.reshape(n, c, out_h, out_w)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Average pooling over spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride if stride is not None else kernel_size)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = conv_output_size(w, kernel[1], stride[1], padding[1])

    cols = unfold(x, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    out = cols.mean(axis=2)
    return out.reshape(n, c, out_h, out_w)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    log_sum = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_sum


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to a one-hot float matrix ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = log_probs.shape[-1]
    targets = Tensor(one_hot(labels, num_classes))
    picked = (log_probs * targets).sum(axis=-1)
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Cross-entropy between raw ``logits`` and integer ``labels``.

    ``label_smoothing`` mixes the one-hot target with a uniform distribution,
    matching the common training recipe for small classification models.
    """
    num_classes = logits.shape[-1]
    log_probs = log_softmax(logits, axis=-1)
    target = one_hot(labels, num_classes)
    if label_smoothing > 0.0:
        target = (1.0 - label_smoothing) * target + label_smoothing / num_classes
    loss = -(log_probs * Tensor(target)).sum(axis=-1)
    return loss.mean()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
