"""Optimisers for quantization-aware training.

SGD with momentum is the optimiser used by the paper's QAT recipe
(ResNet-20/18 trained from scratch); Adam is provided for the smaller
synthetic-data experiments where it converges in fewer epochs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser holding parameter groups.

    Parameters may be passed either as a flat iterable or as a list of
    ``{"params": [...], "lr": ..., "weight_decay": ...}`` group dictionaries,
    which is how the training code assigns a smaller learning rate and zero
    weight decay to LSQ scale factors.
    """

    def __init__(self, params, defaults: Dict[str, float]):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        params = list(params)
        if params and isinstance(params[0], dict):
            for group in params:
                merged = dict(defaults)
                merged.update({k: v for k, v in group.items() if k != "params"})
                merged["params"] = list(group["params"])
                self.param_groups.append(merged)
        else:
            merged = dict(defaults)
            merged["params"] = params
            self.param_groups.append(merged)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                param.grad = None

    def parameters(self) -> List[Parameter]:
        return [p for group in self.param_groups for p in group["params"]]

    @property
    def lr(self) -> float:
        return self.param_groups[0]["lr"]

    def set_lr(self, lr: float) -> None:
        """Scale every group's learning rate by ``lr / base_lr`` of group 0."""
        base = self.param_groups[0].get("base_lr", self.param_groups[0]["lr"])
        for group in self.param_groups:
            group_base = group.setdefault("base_lr", group["lr"])
            group["lr"] = group_base * (lr / base) if base else lr

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(self, params, lr: float = 0.1, momentum: float = 0.9,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, {"lr": lr, "momentum": momentum,
                                  "weight_decay": weight_decay, "nesterov": nesterov})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay:
                    grad = grad + weight_decay * param.data
                if momentum:
                    state = self.state.setdefault(id(param), {})
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = grad.copy()
                    else:
                        buf = momentum * buf + grad
                    state["momentum_buffer"] = buf
                    grad = grad + momentum * buf if nesterov else buf
                param.data = param.data - lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, {"lr": lr, "beta1": betas[0], "beta2": betas[1],
                                  "eps": eps, "weight_decay": weight_decay})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["beta1"], group["beta2"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay:
                    grad = grad + weight_decay * param.data
                state = self.state.setdefault(id(param), {})
                if not state:
                    state["step"] = 0
                    state["m"] = np.zeros_like(param.data)
                    state["v"] = np.zeros_like(param.data)
                state["step"] += 1
                state["m"] = beta1 * state["m"] + (1 - beta1) * grad
                state["v"] = beta2 * state["v"] + (1 - beta2) * grad * grad
                m_hat = state["m"] / (1 - beta1 ** state["step"])
                v_hat = state["v"] / (1 - beta2 ** state["step"])
                param.data = param.data - lr * m_hat / (np.sqrt(v_hat) + eps)
