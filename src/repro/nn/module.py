"""Module base class with parameter / buffer / submodule registration."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Parameter, Tensor

__all__ = ["Module", "Sequential", "ModuleList"]


class Module:
    """Base class for all neural-network modules.

    Mirrors the familiar ``torch.nn.Module`` contract: assigning a
    :class:`Parameter`, :class:`Module` or registering a buffer on an instance
    makes it discoverable through :meth:`parameters`, :meth:`named_parameters`
    and :meth:`state_dict`.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BatchNorm statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of the registry."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, param

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for name, buf in module._buffers.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, buf

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != np.asarray(value).shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{params[name].data.shape} vs {np.asarray(value).shape}")
                params[name].data = np.asarray(value, dtype=np.float64).copy()
                continue
            # buffers: walk to owning module
            owner, attr = self._resolve_buffer(name)
            if owner is not None:
                owner._set_buffer(attr, value)
            elif strict:
                missing.append(name)
        if strict and missing:
            raise KeyError(f"unexpected keys in state_dict: {missing}")

    def _resolve_buffer(self, dotted: str) -> Tuple[Optional["Module"], str]:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            if part in module._modules:
                module = module._modules[part]
            else:
                return None, ""
        return (module, parts[-1]) if parts[-1] in module._buffers else (None, "")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def apply(self, fn) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """List container whose elements are registered submodules."""

    def __init__(self, modules=()):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
