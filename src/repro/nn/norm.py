"""Normalisation layers, plus the eval-time folding helpers used to bake
batch normalisation into deployment artifacts.

At inference time (``track_running_stats`` and eval mode) batch
normalisation is a fixed per-channel affine map, exposed as plain NumPy
arrays in two forms: :meth:`_BatchNorm.frozen_stats` returns the raw
``(mean, denom)`` operands — what the frozen engine's
:class:`~repro.engine.model_plan.ModelPlan` applies, since replaying the
module's own operation order keeps float64 artifacts bit-exact — and
:meth:`_BatchNorm.fold_to_affine` collapses everything into a single
``(scale, shift)`` pair for consumers that prefer one multiply-add over
bit-exactness.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .module import Module
from .tensor import Parameter, Tensor, no_grad

__all__ = ["BatchNorm2d", "BatchNorm1d"]


class _BatchNorm(Module):
    """Shared implementation for 1-D / 2-D batch normalisation."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True, track_running_stats: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        self.track_running_stats = track_running_stats
        if affine:
            self.weight = Parameter(np.ones(num_features), name="weight")
            self.bias = Parameter(np.zeros(num_features), name="bias")
        else:
            self.weight = None
            self.bias = None
        if track_running_stats:
            self.register_buffer("running_mean", np.zeros(num_features))
            self.register_buffer("running_var", np.ones(num_features))
            self.register_buffer("num_batches_tracked", np.zeros(1))

    def _reduce_axes(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def _param_shape(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes(x)
        shape = self._param_shape(x)

        if self.training or not self.track_running_stats:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            if self.track_running_stats:
                with no_grad():
                    m = self.momentum
                    batch_mean = mean.data.reshape(self.num_features)
                    # unbiased variance estimate for the running buffer
                    count = x.size / self.num_features
                    unbias = count / max(count - 1.0, 1.0)
                    batch_var = var.data.reshape(self.num_features) * unbias
                    self.running_mean[...] = (1 - m) * self.running_mean + m * batch_mean
                    self.running_var[...] = (1 - m) * self.running_var + m * batch_var
                    self.num_batches_tracked[...] = self.num_batches_tracked + 1
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))

        x_hat = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            x_hat = x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)
        return x_hat

    # ------------------------------------------------------------------ #
    # eval-time folding (deployment artifacts)
    # ------------------------------------------------------------------ #
    def frozen_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(running_mean, sqrt(running_var + eps))`` as ``(C,)`` arrays.

        These are exactly the operands of the eval-mode forward
        (``(x - mean) / denom``), so an executor applying them with the same
        operation order reproduces this module bit for bit.  Raises
        ``ValueError`` when the layer tracks no running statistics — then
        eval-mode BN depends on the batch and cannot be frozen.
        """
        if not self.track_running_stats:
            raise ValueError(
                "cannot freeze a BatchNorm layer with track_running_stats=False: "
                "its eval forward depends on the batch statistics")
        return (self.running_mean.copy(),
                np.sqrt(self.running_var + self.eps))

    def fold_to_affine(self) -> Tuple[np.ndarray, np.ndarray]:
        """Collapse the eval-mode normalisation into ``(scale, shift)``.

        Returns per-channel arrays such that ``y = x * scale + shift``
        reproduces the eval forward up to floating-point reassociation
        (~1 ulp; use :meth:`frozen_stats` when bit-exactness matters).
        """
        mean, denom = self.frozen_stats()
        inv = 1.0 / denom
        if self.affine:
            scale = self.weight.data * inv
            shift = self.bias.data - mean * scale
        else:
            scale = inv
            shift = -mean * inv
        return scale, shift

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(N, C, H, W)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple:
        return (0, 2, 3)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(N, C)`` or ``(N, C, L)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple:
        return (0,) if x.ndim == 2 else (0, 2)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features) if x.ndim == 2 else (1, self.num_features, 1)
