"""Normalisation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module
from .tensor import Parameter, Tensor, no_grad

__all__ = ["BatchNorm2d", "BatchNorm1d"]


class _BatchNorm(Module):
    """Shared implementation for 1-D / 2-D batch normalisation."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True, track_running_stats: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        self.track_running_stats = track_running_stats
        if affine:
            self.weight = Parameter(np.ones(num_features), name="weight")
            self.bias = Parameter(np.zeros(num_features), name="bias")
        else:
            self.weight = None
            self.bias = None
        if track_running_stats:
            self.register_buffer("running_mean", np.zeros(num_features))
            self.register_buffer("running_var", np.ones(num_features))
            self.register_buffer("num_batches_tracked", np.zeros(1))

    def _reduce_axes(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def _param_shape(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes(x)
        shape = self._param_shape(x)

        if self.training or not self.track_running_stats:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            if self.track_running_stats:
                with no_grad():
                    m = self.momentum
                    batch_mean = mean.data.reshape(self.num_features)
                    # unbiased variance estimate for the running buffer
                    count = x.size / self.num_features
                    unbias = count / max(count - 1.0, 1.0)
                    batch_var = var.data.reshape(self.num_features) * unbias
                    self.running_mean[...] = (1 - m) * self.running_mean + m * batch_mean
                    self.running_var[...] = (1 - m) * self.running_var + m * batch_var
                    self.num_batches_tracked[...] = self.num_batches_tracked + 1
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))

        x_hat = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            x_hat = x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)
        return x_hat

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(N, C, H, W)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple:
        return (0, 2, 3)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(N, C)`` or ``(N, C, L)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple:
        return (0,) if x.ndim == 2 else (0, 2)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features) if x.ndim == 2 else (1, self.num_features, 1)
