"""Learning-rate schedules used by the QAT training recipes."""

from __future__ import annotations

import math
from typing import List, Sequence

from .optim import Optimizer

__all__ = ["LRScheduler", "CosineAnnealingLR", "StepLR", "MultiStepLR", "WarmupCosineLR"]


class LRScheduler:
    """Base class: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.param_groups[0]["lr"]
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.set_lr(lr)
        return lr

    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(int(t_max), 1)
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = max(int(step_size), 1)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class MultiStepLR(LRScheduler):
    """Multiply the LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones: List[int] = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class WarmupCosineLR(LRScheduler):
    """Linear warm-up followed by cosine decay."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, t_max: int,
                 eta_min: float = 0.0):
        super().__init__(optimizer)
        self.warmup_epochs = max(int(warmup_epochs), 0)
        self.t_max = max(int(t_max), 1)
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / max(self.warmup_epochs, 1)
        progress = (epoch - self.warmup_epochs) / max(self.t_max - self.warmup_epochs, 1)
        progress = min(progress, 1.0)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
