"""``repro.models`` — network architectures used by the evaluation."""

from .blocks import BasicBlock, LayerFactory, conv_bn_relu
from .registry import MODEL_REGISTRY, available_models, build_model
from .resnet import ResNet, cifar_resnet, imagenet_resnet, resnet8, resnet18, resnet20
from .simple import MLP, SimpleCNN, TinyCNN

__all__ = [
    "LayerFactory", "BasicBlock", "conv_bn_relu",
    "ResNet", "resnet20", "resnet18", "resnet8", "cifar_resnet", "imagenet_resnet",
    "SimpleCNN", "TinyCNN", "MLP",
    "MODEL_REGISTRY", "build_model", "available_models",
]
