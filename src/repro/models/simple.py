"""Small CNN / MLP models for unit tests and quick experiments.

These models share the :class:`~repro.models.blocks.LayerFactory` mechanism of
the ResNets, so they exercise the exact same CIM layers with far less compute.
The property-based tests and several benchmark sanity checks use them.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..nn.layers import Flatten, GlobalAvgPool2d, MaxPool2d, ReLU
from ..nn.module import Module, Sequential
from ..nn.norm import BatchNorm2d
from ..nn.tensor import Tensor
from .blocks import LayerFactory

__all__ = ["SimpleCNN", "TinyCNN", "MLP"]


class SimpleCNN(Module):
    """Three-stage CNN: (conv-bn-relu) x 3 with stride-2 downsampling + linear head."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 channels: Sequence[int] = (16, 32, 64),
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        factory = LayerFactory(scheme=scheme, cim_config=cim_config, rng=rng)
        self.scheme = scheme
        layers = []
        prev = in_channels
        for index, width in enumerate(channels):
            stride = 1 if index == 0 else 2
            layers += [
                factory.conv(prev, width, 3, stride=stride, padding=1, bias=False),
                BatchNorm2d(width),
                ReLU(),
            ]
            prev = width
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.fc = factory.linear(prev, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        """Feature stages -> global average pool -> classifier head."""
        out = self.features(x)
        out = self.pool(out)
        return self.fc(out)

    def export_graph(self, builder, node: int) -> int:
        """Graph-capture hook (:mod:`repro.engine.model_plan`): features -> pool -> fc."""
        out = builder.emit(self.features, node, name="features")
        out = builder.emit(self.pool, out, name="pool")
        return builder.emit(self.fc, out, name="fc")


class TinyCNN(Module):
    """Two-layer CNN used by the fastest unit tests."""

    def __init__(self, num_classes: int = 4, in_channels: int = 3, width: int = 8,
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        factory = LayerFactory(scheme=scheme, cim_config=cim_config, rng=rng)
        self.scheme = scheme
        self.features = Sequential(
            factory.conv(in_channels, width, 3, stride=1, padding=1, bias=False),
            BatchNorm2d(width),
            ReLU(),
            factory.conv(width, width * 2, 3, stride=2, padding=1, bias=False),
            BatchNorm2d(width * 2),
            ReLU(),
        )
        self.pool = GlobalAvgPool2d()
        self.fc = factory.linear(width * 2, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        """Feature extractor -> global average pool -> classifier head."""
        return self.fc(self.pool(self.features(x)))

    def export_graph(self, builder, node: int) -> int:
        """Graph-capture hook (:mod:`repro.engine.model_plan`): features -> pool -> fc."""
        out = builder.emit(self.features, node, name="features")
        out = builder.emit(self.pool, out, name="pool")
        return builder.emit(self.fc, out, name="fc")


class MLP(Module):
    """Fully-connected network; exercises :class:`CIMLinear` end to end."""

    def __init__(self, in_features: int, num_classes: int,
                 hidden: Sequence[int] = (64,),
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        factory = LayerFactory(scheme=scheme, cim_config=cim_config, rng=rng)
        self.scheme = scheme
        layers = []
        prev = in_features
        for width in hidden:
            layers += [factory.linear(prev, width), ReLU()]
            prev = width
        layers.append(factory.linear(prev, num_classes))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        """Flatten non-batch dimensions, then run the linear stack."""
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)

    def export_graph(self, builder, node: int) -> int:
        """Graph-capture hook (:mod:`repro.engine.model_plan`): flatten -> net.

        The ``flatten`` node reproduces the conditional reshape of
        :meth:`forward` (a 2-D input reshapes to itself, so emitting it
        unconditionally is exact).
        """
        out = builder.add_op("flatten", [node], name="flatten")
        return builder.emit(self.net, out, name="net")
