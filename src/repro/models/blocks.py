"""Building blocks shared by the ResNet models.

Every block takes a :class:`LayerFactory`, which decides whether convolutions
and linear layers are built as plain full-precision layers or as CIM-quantized
layers under a given :class:`~repro.cim.config.QuantScheme`.  This is how the
same architecture definition serves both the full-precision baselines (dashed
lines in Fig. 7) and every quantized scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..core.cim_conv import CIMConv2d
from ..core.cim_linear import CIMLinear
from ..nn.layers import Conv2d, Identity, Linear, ReLU
from ..nn.module import Module, Sequential
from ..nn.norm import BatchNorm2d
from ..nn.tensor import Tensor

__all__ = ["LayerFactory", "BasicBlock", "conv_bn_relu"]


@dataclass
class LayerFactory:
    """Creates convolution / linear layers, optionally CIM-quantized.

    ``scheme=None`` builds ordinary full-precision layers.  ``first_layer``
    state tracks whether the next convolution is the model stem, whose input
    activations are conventionally left unquantized.
    """

    scheme: Optional[QuantScheme] = None
    cim_config: Optional[CIMConfig] = None
    quantize_first_act: bool = False
    rng: Optional[np.random.Generator] = None
    _first_conv_built: bool = False

    @property
    def is_quantized(self) -> bool:
        """True when the factory builds CIM-quantized layers."""
        return self.scheme is not None

    def conv(self, in_channels: int, out_channels: int, kernel_size: int,
             stride: int = 1, padding: int = 0, bias: bool = False) -> Module:
        """Build a convolution: plain :class:`Conv2d` or :class:`CIMConv2d`."""
        if self.scheme is None:
            return Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                          padding=padding, bias=bias, rng=self.rng)
        quantize_input = True
        if not self._first_conv_built and not self.quantize_first_act:
            quantize_input = False
        self._first_conv_built = True
        return CIMConv2d(in_channels, out_channels, kernel_size, stride=stride,
                         padding=padding, bias=bias, scheme=self.scheme,
                         cim_config=self.cim_config or CIMConfig(),
                         quantize_input=quantize_input, rng=self.rng)

    def linear(self, in_features: int, out_features: int, bias: bool = True) -> Module:
        """Build a linear layer: plain :class:`Linear` or :class:`CIMLinear`."""
        if self.scheme is None:
            return Linear(in_features, out_features, bias=bias, rng=self.rng)
        return CIMLinear(in_features, out_features, bias=bias, scheme=self.scheme,
                         cim_config=self.cim_config or CIMConfig(), rng=self.rng)


def conv_bn_relu(factory: LayerFactory, in_channels: int, out_channels: int,
                 kernel_size: int, stride: int = 1, padding: int = 0) -> Sequential:
    """Conv -> BatchNorm -> ReLU, the standard stem composition."""
    return Sequential(
        factory.conv(in_channels, out_channels, kernel_size, stride=stride,
                     padding=padding, bias=False),
        BatchNorm2d(out_channels),
        ReLU(),
    )


class BasicBlock(Module):
    """ResNet basic block: two 3x3 convolutions with an identity shortcut."""

    expansion = 1

    def __init__(self, factory: LayerFactory, in_channels: int, out_channels: int,
                 stride: int = 1):
        super().__init__()
        self.conv1 = factory.conv(in_channels, out_channels, 3, stride=stride,
                                  padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = factory.conv(out_channels, out_channels, 3, stride=1,
                                  padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)

        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                factory.conv(in_channels, out_channels, 1, stride=stride, bias=False),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        """Residual forward: ``relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))``."""
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)

    def export_graph(self, builder, node: int) -> int:
        """Graph-capture hook (:mod:`repro.engine.model_plan`).

        Containers and leaf modules capture automatically; the residual add
        is the one piece of structure only the block itself knows, so the
        hook mirrors :meth:`forward` — main branch, shortcut branch, ``add``,
        final ``relu`` — and must be kept in sync with it.
        """
        out = builder.emit(self.conv1, node, name="conv1")
        out = builder.emit(self.bn1, out, name="bn1")
        out = builder.emit(self.relu, out, name="relu")
        out = builder.emit(self.conv2, out, name="conv2")
        out = builder.emit(self.bn2, out, name="bn2")
        short = builder.emit(self.shortcut, node, name="shortcut")
        prefix = builder.scope_name()
        out = builder.add_op("add", [out, short],
                             name=f"{prefix}.add" if prefix else "add")
        return builder.add_op("relu", [out],
                              name=f"{prefix}.relu_out" if prefix else "relu_out")
