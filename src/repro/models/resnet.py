"""ResNet architectures used in the paper's evaluation.

* :func:`resnet20` — the CIFAR-10 / CIFAR-100 model of Table II
  (3 stages x 3 basic blocks, 16/32/64 channels).
* :func:`resnet18` — the ImageNet model of Table II / Table III
  (7x7 stem, 4 stages x 2 basic blocks, 64..512 channels).
* Reduced variants (``resnet8``, ``width_multiplier < 1``) used by the
  benchmark harness so every quantization scheme can be trained end-to-end on
  CPU within the reproduction's compute budget; the architecture topology is
  unchanged, only depth / width shrink.

Every constructor accepts a :class:`~repro.cim.config.QuantScheme`; passing
``None`` builds the full-precision baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..nn.layers import Flatten, GlobalAvgPool2d, MaxPool2d, ReLU
from ..nn.module import Module, ModuleList, Sequential
from ..nn.norm import BatchNorm2d
from ..nn.tensor import Tensor
from .blocks import BasicBlock, LayerFactory

__all__ = ["ResNet", "resnet20", "resnet18", "resnet8", "cifar_resnet", "imagenet_resnet"]


class ResNet(Module):
    """Generic ResNet with basic blocks.

    Parameters
    ----------
    stage_blocks:
        Number of basic blocks per stage.
    stage_channels:
        Output channels of each stage.
    num_classes:
        Classifier width.
    stem:
        ``"cifar"`` — 3x3 stride-1 stem (ResNet-20 style);
        ``"imagenet"`` — 7x7 stride-2 stem followed by 3x3 max-pool
        (ResNet-18 style).
    scheme / cim_config:
        Quantization scheme; ``None`` builds the full-precision model.
    """

    def __init__(self, stage_blocks: Sequence[int], stage_channels: Sequence[int],
                 num_classes: int = 10, in_channels: int = 3, stem: str = "cifar",
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None,
                 seed: int = 0):
        super().__init__()
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")
        if stem not in ("cifar", "imagenet"):
            raise ValueError("stem must be 'cifar' or 'imagenet'")
        self.scheme = scheme
        self.cim_config = cim_config
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        factory = LayerFactory(scheme=scheme, cim_config=cim_config, rng=rng)

        first_width = stage_channels[0]
        if stem == "cifar":
            self.stem = Sequential(
                factory.conv(in_channels, first_width, 3, stride=1, padding=1, bias=False),
                BatchNorm2d(first_width),
                ReLU(),
            )
        else:
            self.stem = Sequential(
                factory.conv(in_channels, first_width, 7, stride=2, padding=3, bias=False),
                BatchNorm2d(first_width),
                ReLU(),
                MaxPool2d(3, stride=2, padding=1),
            )

        stages = []
        in_ch = first_width
        for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
            stride = 1 if stage_index == 0 else 2
            stage_layers = []
            for block_index in range(blocks):
                block_stride = stride if block_index == 0 else 1
                stage_layers.append(BasicBlock(factory, in_ch, channels, stride=block_stride))
                in_ch = channels
            stages.append(Sequential(*stage_layers))
        self.stages = ModuleList(stages)

        self.pool = GlobalAvgPool2d()
        self.fc = factory.linear(in_ch, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        """Stem -> stages -> global average pool -> classifier head."""
        out = self.stem(x)
        for stage in self.stages:
            out = stage(out)
        out = self.pool(out)
        return self.fc(out)

    def export_graph(self, builder, node: int) -> int:
        """Graph-capture hook: replay :meth:`forward` on the plan builder.

        ``ModuleList`` is not callable, so the stage loop is the structure
        this hook contributes; everything inside each stage captures through
        the ``Sequential`` / :class:`~repro.models.blocks.BasicBlock` hooks.
        """
        out = builder.emit(self.stem, node, name="stem")
        for index, stage in enumerate(self.stages):
            out = builder.emit(stage, out, name=f"stages.{index}")
        out = builder.emit(self.pool, out, name="pool")
        return builder.emit(self.fc, out, name="fc")

    def describe(self) -> str:
        """One-line summary: block structure, classes, scheme, parameter count."""
        kind = "FP32" if self.scheme is None else self.scheme.label()
        return (f"ResNet(blocks={[len(s) for s in self.stages]}, "
                f"classes={self.num_classes}, scheme={kind}, "
                f"params={self.num_parameters()})")


def _scaled(channels: Sequence[int], width_multiplier: float) -> List[int]:
    return [max(4, int(round(c * width_multiplier))) for c in channels]


def resnet20(num_classes: int = 10, scheme: Optional[QuantScheme] = None,
             cim_config: Optional[CIMConfig] = None, width_multiplier: float = 1.0,
             seed: int = 0) -> ResNet:
    """ResNet-20 (CIFAR): 3 stages x 3 basic blocks, 16/32/64 channels."""
    return ResNet([3, 3, 3], _scaled([16, 32, 64], width_multiplier),
                  num_classes=num_classes, stem="cifar", scheme=scheme,
                  cim_config=cim_config, seed=seed)


def resnet18(num_classes: int = 1000, scheme: Optional[QuantScheme] = None,
             cim_config: Optional[CIMConfig] = None, width_multiplier: float = 1.0,
             seed: int = 0) -> ResNet:
    """ResNet-18 (ImageNet): 7x7 stem + 4 stages x 2 basic blocks, 64..512 channels."""
    return ResNet([2, 2, 2, 2], _scaled([64, 128, 256, 512], width_multiplier),
                  num_classes=num_classes, stem="imagenet", scheme=scheme,
                  cim_config=cim_config, seed=seed)


def resnet8(num_classes: int = 10, scheme: Optional[QuantScheme] = None,
            cim_config: Optional[CIMConfig] = None, width_multiplier: float = 1.0,
            seed: int = 0) -> ResNet:
    """ResNet-8: one basic block per stage; the CI-scale stand-in for ResNet-20."""
    return ResNet([1, 1, 1], _scaled([16, 32, 64], width_multiplier),
                  num_classes=num_classes, stem="cifar", scheme=scheme,
                  cim_config=cim_config, seed=seed)


def cifar_resnet(depth: int = 20, **kwargs) -> ResNet:
    """CIFAR ResNet of a given depth (depth = 6n + 2)."""
    if (depth - 2) % 6 != 0:
        raise ValueError("CIFAR ResNet depth must satisfy depth = 6n + 2")
    blocks_per_stage = (depth - 2) // 6
    width = kwargs.pop("width_multiplier", 1.0)
    return ResNet([blocks_per_stage] * 3, _scaled([16, 32, 64], width),
                  stem="cifar", **kwargs)


def imagenet_resnet(depth: int = 18, **kwargs) -> ResNet:
    """ImageNet ResNet (only the basic-block depths 18 and 34 are supported)."""
    configs = {18: [2, 2, 2, 2], 34: [3, 4, 6, 3]}
    if depth not in configs:
        raise ValueError("supported ImageNet ResNet depths: 18, 34")
    width = kwargs.pop("width_multiplier", 1.0)
    return ResNet(configs[depth], _scaled([64, 128, 256, 512], width),
                  stem="imagenet", **kwargs)
