"""Model registry mapping experiment names to constructors.

The experiment configuration files (Table II) refer to models by name; this
registry resolves those names, including the reduced variants used for the
CPU-scale reproduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cim.config import CIMConfig, QuantScheme
from ..nn.module import Module
from .resnet import resnet8, resnet18, resnet20
from .simple import MLP, SimpleCNN, TinyCNN

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

ModelBuilder = Callable[..., Module]

MODEL_REGISTRY: Dict[str, ModelBuilder] = {
    "resnet20": resnet20,
    "resnet18": resnet18,
    "resnet8": resnet8,
    "simple_cnn": SimpleCNN,
    "tiny_cnn": TinyCNN,
    "mlp": MLP,
}


def available_models() -> list:
    """Sorted names of every registered model constructor."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, num_classes: int, scheme: Optional[QuantScheme] = None,
                cim_config: Optional[CIMConfig] = None, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    builder = MODEL_REGISTRY[name]
    return builder(num_classes=num_classes, scheme=scheme, cim_config=cim_config, **kwargs)
