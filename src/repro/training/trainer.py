"""One-stage quantization-aware training (the paper's training recipe).

The paper trains weight, activation and partial-sum LSQ scale factors jointly
from scratch in a single stage (Sec. III-D).  :class:`QATTrainer` implements
that loop on top of the :mod:`repro.nn` substrate: SGD with momentum, cosine
learning-rate decay, optional separate parameter group for the LSQ scales
(smaller LR, no weight decay, the standard LSQ recipe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..core.convert import scale_parameters, weight_parameters
from ..data.loaders import DataLoader
from ..nn.losses import CrossEntropyLoss
from ..nn.lr_scheduler import CosineAnnealingLR, LRScheduler
from ..nn.module import Module
from ..nn.optim import SGD, Optimizer
from ..nn.tensor import Tensor
from .metrics import Stopwatch, TrainingHistory, evaluate

__all__ = ["TrainerConfig", "QATTrainer", "train_model"]


@dataclass
class TrainerConfig:
    """Hyper-parameters of a QAT run."""

    epochs: int = 10
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    scale_lr_factor: float = 0.1      # LSQ scale factors train with a smaller LR
    label_smoothing: float = 0.0
    cosine_schedule: bool = True
    log_every: int = 0                # 0 disables progress printing
    seed: int = 0


class QATTrainer:
    """Single-stage QAT trainer.

    Parameters
    ----------
    model:
        A full-precision or CIM-quantized model built from :mod:`repro.nn`.
    train / test:
        Data loaders.
    config:
        :class:`TrainerConfig` hyper-parameters.
    epoch_callback:
        Optional callable invoked as ``callback(trainer, epoch)`` after every
        epoch; used by the two-stage trainer and the analysis drivers.
    """

    def __init__(self, model: Module, train: DataLoader, test: DataLoader,
                 config: Optional[TrainerConfig] = None,
                 epoch_callback: Optional[Callable[["QATTrainer", int], None]] = None):
        self.model = model
        self.train_loader = train
        self.test_loader = test
        self.config = config or TrainerConfig()
        self.epoch_callback = epoch_callback
        self.history = TrainingHistory()
        self.criterion = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.optimizer = self._build_optimizer()
        self.scheduler: Optional[LRScheduler] = (
            CosineAnnealingLR(self.optimizer, t_max=self.config.epochs)
            if self.config.cosine_schedule else None)

    # ------------------------------------------------------------------ #
    def _build_optimizer(self) -> Optimizer:
        # Every group carries its own lr / weight_decay: the per-group values
        # are the single source of truth, and nothing is duplicated into the
        # SGD defaults where it could silently leak into a group that forgot
        # to set its own (the LSQ scale group must never see weight decay).
        weights = weight_parameters(self.model)
        scales = scale_parameters(self.model)
        groups = [{"params": weights, "lr": self.config.lr,
                   "weight_decay": self.config.weight_decay}]
        if scales:
            groups.append({"params": scales,
                           "lr": self.config.lr * self.config.scale_lr_factor,
                           "weight_decay": 0.0})
        return SGD(groups, momentum=self.config.momentum)

    # ------------------------------------------------------------------ #
    def train_epoch(self) -> Dict[str, float]:
        """Run one epoch over the training loader; returns loss / accuracy."""
        self.model.train()
        total_loss = 0.0
        correct = 0
        seen = 0
        for images, labels in self.train_loader:
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            loss = self.criterion(logits, labels)
            loss.backward()
            self.optimizer.step()

            batch = labels.shape[0]
            total_loss += loss.item() * batch
            correct += int(np.sum(np.argmax(logits.data, axis=-1) == labels))
            seen += batch
        return {"loss": total_loss / max(seen, 1), "accuracy": correct / max(seen, 1)}

    def fit(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Train for ``epochs`` (default: the configured number) and return history."""
        epochs = epochs if epochs is not None else self.config.epochs
        for epoch in range(epochs):
            with Stopwatch() as timer:
                stats = self.train_epoch()
                test_stats = evaluate(self.model, self.test_loader)
            lr = self.optimizer.lr
            if self.scheduler is not None:
                self.scheduler.step()
            self.history.train_loss.append(stats["loss"])
            self.history.train_accuracy.append(stats["accuracy"])
            self.history.test_accuracy.append(test_stats["top1"])
            self.history.learning_rate.append(lr)
            self.history.epoch_seconds.append(timer.seconds)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                print(f"epoch {epoch + 1:3d}/{epochs}: loss {stats['loss']:.4f} "
                      f"train {stats['accuracy']:.3f} test {test_stats['top1']:.3f} "
                      f"lr {lr:.4f} ({timer.seconds:.1f}s)")
            if self.epoch_callback is not None:
                self.epoch_callback(self, epoch)
        return self.history

    def evaluate(self) -> Dict[str, float]:
        return evaluate(self.model, self.test_loader)


def train_model(model: Module, train: DataLoader, test: DataLoader,
                epochs: int = 10, lr: float = 0.05,
                **config_overrides) -> TrainingHistory:
    """Convenience wrapper: build a :class:`QATTrainer` and fit it."""
    config = TrainerConfig(epochs=epochs, lr=lr, **config_overrides)
    return QATTrainer(model, train, test, config).fit()
