"""Two-stage quantization-aware training (baseline of Saxena [8], [9]).

When weight and partial-sum granularities differ, prior works train in two
stages: stage 1 performs QAT of weights and activations with *full-precision
partial sums* (partial-sum quantization disabled); stage 2 enables partial-sum
quantization and continues training so the network adapts to the ADC error.
The paper argues (Sec. III-D, Fig. 9) that aligning the granularities makes a
single stage sufficient and cheaper; this module provides the two-stage
counterpart so that Fig. 9 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.convert import set_psum_quant_enabled
from ..data.loaders import DataLoader
from ..nn.module import Module
from .metrics import TrainingHistory
from .trainer import QATTrainer, TrainerConfig

__all__ = ["TwoStageConfig", "TwoStageQATTrainer", "train_two_stage"]


@dataclass
class TwoStageConfig:
    """Epoch budget of the two training stages.

    ``stage2_lr_factor`` shrinks the learning rate for the second stage, the
    usual fine-tuning recipe of the two-stage baselines.
    """

    stage1_epochs: int = 8
    stage2_epochs: int = 4
    stage2_lr_factor: float = 0.1

    @property
    def total_epochs(self) -> int:
        return self.stage1_epochs + self.stage2_epochs


class TwoStageQATTrainer:
    """Runs stage-1 QAT (no partial-sum quantization) then stage-2 fine-tuning."""

    def __init__(self, model: Module, train: DataLoader, test: DataLoader,
                 base_config: Optional[TrainerConfig] = None,
                 stages: Optional[TwoStageConfig] = None):
        self.model = model
        self.train_loader = train
        self.test_loader = test
        self.base_config = base_config or TrainerConfig()
        self.stages = stages or TwoStageConfig()
        self.history = TrainingHistory()

    def fit(self) -> TrainingHistory:
        stages = self.stages

        # ---- stage 1: weights/activations QAT, partial sums full precision
        set_psum_quant_enabled(self.model, False)
        stage1_cfg = TrainerConfig(**{**self.base_config.__dict__,
                                      "epochs": stages.stage1_epochs})
        stage1 = QATTrainer(self.model, self.train_loader, self.test_loader, stage1_cfg)
        history1 = stage1.fit()

        # ---- stage 2: enable partial-sum quantization, fine-tune
        set_psum_quant_enabled(self.model, True)
        stage2_cfg = TrainerConfig(**{**self.base_config.__dict__,
                                      "epochs": stages.stage2_epochs,
                                      "lr": self.base_config.lr * stages.stage2_lr_factor})
        stage2 = QATTrainer(self.model, self.train_loader, self.test_loader, stage2_cfg)
        history2 = stage2.fit()

        # ---- merge the two stage histories
        merged = self.history
        for source in (history1, history2):
            merged.train_loss.extend(source.train_loss)
            merged.train_accuracy.extend(source.train_accuracy)
            merged.test_accuracy.extend(source.test_accuracy)
            merged.learning_rate.extend(source.learning_rate)
            merged.epoch_seconds.extend(source.epoch_seconds)
        merged.stage_boundaries.append(stages.stage1_epochs)
        return merged


def train_two_stage(model: Module, train: DataLoader, test: DataLoader,
                    stage1_epochs: int = 8, stage2_epochs: int = 4,
                    **config_overrides) -> TrainingHistory:
    """Convenience wrapper for the two-stage baseline."""
    base = TrainerConfig(**config_overrides) if config_overrides else TrainerConfig()
    stages = TwoStageConfig(stage1_epochs=stage1_epochs, stage2_epochs=stage2_epochs)
    return TwoStageQATTrainer(model, train, test, base, stages).fit()
