"""Post-training quantization pipeline (baselines Kim [5] and Bai [6, 7]).

PTQ starts from a pretrained full-precision model, replaces its layers with
CIM layers (:func:`repro.core.convert.convert_to_cim`), then calibrates the
weight / activation / partial-sum scale factors from statistics collected on
a calibration set — no gradient-based adaptation of the network weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..core.cim_conv import CIMConv2d
from ..core.cim_linear import CIMLinear
from ..core.convert import cim_layers, convert_to_cim
from ..data.loaders import DataLoader
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..quant.lsq import lsq_init_scale
from ..quant.observers import MinMaxObserver, Observer, PercentileObserver

__all__ = ["PTQConfig", "calibrate_model", "ptq_quantize"]


@dataclass
class PTQConfig:
    """Calibration settings for post-training quantization."""

    calibration_batches: int = 4
    observer: str = "minmax"          # "minmax" or "percentile"
    percentile: float = 99.9

    def make_observer(self, bits: int, signed: bool, group_shape) -> Observer:
        if self.observer == "percentile":
            return PercentileObserver(bits, signed, group_shape, percentile=self.percentile)
        if self.observer == "minmax":
            return MinMaxObserver(bits, signed, group_shape)
        raise ValueError(f"unknown observer {self.observer!r}")


def _calibrate_weight_scales(layer) -> None:
    """Set weight scales from the (fixed) pretrained weights."""
    tiled = layer._tiled_weight().data
    group_shape = layer.weight_quant._broadcast_group_shape(tiled.shape)
    scale = lsq_init_scale(tiled, layer.weight_quant.qmax, group_shape,
                           valid_mask=layer._valid_rows_mask())
    layer.weight_quant.scale.data = scale.reshape(layer.weight_quant.scale_shape)
    layer.weight_quant.initialized[...] = 1.0
    layer.weight_quant.scale.requires_grad = False


def calibrate_model(model: Module, loader: DataLoader, config: Optional[PTQConfig] = None) -> Dict[str, Dict[str, float]]:
    """Calibrate every CIM layer of ``model`` on a few batches of ``loader``.

    Weight scales come from the weight statistics; activation and partial-sum
    scales come from observers fed by forward passes over the calibration
    batches.  Returns a per-layer report of the resulting scale magnitudes.
    """
    config = config or PTQConfig()
    layers = dict(cim_layers(model))

    # weight scales are data-independent
    for layer in layers.values():
        _calibrate_weight_scales(layer)

    from ..core.convert import attach_recorders, set_psum_quant_enabled
    from ..core.psum import PartialSumRecorder

    def run_calibration_batches() -> None:
        model.eval()
        with no_grad():
            for index, (images, _labels) in enumerate(loader):
                if index >= config.calibration_batches:
                    break
                model(Tensor(images))
        model.train()

    # ---- pass 1: observe layer inputs and fix the activation scales -------
    # The activation scales must be final before the partial sums are
    # recorded, otherwise the partial-sum scales would be calibrated against
    # integer activations computed with a different (provisional) scale.
    act_observers: Dict[str, Observer] = {}
    originals = {}
    for name, layer in layers.items():
        if layer.act_quant is not None:
            act_observers[name] = config.make_observer(
                layer.act_quant.bits, False, layer.act_quant.scale_shape)

        # capture layer inputs through lightweight monkey-patched forwards
        def make_hook(layer_name, original_forward, layer_ref):
            def hooked(x):
                if layer_ref.act_quant is not None:
                    act_observers[layer_name].observe(np.maximum(x.data, 0.0))
                return original_forward(x)
            return hooked

        originals[name] = layer.forward
        layer.forward = make_hook(name, layer.forward, layer)

    set_psum_quant_enabled(model, False)
    run_calibration_batches()

    for name, layer in layers.items():
        layer.forward = originals[name]
        if layer.act_quant is not None and act_observers[name].num_observed:
            scale = act_observers[name].compute_scale()
            layer.act_quant.scale.data = scale.reshape(layer.act_quant.scale_shape)
            layer.act_quant.initialized[...] = 1.0
            layer.act_quant.scale.requires_grad = False

    # ---- pass 2: record unquantized partial sums under the final scales ---
    recorder = PartialSumRecorder(samples_per_column=2048)
    attach_recorders(model, recorder)
    run_calibration_batches()
    for name, layer in layers.items():
        layer.attach_recorder(None)

    report: Dict[str, Dict[str, float]] = {}
    for name, layer in layers.items():
        # partial-sum scales from the recorded (per-column) partial sums
        recorded = recorder.column_values(name) if name in recorder.layers() else []
        if recorded:
            n_splits = layer.n_splits
            n_arrays = layer.n_arrays
            oc = layer.out_features if isinstance(layer, CIMLinear) else layer.out_channels
            maxima = np.array([np.max(np.abs(col)) if col.size else 1.0 for col in recorded])
            maxima = maxima.reshape(n_splits, n_arrays, oc)
            qmax = max(layer.psum_quant.qmax, 1)
            per_column = np.maximum(maxima / qmax, 1e-8)
            shape = layer.psum_quant.scale_shape
            # reduce to the scheme's granularity (max over grouped axes)
            target = per_column.reshape(n_splits, n_arrays, 1, oc) if len(shape) == 4 \
                else per_column.reshape(n_splits, n_arrays, 1, 1, oc)
            ones_axes = tuple(i for i, d in enumerate(shape) if d == 1)
            reduced = target.max(axis=ones_axes, keepdims=True) if ones_axes else target
            layer.psum_quant.scale.data = np.broadcast_to(reduced, shape).copy()
            layer.psum_quant.initialized[...] = 1.0
            layer.psum_quant.scale.requires_grad = False

        report[name] = {
            "weight_scale_mean": float(np.mean(layer.weight_quant.scale.data)),
            "act_scale_mean": float(np.mean(layer.act_quant.scale.data))
            if layer.act_quant is not None else float("nan"),
            "psum_scale_mean": float(np.mean(layer.psum_quant.scale.data)),
        }

    # re-enable partial-sum quantization per the scheme
    set_psum_quant_enabled(model, True)
    return report


def ptq_quantize(fp_model: Module, scheme: QuantScheme, cim_config: CIMConfig,
                 calibration: DataLoader, config: Optional[PTQConfig] = None) -> Module:
    """Full PTQ pipeline: convert a pretrained FP model and calibrate it."""
    model = convert_to_cim(fp_model, scheme, cim_config)
    calibrate_model(model, calibration, config)
    return model
