"""Accuracy and timing metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.loaders import DataLoader
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["top1_accuracy", "topk_accuracy", "evaluate", "TrainingHistory", "Stopwatch"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose arg-max prediction matches the label."""
    predictions = np.argmax(logits, axis=-1)
    return float(np.mean(predictions == labels))


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is within the top-``k`` predictions."""
    k = min(k, logits.shape[-1])
    topk = np.argsort(-logits, axis=-1)[:, :k]
    return float(np.mean(np.any(topk == labels[:, None], axis=-1)))


def evaluate(model: Module, loader: DataLoader, k: int = 5) -> Dict[str, float]:
    """Evaluate ``model`` on ``loader``; returns top-1 / top-k accuracy and loss-free stats."""
    model.eval()
    correct1 = correctk = total = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images)).data
            predictions = np.argmax(logits, axis=-1)
            correct1 += int(np.sum(predictions == labels))
            kk = min(k, logits.shape[-1])
            topk = np.argsort(-logits, axis=-1)[:, :kk]
            correctk += int(np.sum(np.any(topk == labels[:, None], axis=-1)))
            total += labels.shape[0]
    model.train()
    if total == 0:
        return {"top1": 0.0, "topk": 0.0, "samples": 0}
    return {"top1": correct1 / total, "topk": correctk / total, "samples": total}


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    stage_boundaries: List[int] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def epochs_to_reach(self, accuracy: float) -> Optional[int]:
        """First epoch (1-based) whose test accuracy reaches ``accuracy``, or None."""
        for index, value in enumerate(self.test_accuracy):
            if value >= accuracy:
                return index + 1
        return None

    def mark_stage_boundary(self) -> None:
        """Record that a new training stage starts after the current epoch."""
        self.stage_boundaries.append(self.epochs)

    def summary(self) -> Dict[str, float]:
        return {
            "epochs": self.epochs,
            "best_test_accuracy": self.best_test_accuracy,
            "final_test_accuracy": self.final_test_accuracy,
            "total_seconds": self.total_seconds,
        }


class Stopwatch:
    """Context manager measuring wall-clock time in seconds."""

    def __init__(self):
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
