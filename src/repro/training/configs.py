"""Experiment configurations (Table II of the paper) and their reduced variants.

Table II defines three benchmarks:

====================  ==========  ===========  ==========
Setting               CIFAR-10    CIFAR-100    ImageNet
====================  ==========  ===========  ==========
Model                 ResNet-20   ResNet-20    ResNet-18
Activation bits       3           4            3
Weight bits           3 (1b/cell) 4 (2b/cell)  3 (3b/cell)
Partial-sum bits      1 (binary)  3            2
Array size            128x128     128x128      256x256
Training              200 epochs  200 epochs   90 epochs
====================  ==========  ===========  ==========

``paper_experiment`` returns those full-scale configurations;
``reduced_experiment`` returns the CPU-scale counterparts used by the
benchmark harness (same bit widths, granularities, array geometry and
training *structure*, but a smaller model / dataset / epoch budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..cim.config import CIMConfig, QuantScheme
from .trainer import TrainerConfig

__all__ = ["ExperimentConfig", "PAPER_EXPERIMENTS", "paper_experiment",
           "reduced_experiment", "available_experiments"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one of the paper's benchmarks."""

    name: str
    dataset: str                  # "cifar10" | "cifar100" | "imagenet"
    model: str                    # key of repro.models.MODEL_REGISTRY
    num_classes: int
    weight_bits: int
    act_bits: int
    psum_bits: int
    cell_bits: int
    array_size: int
    epochs: int
    image_size: int
    width_multiplier: float = 1.0
    train_samples: int = 2048
    test_samples: int = 512
    batch_size: int = 64
    lr: float = 0.05

    # ------------------------------------------------------------------ #
    def cim_config(self, tiling: str = "kernel_preserving") -> CIMConfig:
        return CIMConfig(array_rows=self.array_size, array_cols=self.array_size,
                         cell_bits=self.cell_bits, adc_bits=self.psum_bits,
                         dac_bits=self.act_bits, tiling=tiling)

    def scheme(self, weight_granularity="column", psum_granularity="column",
               quantize_psum: bool = True, **overrides) -> QuantScheme:
        return QuantScheme(
            name=f"{self.name}:{weight_granularity}/{psum_granularity}",
            weight_bits=self.weight_bits, act_bits=self.act_bits,
            psum_bits=self.psum_bits,
            weight_granularity=weight_granularity, psum_granularity=psum_granularity,
            quantize_psum=quantize_psum, **overrides)

    def trainer_config(self, **overrides) -> TrainerConfig:
        cfg = TrainerConfig(epochs=self.epochs, lr=self.lr)
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg

    def reduced(self, *, image_size: Optional[int] = None, epochs: Optional[int] = None,
                width_multiplier: Optional[float] = None, model: Optional[str] = None,
                train_samples: Optional[int] = None, test_samples: Optional[int] = None,
                array_size: Optional[int] = None, batch_size: Optional[int] = None,
                num_classes: Optional[int] = None) -> "ExperimentConfig":
        """Return a scaled-down copy for CPU execution."""
        return replace(
            self,
            name=self.name + "-reduced",
            image_size=image_size if image_size is not None else self.image_size,
            epochs=epochs if epochs is not None else self.epochs,
            width_multiplier=width_multiplier if width_multiplier is not None else self.width_multiplier,
            model=model if model is not None else self.model,
            train_samples=train_samples if train_samples is not None else self.train_samples,
            test_samples=test_samples if test_samples is not None else self.test_samples,
            array_size=array_size if array_size is not None else self.array_size,
            batch_size=batch_size if batch_size is not None else self.batch_size,
            num_classes=num_classes if num_classes is not None else self.num_classes,
        )


#: Table II, full scale.
PAPER_EXPERIMENTS: Dict[str, ExperimentConfig] = {
    "cifar10": ExperimentConfig(
        name="cifar10", dataset="cifar10", model="resnet20", num_classes=10,
        weight_bits=3, act_bits=3, psum_bits=1, cell_bits=1, array_size=128,
        epochs=200, image_size=32, train_samples=50000, test_samples=10000,
        batch_size=128, lr=0.1),
    "cifar100": ExperimentConfig(
        name="cifar100", dataset="cifar100", model="resnet20", num_classes=100,
        weight_bits=4, act_bits=4, psum_bits=3, cell_bits=2, array_size=128,
        epochs=200, image_size=32, train_samples=50000, test_samples=10000,
        batch_size=128, lr=0.1),
    "imagenet": ExperimentConfig(
        name="imagenet", dataset="imagenet", model="resnet18", num_classes=1000,
        weight_bits=3, act_bits=3, psum_bits=2, cell_bits=3, array_size=256,
        epochs=90, image_size=224, train_samples=1_281_167, test_samples=50_000,
        batch_size=256, lr=0.1),
}


def paper_experiment(name: str) -> ExperimentConfig:
    """Full-scale experiment configuration from Table II."""
    if name not in PAPER_EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(PAPER_EXPERIMENTS)}")
    return PAPER_EXPERIMENTS[name]


def reduced_experiment(name: str, *, tiny: bool = False) -> ExperimentConfig:
    """CPU-scale counterpart of a Table II experiment.

    ``tiny=True`` shrinks further (used by the test-suite); otherwise the
    defaults are sized so that a full scheme comparison completes on a few
    CPU cores in minutes.
    """
    base = paper_experiment(name)
    if name == "cifar10":
        reduced = base.reduced(image_size=12 if tiny else 16, epochs=2 if tiny else 6,
                               model="resnet8", width_multiplier=0.5,
                               train_samples=96 if tiny else 512,
                               test_samples=48 if tiny else 256,
                               array_size=32 if tiny else 64,
                               batch_size=16 if tiny else 32)
    elif name == "cifar100":
        reduced = base.reduced(image_size=12 if tiny else 16, epochs=2 if tiny else 6,
                               model="resnet8", width_multiplier=0.5,
                               train_samples=96 if tiny else 768,
                               test_samples=48 if tiny else 256,
                               array_size=32 if tiny else 64,
                               num_classes=10 if tiny else 20,
                               batch_size=16 if tiny else 32)
    else:  # imagenet
        reduced = base.reduced(image_size=16 if tiny else 24, epochs=2 if tiny else 5,
                               model="resnet8", width_multiplier=0.5,
                               train_samples=96 if tiny else 768,
                               test_samples=48 if tiny else 256,
                               array_size=64 if tiny else 128,
                               num_classes=10 if tiny else 20,
                               batch_size=16 if tiny else 32)
    return reduced


def available_experiments() -> list:
    return sorted(PAPER_EXPERIMENTS)
