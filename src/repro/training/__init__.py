"""``repro.training`` — QAT / PTQ training pipelines and experiment configs."""

from .configs import (PAPER_EXPERIMENTS, ExperimentConfig, available_experiments,
                      paper_experiment, reduced_experiment)
from .metrics import (Stopwatch, TrainingHistory, evaluate, top1_accuracy,
                      topk_accuracy)
from .ptq import PTQConfig, calibrate_model, ptq_quantize
from .trainer import QATTrainer, TrainerConfig, train_model
from .two_stage import TwoStageConfig, TwoStageQATTrainer, train_two_stage

__all__ = [
    "QATTrainer", "TrainerConfig", "train_model",
    "TwoStageQATTrainer", "TwoStageConfig", "train_two_stage",
    "PTQConfig", "calibrate_model", "ptq_quantize",
    "evaluate", "top1_accuracy", "topk_accuracy", "TrainingHistory", "Stopwatch",
    "ExperimentConfig", "PAPER_EXPERIMENTS", "paper_experiment", "reduced_experiment",
    "available_experiments",
]
