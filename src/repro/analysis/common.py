"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..data.loaders import DataLoader, test_loader, train_loader
from ..data.synthetic import DatasetSpec, SyntheticImageDataset
from ..data.transforms import standard_augmentation
from ..models.registry import build_model
from ..nn.module import Module
from ..training.configs import ExperimentConfig
from ..training.trainer import TrainerConfig

__all__ = ["build_dataset", "build_loaders", "build_experiment_model", "seed_everything"]

_DATASET_SEEDS = {"cifar10": 0, "cifar100": 1, "imagenet": 2}


def seed_everything(seed: int = 0) -> np.random.Generator:
    """Return a seeded generator; the library threads explicit RNGs everywhere."""
    return np.random.default_rng(seed)


def build_dataset(config: ExperimentConfig) -> SyntheticImageDataset:
    """Build the synthetic dataset matching an experiment configuration."""
    spec = DatasetSpec(
        name=f"synthetic-{config.dataset}",
        num_classes=config.num_classes,
        image_size=config.image_size,
        train_samples=config.train_samples,
        test_samples=config.test_samples,
        seed=_DATASET_SEEDS.get(config.dataset, 0),
    )
    return SyntheticImageDataset(spec)


def build_loaders(config: ExperimentConfig,
                  dataset: Optional[SyntheticImageDataset] = None,
                  augment: bool = True) -> Tuple[DataLoader, DataLoader]:
    """Return ``(train, test)`` loaders for an experiment configuration."""
    dataset = dataset or build_dataset(config)
    transform = standard_augmentation() if augment else None
    return (train_loader(dataset, batch_size=config.batch_size, transform=transform),
            test_loader(dataset, batch_size=max(config.batch_size, 64)))


def build_experiment_model(config: ExperimentConfig, scheme: Optional[QuantScheme],
                           cim_config: Optional[CIMConfig] = None,
                           seed: int = 0) -> Module:
    """Instantiate the experiment's model (FP when ``scheme`` is ``None``)."""
    cim_config = cim_config or config.cim_config()
    kwargs = {}
    if config.model in ("resnet20", "resnet18", "resnet8"):
        kwargs["width_multiplier"] = config.width_multiplier
        kwargs["seed"] = seed
    elif config.model in ("simple_cnn", "tiny_cnn"):
        kwargs["seed"] = seed
    return build_model(config.model, num_classes=config.num_classes,
                       scheme=scheme, cim_config=cim_config, **kwargs)
