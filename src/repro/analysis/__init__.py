"""``repro.analysis`` — experiment drivers reproducing the paper's tables and figures."""

from .common import build_dataset, build_experiment_model, build_loaders, seed_everything
from .distribution import (ColumnDistribution, compare_psum_distributions,
                           record_psum_distribution)
from .granularity import (SchemeResult, run_fp_baseline, run_granularity_grid,
                          run_related_work_comparison, run_scheme)
from .overhead import OverheadPoint, compute_overhead_table, run_overhead_sweep
from .qat_schedules import (FIG9_CASES, QATScheduleResult, relative_cost_to_reach,
                            run_qat_schedule_comparison)
from .report import format_series, format_table, markdown_table, print_table
from .robustness import (DEFAULT_SIGMAS, VariationPoint, evaluate_under_variation,
                         run_variation_sweep)

__all__ = [
    "build_dataset", "build_loaders", "build_experiment_model", "seed_everything",
    "SchemeResult", "run_scheme", "run_fp_baseline", "run_related_work_comparison",
    "run_granularity_grid",
    "ColumnDistribution", "record_psum_distribution", "compare_psum_distributions",
    "OverheadPoint", "compute_overhead_table", "run_overhead_sweep",
    "QATScheduleResult", "FIG9_CASES", "run_qat_schedule_comparison",
    "relative_cost_to_reach",
    "VariationPoint", "evaluate_under_variation", "run_variation_sweep", "DEFAULT_SIGMAS",
    "format_table", "print_table", "format_series", "markdown_table",
]
