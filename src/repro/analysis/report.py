"""Plain-text report formatting for the benchmark harness.

The benchmark scripts print the same rows / series the paper's tables and
figures report; these helpers render lists of dictionaries as aligned ASCII
tables so the output is readable in CI logs and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "print_table", "format_series", "markdown_table"]


def _stringify(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows (list of dicts) as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    table = [[_stringify(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]

    def fmt_row(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(columns))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt_row(r) for r in table)
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    print(format_table(rows, columns, title))


def markdown_table(rows: Sequence[Mapping[str, object]],
                   columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    rows = list(rows)
    if not rows:
        return "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    divider = "|" + "|".join("---" for _ in columns) + "|"
    body = ["| " + " | ".join(_stringify(row.get(col)) for col in columns) + " |"
            for row in rows]
    return "\n".join([header, divider] + body)


def format_series(name: str, xs: Iterable, ys: Iterable, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render an (x, y) series like a figure's data points."""
    pairs = [f"  {x_label}={_stringify(x)}  {y_label}={_stringify(y)}"
             for x, y in zip(xs, ys)]
    return "\n".join([f"series: {name}"] + pairs)
