"""Granularity-sweep experiment driver (Fig. 7, Table III).

Runs the same model / dataset / bit-width configuration under different
weight and partial-sum quantization granularities (and under the related-work
schemes of Table I), trains each with its prescribed procedure (one-stage
QAT, two-stage QAT, or PTQ from a pretrained FP model), and reports test
accuracy.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cim.config import QuantScheme
from ..core.schemes import SCHEME_REGISTRY, all_granularity_combinations, get_scheme
from ..data.loaders import DataLoader
from ..nn.module import Module
from ..training.configs import ExperimentConfig
from ..training.metrics import TrainingHistory, evaluate
from ..training.ptq import PTQConfig, ptq_quantize
from ..training.trainer import QATTrainer, TrainerConfig
from ..training.two_stage import TwoStageConfig, TwoStageQATTrainer
from .common import build_experiment_model, build_loaders

__all__ = ["SchemeResult", "run_scheme", "run_fp_baseline", "run_related_work_comparison",
           "run_granularity_grid"]


@dataclass
class SchemeResult:
    """Outcome of training one quantization scheme."""

    scheme_name: str
    weight_granularity: str
    psum_granularity: str
    training: str
    top1: float
    top5: float
    train_seconds: float
    epochs: int
    history: Optional[TrainingHistory] = None

    def row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme_name,
            "weight_granularity": self.weight_granularity,
            "psum_granularity": self.psum_granularity,
            "training": self.training,
            "top1_accuracy": round(self.top1, 4),
            "train_seconds": round(self.train_seconds, 2),
            "epochs": self.epochs,
        }


def run_fp_baseline(config: ExperimentConfig, train: DataLoader, test: DataLoader,
                    epochs: Optional[int] = None, seed: int = 0):
    """Train the full-precision reference model (top dashed line of Fig. 7).

    Returns ``(SchemeResult, trained model)``; the model is reused as the
    pretrained starting point of the PTQ baselines.
    """
    model = build_experiment_model(config, scheme=None, seed=seed)
    trainer = QATTrainer(model, train, test,
                         TrainerConfig(epochs=epochs or config.epochs, lr=config.lr,
                                       seed=seed))
    history = trainer.fit()
    stats = evaluate(model, test)
    return SchemeResult("full_precision", "none", "none", "fp32",
                        stats["top1"], stats["topk"], history.total_seconds,
                        history.epochs, history), model


def run_scheme(config: ExperimentConfig, scheme: QuantScheme, train: DataLoader,
               test: DataLoader, training: str = "qat",
               pretrained_fp: Optional[Module] = None,
               epochs: Optional[int] = None, seed: int = 0) -> SchemeResult:
    """Train / calibrate one quantization scheme and evaluate it.

    ``training`` selects the procedure: ``"qat"`` (single-stage, the paper's),
    ``"two-stage-qat"`` (Saxena baselines) or ``"ptq"`` (Kim / Bai baselines;
    requires ``pretrained_fp``).
    """
    epochs = epochs or config.epochs
    cim_config = config.cim_config()

    if training == "ptq":
        if pretrained_fp is None:
            raise ValueError("PTQ requires a pretrained full-precision model")
        model = ptq_quantize(copy.deepcopy(pretrained_fp), scheme, cim_config,
                             calibration=train, config=PTQConfig())
        stats = evaluate(model, test)
        return SchemeResult(scheme.name, scheme.weight_granularity.value,
                            scheme.psum_granularity.value, "ptq",
                            stats["top1"], stats["topk"], 0.0, 0, None)

    model = build_experiment_model(config, scheme=scheme, cim_config=cim_config, seed=seed)
    if training == "two-stage-qat":
        stage1 = max(1, int(round(epochs * 2 / 3)))
        stage2 = max(1, epochs - stage1)
        trainer = TwoStageQATTrainer(
            model, train, test,
            base_config=TrainerConfig(epochs=epochs, lr=config.lr, seed=seed),
            stages=TwoStageConfig(stage1_epochs=stage1, stage2_epochs=stage2))
        history = trainer.fit()
    else:
        trainer = QATTrainer(model, train, test,
                             TrainerConfig(epochs=epochs, lr=config.lr, seed=seed))
        history = trainer.fit()

    stats = evaluate(model, test)
    return SchemeResult(scheme.name, scheme.weight_granularity.value,
                        scheme.psum_granularity.value, training,
                        stats["top1"], stats["topk"], history.total_seconds,
                        history.epochs, history)


def run_related_work_comparison(config: ExperimentConfig, epochs: Optional[int] = None,
                                seed: int = 0,
                                keys: Optional[List[str]] = None) -> Dict[str, SchemeResult]:
    """Reproduce one column of Fig. 7 / Table III: every Table I scheme + FP baseline.

    Returns a mapping ``scheme key -> SchemeResult`` (including
    ``"full_precision"``).  Models keep the experiment's bit widths; each
    scheme is trained with its own procedure.
    """
    train, test = build_loaders(config)
    results: Dict[str, SchemeResult] = {}

    fp_result, fp_model = run_fp_baseline(config, train, test, epochs=epochs, seed=seed)
    results["full_precision"] = fp_result

    keys = keys or list(SCHEME_REGISTRY)
    for key in keys:
        info = SCHEME_REGISTRY[key]
        scheme = get_scheme(key, weight_bits=config.weight_bits, act_bits=config.act_bits,
                            psum_bits=config.psum_bits)
        results[key] = run_scheme(config, scheme, train, test, training=info.training,
                                  pretrained_fp=fp_model, epochs=epochs, seed=seed)
    return results


def run_granularity_grid(config: ExperimentConfig, epochs: Optional[int] = None,
                         seed: int = 0, quantize_psum: bool = True) -> List[SchemeResult]:
    """Train the full 3x3 grid of weight x partial-sum granularities (Fig. 7 markers)."""
    train, test = build_loaders(config)
    results = []
    for scheme in all_granularity_combinations(config.weight_bits, config.act_bits,
                                               config.psum_bits, quantize_psum):
        results.append(run_scheme(config, scheme, train, test, training="qat",
                                  epochs=epochs, seed=seed))
    return results
