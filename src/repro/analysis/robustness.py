"""Variation-robustness analysis (Fig. 10).

Fig. 10 sweeps the standard deviation of log-normal memory-cell variation
(Eq. 5) and reports inference accuracy for the paper's scheme and every
related-work scheme.  Column-wise weight scales make the network less
sensitive to per-cell drift because each column's scale was learned for that
column alone.

``run_variation_sweep`` takes trained models (one per scheme) and evaluates
each under every sigma with Monte-Carlo repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..cim.variation import VariationModel
from ..core.convert import apply_variation
from ..data.loaders import DataLoader
from ..nn.module import Module
from ..training.metrics import evaluate

__all__ = ["VariationPoint", "evaluate_under_variation", "run_variation_sweep",
           "DEFAULT_SIGMAS"]

#: x-axis of Fig. 10
DEFAULT_SIGMAS: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)


@dataclass
class VariationPoint:
    """Accuracy of one scheme at one variation level."""

    scheme: str
    sigma: float
    mean_top1: float
    std_top1: float
    trials: int

    def row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "sigma": self.sigma,
            "top1_mean": round(self.mean_top1, 4),
            "top1_std": round(self.std_top1, 4),
            "trials": self.trials,
        }


def evaluate_under_variation(model: Module, loader: DataLoader, sigma: float,
                             trials: int = 3, target: str = "cells",
                             seed: int = 0) -> List[float]:
    """Monte-Carlo evaluation of ``model`` under log-normal cell variation."""
    accuracies = []
    for trial in range(max(1, trials if sigma > 0 else 1)):
        variation = VariationModel(sigma=sigma, target=target, seed=seed + trial)
        apply_variation(model, variation)
        stats = evaluate(model, loader)
        accuracies.append(stats["top1"])
    apply_variation(model, None)
    return accuracies


def run_variation_sweep(models: Dict[str, Module], loader: DataLoader,
                        sigmas: Iterable[float] = DEFAULT_SIGMAS, trials: int = 3,
                        target: str = "cells", seed: int = 0) -> List[VariationPoint]:
    """Fig. 10 driver: accuracy of every (already trained) scheme across sigmas."""
    points: List[VariationPoint] = []
    for scheme_name, model in models.items():
        for sigma in sigmas:
            accuracies = evaluate_under_variation(model, loader, float(sigma),
                                                  trials=trials, target=target, seed=seed)
            points.append(VariationPoint(
                scheme=scheme_name,
                sigma=float(sigma),
                mean_top1=float(np.mean(accuracies)),
                std_top1=float(np.std(accuracies)),
                trials=len(accuracies),
            ))
    return points
