"""One-stage vs two-stage QAT comparison (Fig. 9).

Fig. 9 compares four training schemes on accuracy and training cost:

* (i)   column/column, one-stage QAT  (the paper's proposal),
* (ii)  column/column, two-stage QAT,
* (iii) layer/column,  one-stage QAT,
* (iv)  layer/column,  two-stage QAT  (Saxena [9]).

The paper reports that, with the granularity mismatch of (iii)/(iv), two-stage
training reaches the same accuracy ~19.6% cheaper, whereas with aligned
granularities the one-stage scheme (i) is both more accurate and ~34.3%
cheaper than its two-stage counterpart (ii), and reaches (ii)'s best accuracy
with ~8.6% less cost.  This driver reproduces those four runs and derives the
same relative-cost statistics from the recorded training histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cim.config import QuantScheme
from ..training.configs import ExperimentConfig
from ..training.metrics import TrainingHistory
from .common import build_loaders
from .granularity import SchemeResult, run_scheme

__all__ = ["QATScheduleResult", "run_qat_schedule_comparison", "relative_cost_to_reach"]

#: the four cases of Fig. 9, in the paper's numbering
FIG9_CASES = {
    "i_column_column_1stage": ("column", "column", "qat"),
    "ii_column_column_2stage": ("column", "column", "two-stage-qat"),
    "iii_layer_column_1stage": ("layer", "column", "qat"),
    "iv_layer_column_2stage": ("layer", "column", "two-stage-qat"),
}


@dataclass
class QATScheduleResult:
    """Outcome of one of the four Fig. 9 training schedules."""

    case: str
    weight_granularity: str
    psum_granularity: str
    training: str
    best_accuracy: float
    final_accuracy: float
    total_seconds: float
    epochs: int
    history: TrainingHistory

    def row(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "scheme": f"{self.weight_granularity}/{self.psum_granularity}",
            "training": "one-stage" if self.training == "qat" else "two-stage",
            "best_accuracy": round(self.best_accuracy, 4),
            "final_accuracy": round(self.final_accuracy, 4),
            "train_seconds": round(self.total_seconds, 2),
            "epochs": self.epochs,
        }


def run_qat_schedule_comparison(config: ExperimentConfig, epochs: Optional[int] = None,
                                seed: int = 0) -> Dict[str, QATScheduleResult]:
    """Train the four Fig. 9 cases under an identical epoch budget."""
    train, test = build_loaders(config)
    results: Dict[str, QATScheduleResult] = {}
    for case, (wg, pg, training) in FIG9_CASES.items():
        scheme = config.scheme(weight_granularity=wg, psum_granularity=pg)
        outcome: SchemeResult = run_scheme(config, scheme, train, test,
                                           training=training, epochs=epochs, seed=seed)
        history = outcome.history
        results[case] = QATScheduleResult(
            case=case,
            weight_granularity=wg,
            psum_granularity=pg,
            training=training,
            best_accuracy=history.best_test_accuracy if history else outcome.top1,
            final_accuracy=outcome.top1,
            total_seconds=outcome.train_seconds,
            epochs=outcome.epochs,
            history=history,
        )
    return results


def relative_cost_to_reach(results: Dict[str, QATScheduleResult],
                           reference_case: str, target_case: str) -> Optional[float]:
    """Relative training-cost saving of ``target_case`` reaching ``reference_case``'s best accuracy.

    Mirrors the plus/circle/star markers of Fig. 9: find the first epoch at
    which ``target_case`` attains the best accuracy of ``reference_case`` and
    compare the cumulative training time up to that epoch against the
    reference's full training time.  Returns the relative saving in
    ``[-inf, 1]`` (positive = cheaper), or ``None`` if the target never
    reaches the reference accuracy.
    """
    reference = results[reference_case]
    target = results[target_case]
    goal = reference.best_accuracy
    epoch = target.history.epochs_to_reach(goal) if target.history else None
    if epoch is None:
        return None
    target_cost = float(np.sum(target.history.epoch_seconds[:epoch]))
    reference_cost = reference.total_seconds
    if reference_cost <= 0:
        return None
    return 1.0 - target_cost / reference_cost
