"""Accuracy vs dequantization-overhead analysis (Fig. 8).

Fig. 8 places every weight x partial-sum granularity combination on an
(overhead, accuracy) plane, where overhead is the number of dequantize
multiplications per layer.  The paper's point: at equal overhead (set by the
*partial-sum* granularity alone), finer *weight* granularity gives strictly
better accuracy — in particular column/column costs the same as
layer/column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cim.config import QuantScheme
from ..core.convert import model_overhead
from ..core.schemes import all_granularity_combinations
from ..quant.granularity import Granularity
from ..training.configs import ExperimentConfig
from .common import build_experiment_model
from .granularity import SchemeResult, run_scheme
from ..data.loaders import DataLoader
from .common import build_loaders

__all__ = ["OverheadPoint", "compute_overhead_table", "run_overhead_sweep"]


@dataclass
class OverheadPoint:
    """One marker of Fig. 8."""

    weight_granularity: str
    psum_granularity: str
    dequant_mults_per_layer_mean: float
    dequant_mults_total: int
    top1: Optional[float] = None

    def row(self) -> Dict[str, object]:
        return {
            "weight_granularity": self.weight_granularity,
            "psum_granularity": self.psum_granularity,
            "dequant_mults_per_layer_mean": round(self.dequant_mults_per_layer_mean, 1),
            "dequant_mults_total": self.dequant_mults_total,
            "top1_accuracy": None if self.top1 is None else round(self.top1, 4),
        }


def compute_overhead_table(config: ExperimentConfig,
                           schemes: Optional[List[QuantScheme]] = None) -> List[OverheadPoint]:
    """Dequantization overhead of every granularity combination (no training).

    Builds the experiment's model once per scheme (cheap — only the mapping
    metadata is needed) and tallies the per-layer dequantize multiplications.
    """
    schemes = schemes or all_granularity_combinations(config.weight_bits, config.act_bits,
                                                      config.psum_bits)
    points = []
    for scheme in schemes:
        model = build_experiment_model(config, scheme=scheme)
        overheads = model_overhead(model, scheme)
        totals = [o.multiplications for o in overheads.values()]
        points.append(OverheadPoint(
            weight_granularity=scheme.weight_granularity.value,
            psum_granularity=scheme.psum_granularity.value,
            dequant_mults_per_layer_mean=float(np.mean(totals)) if totals else 0.0,
            dequant_mults_total=int(np.sum(totals)) if totals else 0,
        ))
    return points


def run_overhead_sweep(config: ExperimentConfig, epochs: Optional[int] = None,
                       seed: int = 0) -> List[OverheadPoint]:
    """Fig. 8 driver: overhead *and* trained accuracy for all 9 combinations."""
    train, test = build_loaders(config)
    points = []
    for scheme in all_granularity_combinations(config.weight_bits, config.act_bits,
                                               config.psum_bits):
        result = run_scheme(config, scheme, train, test, training="qat",
                            epochs=epochs, seed=seed)
        model = build_experiment_model(config, scheme=scheme, seed=seed)
        overheads = model_overhead(model, scheme)
        totals = [o.multiplications for o in overheads.values()]
        points.append(OverheadPoint(
            weight_granularity=scheme.weight_granularity.value,
            psum_granularity=scheme.psum_granularity.value,
            dequant_mults_per_layer_mean=float(np.mean(totals)),
            dequant_mults_total=int(np.sum(totals)),
            top1=result.top1,
        ))
    return points
