"""Partial-sum distribution analysis (Fig. 6).

Fig. 6 of the paper shows the *integer-valued* column-wise partial-sum
distribution of one ResNet-20 convolution layer, comparing layer-wise against
column-wise weight quantization: column-wise weight scales let every column
use more of the available integer range, i.e. a larger per-column dynamic
range, which is what makes fine-grained partial-sum quantization effective.

``compare_psum_distributions`` trains (briefly) or simply runs a model under
both weight granularities, records the integer partial sums of a chosen
layer, and returns per-column summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..core.convert import attach_recorders, cim_layers, set_psum_quant_enabled
from ..core.psum import PartialSumRecorder
from ..data.loaders import DataLoader
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..quant.granularity import Granularity
from ..training.configs import ExperimentConfig
from ..training.trainer import QATTrainer, TrainerConfig
from .common import build_experiment_model, build_loaders

__all__ = ["ColumnDistribution", "record_psum_distribution", "compare_psum_distributions"]


@dataclass
class ColumnDistribution:
    """Distribution summary of one configuration's partial sums (one layer)."""

    weight_granularity: str
    layer_name: str
    per_column_min: np.ndarray
    per_column_max: np.ndarray
    per_column_std: np.ndarray

    @property
    def dynamic_range(self) -> np.ndarray:
        return self.per_column_max - self.per_column_min

    @property
    def mean_dynamic_range(self) -> float:
        return float(np.mean(self.dynamic_range))

    @property
    def num_columns(self) -> int:
        return int(self.per_column_min.shape[0])

    def summary(self) -> Dict[str, float]:
        return {
            "weight_granularity": self.weight_granularity,
            "layer": self.layer_name,
            "columns": self.num_columns,
            "mean_dynamic_range": round(self.mean_dynamic_range, 3),
            "max_dynamic_range": round(float(self.dynamic_range.max()), 3),
            "mean_std": round(float(np.mean(self.per_column_std)), 3),
        }


def record_psum_distribution(model: Module, loader: DataLoader, layer_index: int = 3,
                             batches: int = 2) -> ColumnDistribution:
    """Run ``model`` over a few batches and collect one layer's integer partial sums.

    ``layer_index`` counts CIM layers in forward order; the paper plots the
    4th convolution layer of ResNet-20 (index 3).
    """
    layers = list(cim_layers(model))
    if not layers:
        raise ValueError("model contains no CIM layers")
    layer_index = min(layer_index, len(layers) - 1)
    target_name, target_layer = layers[layer_index]

    recorder = PartialSumRecorder(samples_per_column=8192)
    target_layer.attach_recorder(recorder, layer_name=target_name)
    # record unquantized integer partial sums
    previous = target_layer.psum_quant_enabled
    target_layer.set_psum_quant_enabled(False)

    model.eval()
    with no_grad():
        for index, (images, _labels) in enumerate(loader):
            if index >= batches:
                break
            model(Tensor(images))
    model.train()

    target_layer.set_psum_quant_enabled(previous)
    target_layer.attach_recorder(None)

    stats = recorder.column_statistics(target_name)
    scheme = target_layer.scheme
    return ColumnDistribution(
        weight_granularity=scheme.weight_granularity.value,
        layer_name=target_name,
        per_column_min=np.array([s.minimum for s in stats]),
        per_column_max=np.array([s.maximum for s in stats]),
        per_column_std=np.array([s.std for s in stats]),
    )


def compare_psum_distributions(config: ExperimentConfig, layer_index: int = 3,
                               train_epochs: int = 1, seed: int = 0,
                               granularities=("layer", "column")) -> Dict[str, ColumnDistribution]:
    """Fig. 6 driver: partial-sum distributions under different weight granularities.

    For each weight granularity, a model is built (and briefly trained so the
    LSQ weight scales adapt), then the integer partial sums of the selected
    layer are recorded on the test split.  The paper's observation is that the
    column-wise model exhibits a larger mean per-column dynamic range.
    """
    train, test = build_loaders(config)
    results: Dict[str, ColumnDistribution] = {}
    for granularity in granularities:
        scheme = config.scheme(weight_granularity=granularity,
                               psum_granularity="column", quantize_psum=False)
        model = build_experiment_model(config, scheme=scheme, seed=seed)
        if train_epochs > 0:
            QATTrainer(model, train, test,
                       TrainerConfig(epochs=train_epochs, lr=config.lr, seed=seed)).fit()
        results[granularity] = record_psum_distribution(model, test,
                                                        layer_index=layer_index)
    return results
