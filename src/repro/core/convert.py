"""Model conversion and CIM-layer discovery utilities.

``convert_to_cim`` swaps every full-precision :class:`~repro.nn.layers.Conv2d`
/ :class:`~repro.nn.layers.Linear` inside a model for its CIM-quantized
counterpart, copying the pretrained weights — this is the entry point of the
PTQ baselines (Kim [5], Bai [6, 7]), which start from a pretrained
full-precision network.

``cim_layers`` / ``set_psum_quant_enabled`` / ``apply_variation`` /
``attach_recorders`` operate uniformly on every CIM layer of a model and are
used by the trainers and the experiment drivers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..cim.cost import DequantOverhead, model_dequant_overhead
from ..cim.tiling import WeightMapping
from ..cim.variation import VariationModel
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .cim_conv import CIMConv2d
from .cim_linear import CIMLinear
from .psum import PartialSumRecorder

__all__ = ["convert_to_cim", "cim_layers", "set_psum_quant_enabled", "apply_variation",
           "attach_recorders", "model_mappings", "model_overhead", "scale_parameters",
           "weight_parameters"]

CIMLayer = Union[CIMConv2d, CIMLinear]


def convert_to_cim(model: Module, scheme: QuantScheme, cim_config: CIMConfig,
                   skip_first_conv_act_quant: bool = True) -> Module:
    """Replace FP conv / linear layers with CIM layers in place, copying weights.

    Parameters
    ----------
    model:
        A model built from :class:`repro.nn` layers.
    scheme, cim_config:
        Quantization scheme and macro description applied to every layer.
    skip_first_conv_act_quant:
        Do not quantize the activations of the first convolution (its input
        is the image itself); standard practice in low-bit QAT.
    """
    first_conv_seen = False
    for parent in model.modules():
        for name, child in list(parent._modules.items()):
            if isinstance(child, Conv2d) and not isinstance(child, CIMConv2d):
                quantize_input = not (skip_first_conv_act_quant and not first_conv_seen)
                first_conv_seen = True
                new = CIMConv2d(child.in_channels, child.out_channels, child.kernel_size,
                                stride=child.stride, padding=child.padding,
                                bias=child.bias is not None,
                                scheme=scheme, cim_config=cim_config,
                                quantize_input=quantize_input)
                new.weight.data = child.weight.data.copy()
                if child.bias is not None:
                    new.bias.data = child.bias.data.copy()
                parent.add_module(name, new)
            elif isinstance(child, Linear) and not isinstance(child, CIMLinear):
                new = CIMLinear(child.in_features, child.out_features,
                                bias=child.bias is not None,
                                scheme=scheme, cim_config=cim_config)
                new.weight.data = child.weight.data.copy()
                if child.bias is not None:
                    new.bias.data = child.bias.data.copy()
                parent.add_module(name, new)
    return model


def cim_layers(model: Module) -> Iterator[Tuple[str, CIMLayer]]:
    """Yield ``(name, layer)`` for every CIM layer in the model."""
    for name, module in model.named_modules():
        if isinstance(module, (CIMConv2d, CIMLinear)):
            yield name, module


def set_psum_quant_enabled(model: Module, enabled: bool) -> int:
    """Toggle partial-sum quantization on every CIM layer; returns the count."""
    count = 0
    for _, layer in cim_layers(model):
        layer.set_psum_quant_enabled(enabled)
        count += 1
    return count


def apply_variation(model: Module, variation: Optional[VariationModel]) -> int:
    """Attach a device-variation model to every CIM layer (``None`` to clear)."""
    count = 0
    for _, layer in cim_layers(model):
        layer.set_variation(variation)
        count += 1
    return count


def attach_recorders(model: Module, recorder: Optional[PartialSumRecorder]) -> int:
    """Attach a partial-sum recorder to every CIM layer."""
    count = 0
    for name, layer in cim_layers(model):
        layer.attach_recorder(recorder, layer_name=name)
        count += 1
    return count


def model_mappings(model: Module) -> Dict[str, WeightMapping]:
    """Crossbar mapping of every CIM layer, keyed by layer name."""
    return {name: layer.mapping for name, layer in cim_layers(model)}


def model_overhead(model: Module, scheme: QuantScheme) -> Dict[str, DequantOverhead]:
    """Per-layer dequantization overhead of ``model`` under ``scheme`` (Fig. 8)."""
    return model_dequant_overhead(model_mappings(model),
                                  scheme.weight_granularity, scheme.psum_granularity)


def scale_parameters(model: Module) -> List:
    """All learnable LSQ scale parameters (weight, activation and partial-sum)."""
    params = []
    for name, param in model.named_parameters():
        if name.endswith("scale") and param.requires_grad:
            params.append(param)
    return params


def weight_parameters(model: Module) -> List:
    """All learnable parameters that are *not* LSQ scales."""
    params = []
    for name, param in model.named_parameters():
        if not name.endswith("scale") and param.requires_grad:
            params.append(param)
    return params
