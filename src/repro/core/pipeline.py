"""Staged CIM execution pipeline shared by the QAT layers and the frozen engine.

The paper's CIM forward — activation LSQ, tiled weight LSQ, bit-splitting,
per-array MAC, ADC partial-sum quantization, folded dequant / shift-and-add —
used to be written out three times: once in :class:`~repro.core.cim_conv.CIMConv2d`,
once in :class:`~repro.core.cim_linear.CIMLinear`, and once more inside the
frozen engine's plan compiler.  This module is the single implementation:

* :class:`LayerGeometry` captures everything static about a layer's crossbar
  mapping (array/row/split counts, padding, the valid-rows mask) once;
* a pair of *adapters* (:class:`ConvAdapter` / :class:`LinearAdapter`) holds
  the only code that differs between the two layer kinds — the unfold that
  turns activations into per-array word-line drives and the fold that turns
  the reduced partial sums back into the layer's output layout.  Conv partial
  sums carry the spatial ``L`` axis of the canonical ``(S, A, N, L, OC)``
  layout (:mod:`repro.core.psum`); linear drops it;
* the :class:`CIMPipeline` runs an ordered list of small, individually
  testable stages (:class:`ActQuantStage` … :class:`BiasStage`).  The QAT
  forward of both layers is exactly ``pipeline.run(x)``, and
  :func:`repro.engine.plan.compile_plan` builds its frozen plans by asking
  the *same* stage list for its static state (:meth:`CIMPipeline.compile_state`)
  — QAT/engine numerical parity holds by construction rather than by keeping
  three hand-written copies in sync.

The pipeline also carries a parameter-versioned static cache: the integer
tiled weight, its bit-splits and the reshaped scale/shift views depend only on
the layer's parameters, so repeated no-grad eval forwards reuse them instead
of re-deriving them from Python loops every call.  The cache keys on the
identity of the parameter arrays (every optimizer step and LSQ init assigns a
fresh array) and is bypassed whenever gradients could flow, so QAT training
semantics are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from ..cim.tiling import WeightMapping, valid_rows_mask
from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor, is_grad_enabled, no_grad
from ..quant.bitsplit import BitSplitConfig, split_signed, split_tensor_ste
from .requant import compile_requant

__all__ = [
    "LayerGeometry",
    "ConvAdapter",
    "LinearAdapter",
    "PipelineContext",
    "CIMPipeline",
    "CIMLayerBase",
    "ActQuantStage",
    "WeightTileQuantStage",
    "BitSplitStage",
    "VariationStage",
    "MacStage",
    "RecordStage",
    "PsumQuantStage",
    "DequantShiftAddStage",
    "BiasStage",
    "varied_splits",
]


# --------------------------------------------------------------------------- #
# geometry
# --------------------------------------------------------------------------- #
@dataclass
class LayerGeometry:
    """Static crossbar geometry of one CIM layer.

    Bundles the :class:`~repro.cim.tiling.WeightMapping` and the
    :class:`~repro.quant.bitsplit.BitSplitConfig` with the convolution
    hyper-parameters (identity values for linear layers) and caches the
    derived static tensors every stage needs — most importantly the
    ``(A, R, 1)`` valid-rows mask, which the seed layers used to rebuild with
    a Python loop over tiles on every ``quantized_weight()`` call.
    """

    layer_type: str                      # "conv2d" | "linear"
    mapping: WeightMapping
    bitsplit: BitSplitConfig
    in_channels: int = 0                 # conv only
    kernel_size: Tuple[int, int] = (1, 1)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    _valid_rows_mask: Optional[np.ndarray] = field(
        init=False, repr=False, default=None)

    # ------------------------------------------------------------------ #
    @property
    def has_spatial(self) -> bool:
        """True for conv layers, whose partial sums carry the ``L`` axis."""
        return self.layer_type == "conv2d"

    @property
    def in_features(self) -> int:
        """Rows of the unrolled weight matrix (``IC*kh*kw`` for conv)."""
        return self.mapping.in_features

    @property
    def out_channels(self) -> int:
        """Columns of the unrolled weight matrix (ADC column groups)."""
        return self.mapping.out_channels

    @property
    def n_arrays(self) -> int:
        """Number of crossbar arrays along the word-line (row) direction."""
        return self.mapping.n_arrays_row

    @property
    def rows_per_array(self) -> int:
        """Uniform zero-padded word-line count per array."""
        return self.mapping.rows_per_array

    @property
    def n_splits(self) -> int:
        """Number of per-cell weight bit-splits (the ``S`` axis)."""
        return self.bitsplit.n_splits

    @property
    def pad_rows(self) -> int:
        """Zero rows appended so ``in_features`` fills ``A * R`` word lines."""
        return self.n_arrays * self.rows_per_array - self.in_features

    @property
    def shift_factors(self) -> np.ndarray:
        """Per-split shift-and-add factors ``2**(j*cell_bits)``."""
        return self.bitsplit.shift_factors

    @property
    def valid_rows_mask(self) -> np.ndarray:
        """Cached ``(A, R, 1)`` mask of word lines holding real weights."""
        if self._valid_rows_mask is None:
            self._valid_rows_mask = valid_rows_mask(self.mapping)
        return self._valid_rows_mask


# --------------------------------------------------------------------------- #
# conv / linear adapters
# --------------------------------------------------------------------------- #
class ConvAdapter:
    """Unfold/fold pair mapping ``(N, C, H, W)`` activations onto the arrays.

    Owns every conv-specific reshape: weight unrolling (im2col row order),
    the activation unfold into ``(1, A, N, L, R)`` word-line drives, the
    broadcast views of the weight scale and shift factors over the
    ``(S, A, N, L, OC)`` partial-sum layout, and the fold of the reduced
    output back to ``(N, OC, out_h, out_w)``.
    """

    def __init__(self, geometry: LayerGeometry):
        self.geometry = geometry

    def validate(self, x: Tensor) -> None:
        """Raise ``ValueError`` unless ``x`` is ``(N, in_channels, H, W)``."""
        if x.ndim != 4 or x.shape[1] != self.geometry.in_channels:
            raise ValueError(
                f"expected {self.geometry.in_channels} input channels, "
                f"got {x.shape[1] if x.ndim == 4 else x.shape}")

    def weight_matrix(self, weight: Tensor) -> Tensor:
        """Unroll ``(OC, IC, kh, kw)`` to ``(D, OC)``; row order matches unfold."""
        g = self.geometry
        return weight.transpose(1, 2, 3, 0).reshape(g.in_features, g.out_channels)

    def matrix_to_weight(self, flat: Tensor) -> Tensor:
        """Inverse of :meth:`weight_matrix`: ``(D, OC)`` back to 4-D layout."""
        g = self.geometry
        kh, kw = g.kernel_size
        return flat.reshape(g.in_channels, kh, kw, g.out_channels).transpose(3, 0, 1, 2)

    def unfold(self, ctx: "PipelineContext") -> Tensor:
        """im2col + row tiling: quantized activations to ``(1, A, N, L, R)``."""
        g = self.geometry
        _, _, h, w = ctx.x.shape
        kh, kw = g.kernel_size
        out_h = F.conv_output_size(h, kh, g.stride[0], g.padding[0])
        out_w = F.conv_output_size(w, kw, g.stride[1], g.padding[1])
        ctx.out_spatial = (out_h, out_w)
        length = out_h * out_w
        cols = F.unfold(ctx.a_int, g.kernel_size, g.stride, g.padding,
                        layout="nlk")                       # (N, L, D)
        if g.pad_rows:
            cols = cols.pad(((0, 0), (0, 0), (0, g.pad_rows)))
        cols = cols.reshape(ctx.batch, length, g.n_arrays, g.rows_per_array)
        return cols.transpose(2, 0, 1, 3).expand_dims(0)    # (1, A, N, L, R)

    def split_operand(self, splits: Tensor) -> Tensor:
        """Reshape ``(S, A, R, OC)`` cell codes for the batched conv MAC."""
        g = self.geometry
        return splits.reshape(g.n_splits, g.n_arrays, 1, g.rows_per_array,
                              g.out_channels)

    def weight_scale_view(self, s_w: Tensor) -> Tensor:
        """Broadcast the weight scale over the ``(S, A, N, L, OC)`` layout."""
        return s_w.reshape(1, s_w.shape[0], 1, 1, s_w.shape[2])

    def shift_view(self) -> Tensor:
        """Shift-and-add factors broadcast over ``(S, A, N, L, OC)``."""
        g = self.geometry
        return Tensor(g.shift_factors.reshape(g.n_splits, 1, 1, 1, 1))

    def fold(self, ctx: "PipelineContext", out: Tensor) -> Tensor:
        """Reduced ``(N, L, OC)`` output back to ``(N, OC, out_h, out_w)``."""
        g = self.geometry
        out_h, out_w = ctx.out_spatial
        return out.transpose(0, 2, 1).reshape(ctx.batch, g.out_channels,
                                              out_h, out_w)

    def bias_view(self, bias: Tensor) -> Tensor:
        """Bias broadcastable over the folded conv output."""
        return bias.reshape(1, self.geometry.out_channels, 1, 1)

    def reshape_psum_scale(self, raw: np.ndarray) -> np.ndarray:
        """Collapse the stored psum scale to the plan's ``(S|1, A|1, OC|1)``."""
        return raw.reshape(raw.shape[0], raw.shape[1], raw.shape[4]).copy()


class LinearAdapter:
    """Adapter for linear layers: the conv pair with the ``L`` axis dropped.

    Partial sums are ``(S, A, N, OC)`` — the canonical layout of
    :mod:`repro.core.psum` without the spatial axis — so every view here is
    one rank lower than its :class:`ConvAdapter` counterpart; nothing else
    differs.
    """

    def __init__(self, geometry: LayerGeometry):
        self.geometry = geometry

    def validate(self, x: Tensor) -> None:
        """Raise ``ValueError`` unless ``x`` is ``(N, in_features)``."""
        g = self.geometry
        if x.ndim != 2 or x.shape[1] != g.in_features:
            raise ValueError(
                f"expected input of shape (N, {g.in_features}), got {x.shape}")

    def weight_matrix(self, weight: Tensor) -> Tensor:
        """Transpose ``(out, in)`` to the unrolled ``(in, out)`` layout."""
        return weight.transpose()

    def matrix_to_weight(self, flat: Tensor) -> Tensor:
        """Inverse of :meth:`weight_matrix`."""
        return flat.transpose()

    def unfold(self, ctx: "PipelineContext") -> Tensor:
        """Tile quantized activations into ``(1, A, N, R)`` word-line drives."""
        g = self.geometry
        a = ctx.a_int
        if g.pad_rows:
            a = a.pad(((0, 0), (0, g.pad_rows)))
        a = a.reshape(ctx.batch, g.n_arrays, g.rows_per_array).transpose(1, 0, 2)
        return a.expand_dims(0)                             # (1, A, N, R)

    def split_operand(self, splits: Tensor) -> Tensor:
        """``(S, A, R, OC)`` cell codes are already MAC-ready for linear."""
        return splits

    def weight_scale_view(self, s_w: Tensor) -> Tensor:
        """Broadcast the weight scale over the ``(S, A, N, OC)`` layout."""
        return s_w.reshape(1, s_w.shape[0], 1, s_w.shape[2])

    def shift_view(self) -> Tensor:
        """Shift-and-add factors broadcast over ``(S, A, N, OC)``."""
        g = self.geometry
        return Tensor(g.shift_factors.reshape(g.n_splits, 1, 1, 1))

    def fold(self, ctx: "PipelineContext", out: Tensor) -> Tensor:
        """Linear output is already ``(N, OC)``; fold is the identity."""
        return out

    def bias_view(self, bias: Tensor) -> Tensor:
        """Bias broadcastable over the ``(N, OC)`` output."""
        return bias

    def reshape_psum_scale(self, raw: np.ndarray) -> np.ndarray:
        """Collapse the stored psum scale to the plan's ``(S|1, A|1, OC|1)``."""
        return raw.reshape(raw.shape[0], raw.shape[1], raw.shape[3]).copy()


# --------------------------------------------------------------------------- #
# shared variation math
# --------------------------------------------------------------------------- #
def varied_splits(splits: np.ndarray, w_bar: np.ndarray, variation) -> np.ndarray:
    """Apply a device-variation model to programmed cell codes (Eq. 5).

    ``target="cells"`` perturbs every programmed bit-split cell independently;
    ``target="weights"`` moves all cells of one weight together by scaling
    each slice with the ratio between the varied and the ideal integer weight.
    This is the single implementation behind both the QAT
    :class:`VariationStage` and the frozen plans — same math, same RNG draw
    order, so a frozen layer with an identical variation-model state produces
    identical perturbed cells.
    """
    if variation.target == "cells":
        return variation.perturb(splits)
    w_var = variation.perturb(w_bar)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(w_bar != 0, w_var / w_bar, 1.0)
    return splits * ratio[None, ...]


# --------------------------------------------------------------------------- #
# execution context and static cache
# --------------------------------------------------------------------------- #
@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one forward pass."""

    x: Tensor
    layer: "CIMLayerBase"
    geometry: LayerGeometry
    adapter: Any
    pipeline: "CIMPipeline"
    batch: int = 0
    use_static: bool = False             # serve parameter-cached weight state
    varied: bool = False                 # variation perturbed the cell codes
    out_spatial: Optional[Tuple[int, int]] = None
    a_int: Optional[Tensor] = None       # integer activation codes
    s_a: Optional[Tensor] = None         # activation scale
    w_bar: Optional[Tensor] = None       # (A, R, OC) integer weight codes
    s_w: Optional[Tensor] = None         # weight scale
    splits: Optional[Tensor] = None      # (S, A, R, OC) cell codes
    psum: Optional[Tensor] = None        # canonical (S, A, N[, L], OC)
    psum_deq: Optional[Tensor] = None    # dequantized partial sums
    out: Optional[Tensor] = None         # layer output


class _StaticCache:
    """Parameter-versioned cache of the input-independent pipeline state.

    Holds the quantized tiled weight, its bit-splits, the MAC-ready split
    operand and the broadcast scale view.  Versioning keys on the *identity*
    of the weight / weight-scale arrays: every optimizer step and every LSQ
    (re)initialisation assigns a fresh ``.data`` array, so ``is`` comparisons
    detect staleness without hashing tensor contents.  Strong references to
    the keyed arrays are kept, so an id can never be recycled while the entry
    lives.
    """

    __slots__ = ("weight_ref", "scale_ref", "w_bar", "s_w", "splits",
                 "split_operand", "s_w_view", "hits", "misses")

    def __init__(self):
        self.weight_ref = None
        self.scale_ref = None
        self.w_bar: Optional[Tensor] = None
        self.s_w: Optional[Tensor] = None
        self.splits: Optional[Tensor] = None
        self.split_operand: Optional[Tensor] = None
        self.s_w_view: Optional[Tensor] = None
        self.hits = 0
        self.misses = 0

    def fresh(self, layer: "CIMLayerBase") -> bool:
        return (self.w_bar is not None
                and self.weight_ref is layer.weight.data
                and self.scale_ref is layer.weight_quant.scale.data)

    def invalidate(self) -> None:
        self.weight_ref = None
        self.scale_ref = None
        self.w_bar = self.s_w = self.splits = None
        self.split_operand = self.s_w_view = None


# --------------------------------------------------------------------------- #
# stages
# --------------------------------------------------------------------------- #
class PipelineStage:
    """One composable step of the CIM forward.

    ``run`` executes the stage on a :class:`PipelineContext` (differentiable
    Tensor path, used by the QAT layers).  ``compile_into`` contributes the
    stage's static state to a frozen-plan snapshot; stages with no static
    state inherit the no-op.
    """

    name = "stage"

    def run(self, ctx: PipelineContext) -> None:
        """Execute the stage, reading and writing ``ctx`` fields."""
        raise NotImplementedError

    def compile_into(self, state: dict, layer: "CIMLayerBase",
                     geometry: LayerGeometry, adapter) -> None:
        """Add this stage's static arrays to a plan snapshot (default: none)."""


class ActQuantStage(PipelineStage):
    """LSQ activation quantization: integer DAC codes plus their scale."""

    name = "act_quant"

    def run(self, ctx: PipelineContext) -> None:
        """Produce ``ctx.a_int`` / ``ctx.s_a`` (identity when unquantized)."""
        layer = ctx.layer
        if layer.act_quant is not None:
            ctx.a_int, ctx.s_a = layer.act_quant.quantize_int(ctx.x)
        else:
            ctx.a_int, ctx.s_a = ctx.x, Tensor(np.ones(1))

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot the activation scale and clip range."""
        if layer.act_quant is not None:
            state["act_scale"] = layer.act_quant.scale.data.copy()
            state["act_qmin"] = float(layer.act_quant.qmin)
            state["act_qmax"] = float(layer.act_quant.qmax)
        else:
            state["act_scale"], state["act_qmin"], state["act_qmax"] = None, 0.0, 0.0


class WeightTileQuantStage(PipelineStage):
    """LSQ weight quantization on the zero-padded tiled ``(A, R, OC)`` layout."""

    name = "weight_tile_quant"

    def run(self, ctx: PipelineContext) -> None:
        """Produce integer weight codes ``ctx.w_bar`` and scale ``ctx.s_w``."""
        if ctx.use_static:
            cache = ctx.pipeline.ensure_static(ctx.layer)
            ctx.w_bar, ctx.s_w = cache.w_bar, cache.s_w
        else:
            ctx.w_bar, ctx.s_w = ctx.layer.quantized_weight()

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot detached integer weight codes and their scale."""
        with no_grad():
            w_bar_t, s_w_t = layer.quantized_weight()
        state["w_bar"] = np.array(w_bar_t.data, dtype=np.float64, copy=True)
        state["s_w"] = np.array(s_w_t.data, dtype=np.float64, copy=True)


class BitSplitStage(PipelineStage):
    """Split integer weights into per-cell slices (Fig. 5)."""

    name = "bit_split"

    def run(self, ctx: PipelineContext) -> None:
        """Produce ``ctx.splits`` of shape ``(S, A, R, OC)``."""
        if ctx.use_static:
            ctx.splits = ctx.pipeline.ensure_static(ctx.layer).splits
        else:
            ctx.splits = split_tensor_ste(ctx.w_bar, ctx.geometry.bitsplit)

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot the cell codes and shift-and-add factors."""
        state["splits"] = split_signed(state["w_bar"], geometry.bitsplit)
        state["shift_factors"] = np.asarray(geometry.shift_factors,
                                            dtype=np.float64).copy()


class VariationStage(PipelineStage):
    """Inference-time memory-cell variation (Eq. 5); no-op when detached."""

    name = "variation"

    def run(self, ctx: PipelineContext) -> None:
        """Perturb ``ctx.splits`` through the layer's variation model."""
        variation = ctx.layer.variation
        if variation is None or not variation.enabled:
            return
        ctx.splits = Tensor(varied_splits(ctx.splits.data, ctx.w_bar.data,
                                          variation))
        ctx.varied = True


class MacStage(PipelineStage):
    """Per-array MAC over all bit-splits — the group-convolution equivalent."""

    name = "mac"

    def run(self, ctx: PipelineContext) -> None:
        """Unfold activations (adapter) and contract into ``ctx.psum``."""
        cols = ctx.adapter.unfold(ctx)
        if ctx.use_static and not ctx.varied:
            operand = ctx.pipeline.ensure_static(ctx.layer).split_operand
        else:
            operand = ctx.adapter.split_operand(ctx.splits)
        ctx.psum = cols.matmul(operand)        # canonical (S, A, N[, L], OC)


class RecordStage(PipelineStage):
    """Feed raw partial sums to an attached recorder (Fig. 6 analysis)."""

    name = "record"

    def run(self, ctx: PipelineContext) -> None:
        """Record ``ctx.psum`` when a recorder is attached."""
        recorder = ctx.layer.recorder
        if recorder is not None:
            default = "cim_conv2d" if ctx.geometry.has_spatial else "cim_linear"
            recorder.record(ctx.layer.layer_name or default, ctx.psum.data)


class PsumQuantStage(PipelineStage):
    """ADC model: LSQ partial-sum quantization at the configured granularity."""

    name = "psum_quant"

    def run(self, ctx: PipelineContext) -> None:
        """Produce ``ctx.psum_deq`` (pass-through when disabled)."""
        layer = ctx.layer
        if layer.psum_quant_enabled:
            p_bar, s_p = layer.psum_quant.quantize_int(ctx.psum)
            ctx.psum_deq = p_bar * s_p
        else:
            ctx.psum_deq = ctx.psum

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot the partial-sum scale (``(S|1, A|1, OC|1)``) and range."""
        enabled = bool(layer.psum_quant_enabled)
        state["psum_quant_enabled"] = enabled
        if enabled:
            state["s_p"] = adapter.reshape_psum_scale(layer.psum_quant.scale.data)
            state["psum_qmin"] = float(layer.psum_quant.qmin)
            state["psum_qmax"] = float(layer.psum_quant.qmax)
        else:
            state["s_p"], state["psum_qmin"], state["psum_qmax"] = None, 0.0, 0.0


class DequantShiftAddStage(PipelineStage):
    """Folded dequantization and shift-and-add reduction over ``(S, A)``."""

    name = "dequant_shift_add"

    def run(self, ctx: PipelineContext) -> None:
        """Reduce partial sums into the folded layer output ``ctx.out``."""
        if ctx.use_static:
            s_w_b = ctx.pipeline.ensure_static(ctx.layer).s_w_view
        else:
            s_w_b = ctx.adapter.weight_scale_view(ctx.s_w)
        contrib = ctx.psum_deq * ctx.pipeline.shift_tensor * s_w_b
        out = contrib.sum(axis=(0, 1)) * ctx.s_a
        ctx.out = ctx.adapter.fold(ctx, out)

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot the fused ``(A*R, OC)`` dequantized weight operand."""
        state["w_eff_mat"] = np.ascontiguousarray(
            (state["w_bar"] * state["s_w"]).reshape(-1, geometry.out_channels))


class BiasStage(PipelineStage):
    """Add the (optional) bias in the layer's output layout."""

    name = "bias"

    def run(self, ctx: PipelineContext) -> None:
        """Add the bias to ``ctx.out`` when the layer has one."""
        bias = ctx.layer.bias
        if bias is not None:
            ctx.out = ctx.out + ctx.adapter.bias_view(bias)

    def compile_into(self, state, layer, geometry, adapter) -> None:
        """Snapshot a detached copy of the bias."""
        state["bias"] = None if layer.bias is None else layer.bias.data.copy()


# --------------------------------------------------------------------------- #
# the pipeline
# --------------------------------------------------------------------------- #
#: Stage classes in execution order — the single definition of the CIM forward.
DEFAULT_STAGES = (ActQuantStage, WeightTileQuantStage, BitSplitStage,
                  VariationStage, MacStage, RecordStage, PsumQuantStage,
                  DequantShiftAddStage, BiasStage)

__all__.append("DEFAULT_STAGES")


class CIMPipeline:
    """Ordered stage list executing (and compiling) one CIM layer's forward.

    Both :class:`~repro.core.cim_conv.CIMConv2d` and
    :class:`~repro.core.cim_linear.CIMLinear` delegate their entire forward to
    :meth:`run`; :func:`repro.engine.plan.compile_plan` snapshots the plan
    state through :meth:`compile_state`.  One implementation, two consumers.
    """

    def __init__(self, layer: "CIMLayerBase", geometry: LayerGeometry):
        self.layer = layer
        self.geometry = geometry
        self.adapter = (ConvAdapter(geometry) if geometry.has_spatial
                        else LinearAdapter(geometry))
        self.stages: List[PipelineStage] = [cls() for cls in DEFAULT_STAGES]
        self.shift_tensor = self.adapter.shift_view()  # constant, reused
        self._static = _StaticCache()

    # ------------------------------------------------------------------ #
    # QAT / eval execution
    # ------------------------------------------------------------------ #
    def run(self, x: Tensor) -> Tensor:
        """Run every stage on ``x`` and return the layer output."""
        self.adapter.validate(x)
        ctx = PipelineContext(x=x, layer=self.layer, geometry=self.geometry,
                              adapter=self.adapter, pipeline=self,
                              batch=x.shape[0],
                              use_static=self.static_eligible())
        for stage in self.stages:
            stage.run(ctx)
        return ctx.out

    def static_eligible(self) -> bool:
        """True when cached weight state is semantically safe to serve.

        The cache returns graph-free tensors, so it must stay out of the way
        whenever a backward pass could need the weight-side graph: training
        mode, or gradient tracking enabled while the weight or its scale still
        require gradients.  (After :func:`repro.engine.freeze`, or inside
        ``no_grad`` evaluation, neither holds and the cache serves.)
        """
        layer = self.layer
        if layer.training:
            return False
        if not is_grad_enabled():
            return True
        return not (layer.weight.requires_grad
                    or layer.weight_quant.scale.requires_grad)

    def ensure_static(self, layer: "CIMLayerBase") -> _StaticCache:
        """Return the static cache, refreshing it if the parameters moved."""
        cache = self._static
        if cache.fresh(layer):
            cache.hits += 1
            return cache
        cache.misses += 1
        with no_grad():
            w_bar, s_w = layer.quantized_weight()
            splits = split_tensor_ste(w_bar, self.geometry.bitsplit)
            cache.w_bar, cache.s_w, cache.splits = w_bar, s_w, splits
            cache.split_operand = self.adapter.split_operand(splits)
            cache.s_w_view = self.adapter.weight_scale_view(s_w)
        cache.weight_ref = layer.weight.data
        cache.scale_ref = layer.weight_quant.scale.data
        return cache

    def invalidate_static(self) -> None:
        """Drop the cached weight state (e.g. after loading a state dict)."""
        self._static.invalidate()

    @property
    def static_cache_info(self) -> Tuple[int, int]:
        """``(hits, misses)`` counters of the parameter-versioned cache."""
        return (self._static.hits, self._static.misses)

    # ------------------------------------------------------------------ #
    # plan compilation
    # ------------------------------------------------------------------ #
    def compile_state(self, dtype: Any = np.float64) -> dict:
        """Snapshot the static state of every stage for a frozen plan.

        Returns the keyword arguments shared by
        :class:`~repro.engine.plan.ConvPlan` and
        :class:`~repro.engine.plan.LinearPlan` (everything except the
        layer-kind extras and the signature).  The geometry contributes the
        structural fields; each stage contributes its own arrays, in stage
        order — so the engine compiles from the same stage list the QAT
        forward executes.

        ``dtype`` selects the floating-point width the snapshot is stored
        (and therefore executed) in.  The Tensor math of the QAT forward is
        always float64; ``np.float32`` plans trade the last digits of parity
        for half the memory traffic at deployment time.
        """
        g = self.geometry
        state = dict(
            out_channels=g.out_channels,
            n_arrays=g.n_arrays,
            rows_per_array=g.rows_per_array,
            n_splits=g.n_splits,
            pad_rows=g.pad_rows,
            valid_mask=g.valid_rows_mask.copy(),
            mapping=g.mapping,
        )
        for stage in self.stages:
            stage.compile_into(state, self.layer, g, self.adapter)
        # Fixed-point requant constants are derived from the float64 scales
        # BEFORE any narrowing cast — the cast below only touches plain float
        # arrays, so the constants ship at full precision in float32 plans.
        # The target dtype is still passed through: the ADC verification
        # replays the float route's rounding in the plan's execution dtype.
        dtype = np.dtype(dtype)
        state["requant"] = compile_requant(state, dtype=dtype)
        if dtype != np.float64:
            for key, value in state.items():
                if isinstance(value, np.ndarray) and value.dtype.kind == "f":
                    state[key] = value.astype(dtype)
        return state


# --------------------------------------------------------------------------- #
# shared layer scaffolding
# --------------------------------------------------------------------------- #
class CIMLayerBase(Module):
    """Common behaviour of :class:`CIMConv2d` and :class:`CIMLinear`.

    Subclasses build their parameters, mapping and quantizers, then call
    :meth:`_finalize_cim` with their :class:`LayerGeometry`; everything else —
    the staged forward, weight tiling/quantization, runtime switches — lives
    here, once.
    """

    # set by subclasses / _finalize_cim
    scheme = None
    cim_config = None
    weight = None
    bias = None
    weight_quant = None
    act_quant = None
    psum_quant = None
    mapping: Optional[WeightMapping] = None

    def _finalize_cim(self, geometry: LayerGeometry) -> None:
        """Install the pipeline and the runtime switches (call last in init)."""
        self.geometry = geometry
        self.pipeline = CIMPipeline(self, geometry)
        self.psum_quant_enabled = self.scheme.quantize_psum
        self.variation = None
        self.recorder = None
        self.layer_name: str = ""

    # ------------------------------------------------------------------ #
    # configuration helpers
    # ------------------------------------------------------------------ #
    def set_psum_quant_enabled(self, enabled: bool) -> None:
        """Toggle partial-sum quantization (used by the two-stage QAT baseline)."""
        self.psum_quant_enabled = bool(enabled)

    def set_variation(self, variation) -> None:
        """Attach (or remove) a memory-cell variation model used at inference."""
        self.variation = variation

    def attach_recorder(self, recorder, layer_name: str = "") -> None:
        """Attach a :class:`~repro.core.psum.PartialSumRecorder` to this layer."""
        self.recorder = recorder
        if layer_name:
            self.layer_name = layer_name

    @property
    def n_arrays(self) -> int:
        """Number of row-direction crossbar arrays of this layer."""
        return self.geometry.n_arrays

    @property
    def n_splits(self) -> int:
        """Number of weight bit-splits of this layer."""
        return self.geometry.n_splits

    @property
    def bitsplit(self):
        """The layer's :class:`~repro.quant.bitsplit.BitSplitConfig`.

        Delegates to the geometry — the single owner of the static structure —
        rather than mirroring it as duplicated layer state.
        """
        return self.geometry.bitsplit

    @property
    def _shift_factors(self) -> np.ndarray:
        return self.geometry.shift_factors

    # ------------------------------------------------------------------ #
    # weight preparation (shared by stages, plans, PTQ and tests)
    # ------------------------------------------------------------------ #
    def _tiled_weight(self) -> Tensor:
        """Return the zero-padded tiled weight of shape ``(A, R, OC)``."""
        g = self.geometry
        w_mat = self.pipeline.adapter.weight_matrix(self.weight)
        if g.pad_rows:
            w_mat = w_mat.pad(((0, g.pad_rows), (0, 0)))
        return w_mat.reshape(g.n_arrays, g.rows_per_array, g.out_channels)

    def _valid_rows_mask(self) -> np.ndarray:
        """Cached ``(A, R, 1)`` mask over rows that hold real weights."""
        return self.geometry.valid_rows_mask

    def quantized_weight(self) -> Tuple[Tensor, Tensor]:
        """Return ``(integer tiled weight, weight scale)``; both differentiable."""
        tiled = self._tiled_weight()
        if not self.weight_quant.is_initialized():
            # exclude zero padding rows from the scale statistics
            self.weight_quant.initialize_from(tiled.data,
                                              valid_mask=self._valid_rows_mask())
        return self.weight_quant.quantize_int(tiled)

    def reconstructed_weight(self) -> Tensor:
        """Fake-quantized weight folded back to the layer's native layout.

        Used by tests and by the dequantization-equivalence analysis: running
        the plain (non-CIM) op with this weight must match the pipeline when
        partial-sum quantization is disabled.
        """
        g = self.geometry
        w_bar, s_w = self.quantized_weight()
        flat = (w_bar * s_w).reshape(g.n_arrays * g.rows_per_array,
                                     g.out_channels)
        return self.pipeline.adapter.matrix_to_weight(flat[:g.in_features, :])

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        """Run the staged CIM pipeline — the layer adds no math of its own."""
        return self.pipeline.run(x)
