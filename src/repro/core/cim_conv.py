"""CIM convolution layer with granularity-aligned weight / partial-sum quantization.

:class:`CIMConv2d` implements the convolution framework of Sec. III-C:

1. quantize the activations (LSQ, unsigned, layer-wise);
2. quantize the weights with LSQ at layer-, array- or column-wise granularity
   *on the tiled weight layout*, so column groups coincide with physical
   crossbar columns;
3. split the integer weights into per-cell bit slices (Fig. 5 "extract a bit
   split"), one slice per ``cell_bits`` of weight precision;
4. tile the unrolled weight matrix across crossbar arrays
   (kernel-preserving or im2col tiling);
5. perform the per-array MAC for all arrays and bit-splits at once — the
   NumPy equivalent of the paper's group convolution with
   ``groups = n_arrays``;
6. quantize the resulting partial sums per layer / array / column
   (the ADC model), optionally after injecting memory-cell variation;
7. dequantize with the folded ``s_w * s_p * s_a`` scale of each column and
   shift-and-add the bit-splits into the layer output.

With partial-sum quantization disabled and no variation, the layer is
numerically identical to an ordinary convolution over the fake-quantized
weights and activations — this equivalence is checked by the test-suite.

Partial sums follow the canonical ``(S, A, N, L, OC)`` axis convention
documented in :mod:`repro.core.psum`.  This forward recomputes quantization,
bit-splitting and tiling every call (as QAT requires); for deployment,
:func:`repro.engine.freeze` swaps the layer into a compiled fast path that
caches all of it and matches this implementation numerically.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..cim.tiling import WeightMapping, build_mapping
from ..cim.variation import VariationModel
from ..nn import functional as F
from ..nn import init
from ..nn.module import Module
from ..nn.tensor import Parameter, Tensor
from ..quant.bitsplit import split_tensor_ste
from ..quant.granularity import Granularity, psum_scale_shape, weight_scale_shape
from ..quant.lsq import LSQQuantizer
from .psum import PartialSumRecorder

__all__ = ["CIMConv2d"]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    return (value, value) if isinstance(value, int) else value


class CIMConv2d(Module):
    """Convolution executed on a simulated CIM macro.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding, bias:
        Standard convolution hyper-parameters.
    scheme:
        :class:`~repro.cim.config.QuantScheme` selecting bit widths,
        granularities and whether scales are learnable.
    cim_config:
        :class:`~repro.cim.config.CIMConfig` describing the crossbar macro.
    quantize_input:
        Quantize the input activations with LSQ (disable for the first layer
        when feeding already-quantized image data).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = False,
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None,
                 quantize_input: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.scheme = scheme or QuantScheme()
        self.cim_config = cim_config or CIMConfig()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.quantize_input = quantize_input

        kh, kw = self.kernel_size
        self.weight = Parameter(init.kaiming_normal((out_channels, in_channels, kh, kw),
                                                    rng=rng), name="weight")
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kh * kw)
            self.bias = Parameter(init.uniform((out_channels,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

        # ---------------- mapping & bit-splitting ----------------------- #
        self.mapping: WeightMapping = build_mapping(
            in_channels, out_channels, self.kernel_size,
            self.scheme.weight_bits, self.cim_config)
        self.bitsplit = self.cim_config.bitsplit(self.scheme.weight_bits)
        self._shift_factors = self.bitsplit.shift_factors

        n_arrays = self.mapping.n_arrays_row
        n_splits = self.bitsplit.n_splits

        # ---------------- quantizers ------------------------------------ #
        w_shape = weight_scale_shape(self.scheme.weight_granularity, n_arrays, out_channels)
        self.weight_quant = LSQQuantizer(self.scheme.weight_bits, signed=True,
                                         scale_shape=w_shape)
        if not self.scheme.learnable_weight_scale:
            self.weight_quant.scale.requires_grad = False

        self.act_quant = LSQQuantizer(self.scheme.act_bits, signed=False,
                                      scale_shape=(1,)) if quantize_input else None

        p_shape = psum_scale_shape(self.scheme.psum_granularity, n_splits, n_arrays,
                                   out_channels)
        self.psum_quant = LSQQuantizer(self.scheme.psum_bits, signed=True,
                                       scale_shape=p_shape)
        if not self.scheme.learnable_psum_scale:
            self.psum_quant.scale.requires_grad = False

        # runtime switches ------------------------------------------------ #
        self.psum_quant_enabled = self.scheme.quantize_psum
        self.variation: Optional[VariationModel] = None
        self.recorder: Optional[PartialSumRecorder] = None
        self.layer_name: str = ""

    # ------------------------------------------------------------------ #
    # configuration helpers
    # ------------------------------------------------------------------ #
    def set_psum_quant_enabled(self, enabled: bool) -> None:
        """Toggle partial-sum quantization (used by the two-stage QAT baseline)."""
        self.psum_quant_enabled = bool(enabled)

    def set_variation(self, variation: Optional[VariationModel]) -> None:
        """Attach (or remove) a memory-cell variation model used at inference."""
        self.variation = variation

    def attach_recorder(self, recorder: Optional[PartialSumRecorder],
                        layer_name: str = "") -> None:
        """Attach a :class:`PartialSumRecorder` receiving this layer's partial sums."""
        self.recorder = recorder
        if layer_name:
            self.layer_name = layer_name

    @property
    def n_arrays(self) -> int:
        return self.mapping.n_arrays_row

    @property
    def n_splits(self) -> int:
        return self.bitsplit.n_splits

    # ------------------------------------------------------------------ #
    # weight preparation
    # ------------------------------------------------------------------ #
    def _tiled_weight(self) -> Tensor:
        """Return the zero-padded tiled weight of shape ``(A, R, OC)``."""
        kh, kw = self.kernel_size
        d = self.in_channels * kh * kw
        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        # (OC, IC, kh, kw) -> (IC, kh, kw, OC) -> (D, OC); row order matches unfold
        w_mat = self.weight.transpose(1, 2, 3, 0).reshape(d, self.out_channels)
        pad_rows = n_arrays * rows - d
        if pad_rows:
            w_mat = w_mat.pad(((0, pad_rows), (0, 0)))
        return w_mat.reshape(n_arrays, rows, self.out_channels)

    def _valid_rows_mask(self) -> np.ndarray:
        """Boolean mask over ``(A, R, 1)`` marking rows that hold real weights."""
        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        mask = np.zeros((n_arrays, rows, 1))
        for tile in self.mapping.tiles:
            mask[tile.index, :tile.rows, :] = 1.0
        return mask

    def quantized_weight(self) -> Tuple[Tensor, Tensor]:
        """Return ``(integer tiled weight, weight scale)``; both differentiable."""
        tiled = self._tiled_weight()
        if not self.weight_quant.is_initialized():
            # exclude zero padding rows from the scale statistics
            self.weight_quant.initialize_from(tiled.data, valid_mask=self._valid_rows_mask())
        return self.weight_quant.quantize_int(tiled)

    def reconstructed_weight(self) -> Tensor:
        """Fake-quantized weight folded back to ``(OC, IC, kh, kw)`` layout.

        Used by tests and by the dequantization-equivalence analysis: running
        a plain convolution with this weight must match the CIM pipeline when
        partial-sum quantization is disabled.
        """
        w_bar, s_w = self.quantized_weight()
        w_hat = w_bar * s_w  # (A, R, OC)
        kh, kw = self.kernel_size
        d = self.in_channels * kh * kw
        flat = w_hat.reshape(self.mapping.n_arrays_row * self.mapping.rows_per_array,
                             self.out_channels)
        flat = flat[:d, :]
        return flat.reshape(self.in_channels, kh, kw, self.out_channels).transpose(3, 0, 1, 2)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        kh, kw = self.kernel_size
        out_h = F.conv_output_size(h, kh, self.stride[0], self.padding[0])
        out_w = F.conv_output_size(w, kw, self.stride[1], self.padding[1])
        length = out_h * out_w

        # 1. activation quantization (integer codes + scale)
        if self.act_quant is not None:
            a_int, s_a = self.act_quant.quantize_int(x)
        else:
            a_int, s_a = x, Tensor(np.ones(1))

        # 2. weight quantization on the tiled layout
        w_bar, s_w = self.quantized_weight()            # (A, R, OC), scale

        # 3. bit-splitting into per-cell slices
        splits = split_tensor_ste(w_bar, self.bitsplit)  # (S, A, R, OC)

        # 4. memory-cell variation (inference-time non-ideality, Eq. 5)
        if self.variation is not None and self.variation.enabled:
            if self.variation.target == "cells":
                # every programmed cell drifts independently
                splits = Tensor(self.variation.perturb(splits.data))
            else:
                # all cells of one weight drift together: scale each slice by
                # the ratio between the varied and the ideal integer weight
                w_var = self.variation.perturb(w_bar.data)
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = np.where(w_bar.data != 0, w_var / w_bar.data, 1.0)
                splits = Tensor(splits.data * ratio[None, ...])

        # 5. unfold activations and tile rows to match the arrays
        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        d = self.in_channels * kh * kw
        cols = F.unfold(a_int, self.kernel_size, self.stride, self.padding)  # (N, D, L)
        pad_rows = n_arrays * rows - d
        if pad_rows:
            cols = cols.pad(((0, 0), (0, pad_rows), (0, 0)))
        cols = cols.reshape(n, n_arrays, rows, length)
        cols = cols.transpose(1, 0, 3, 2)                # (A, N, L, R)
        cols = cols.expand_dims(0)                       # (1, A, N, L, R)

        w_splits = splits.reshape(self.n_splits, n_arrays, 1, rows, self.out_channels)

        # 6. per-array MAC for every bit split (group convolution equivalent)
        psum = cols.matmul(w_splits)                     # (S, A, N, L, OC)

        if self.recorder is not None:
            self.recorder.record(self.layer_name or "cim_conv2d", psum.data)

        # 7. partial-sum quantization (ADC)
        if self.psum_quant_enabled:
            p_bar, s_p = self.psum_quant.quantize_int(psum)
            psum_deq = p_bar * s_p
        else:
            psum_deq = psum

        # 8. dequantize (folded column scale) and shift-and-add over splits/arrays
        # the weight scale has shape (A or 1, 1, OC or 1); align it with the
        # partial-sum layout (S, A, N, L, OC)
        s_w_b = s_w.reshape(1, s_w.shape[0], 1, 1, s_w.shape[2])
        shifts = Tensor(self._shift_factors.reshape(self.n_splits, 1, 1, 1, 1))
        contrib = psum_deq * shifts * s_w_b
        out = contrib.sum(axis=(0, 1))                   # (N, L, OC)
        out = out * s_a
        out = out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)

        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    # ------------------------------------------------------------------ #
    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, scheme={self.scheme.label()}, "
                f"arrays={self.n_arrays}, splits={self.n_splits}")
