"""CIM convolution layer with granularity-aligned weight / partial-sum quantization.

:class:`CIMConv2d` realises the convolution framework of Sec. III-C:
activation LSQ → tiled weight LSQ → bit-splitting → per-array MAC → ADC
partial-sum quantization → folded dequant / shift-and-add.  The stage math
itself lives in :mod:`repro.core.pipeline` — this class only builds the
parameters, quantizers and crossbar mapping, and hands every forward to the
shared :class:`~repro.core.pipeline.CIMPipeline` through a conv
unfold/fold adapter.  The frozen engine (:func:`repro.engine.freeze`)
compiles its deployment plans from the *same* stage list, so QAT and engine
outputs agree by construction.

With partial-sum quantization disabled and no variation, the layer is
numerically identical to an ordinary convolution over the fake-quantized
weights and activations — this equivalence is checked by the test-suite.

Partial sums follow the canonical ``(S, A, N, L, OC)`` axis convention
documented in :mod:`repro.core.psum`.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..cim.tiling import WeightMapping, build_mapping
from ..nn import init
from ..nn.tensor import Parameter
from ..quant.granularity import psum_scale_shape, weight_scale_shape
from ..quant.lsq import LSQQuantizer
from .pipeline import CIMLayerBase, LayerGeometry

__all__ = ["CIMConv2d"]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    return (value, value) if isinstance(value, int) else value


class CIMConv2d(CIMLayerBase):
    """Convolution executed on a simulated CIM macro.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding, bias:
        Standard convolution hyper-parameters.
    scheme:
        :class:`~repro.cim.config.QuantScheme` selecting bit widths,
        granularities and whether scales are learnable.
    cim_config:
        :class:`~repro.cim.config.CIMConfig` describing the crossbar macro.
    quantize_input:
        Quantize the input activations with LSQ (disable for the first layer
        when feeding already-quantized image data).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = False,
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None,
                 quantize_input: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.scheme = scheme or QuantScheme()
        self.cim_config = cim_config or CIMConfig()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.quantize_input = quantize_input

        kh, kw = self.kernel_size
        self.weight = Parameter(init.kaiming_normal((out_channels, in_channels, kh, kw),
                                                    rng=rng), name="weight")
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kh * kw)
            self.bias = Parameter(init.uniform((out_channels,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

        # ---------------- mapping & quantizers --------------------------- #
        self.mapping: WeightMapping = build_mapping(
            in_channels, out_channels, self.kernel_size,
            self.scheme.weight_bits, self.cim_config)
        bitsplit = self.cim_config.bitsplit(self.scheme.weight_bits)

        n_arrays = self.mapping.n_arrays_row
        n_splits = bitsplit.n_splits

        w_shape = weight_scale_shape(self.scheme.weight_granularity, n_arrays, out_channels)
        self.weight_quant = LSQQuantizer(self.scheme.weight_bits, signed=True,
                                         scale_shape=w_shape)
        if not self.scheme.learnable_weight_scale:
            self.weight_quant.scale.requires_grad = False

        self.act_quant = LSQQuantizer(self.scheme.act_bits, signed=False,
                                      scale_shape=(1,)) if quantize_input else None

        p_shape = psum_scale_shape(self.scheme.psum_granularity, n_splits, n_arrays,
                                   out_channels)
        self.psum_quant = LSQQuantizer(self.scheme.psum_bits, signed=True,
                                       scale_shape=p_shape)
        if not self.scheme.learnable_psum_scale:
            self.psum_quant.scale.requires_grad = False

        # ---------------- shared pipeline -------------------------------- #
        self._finalize_cim(LayerGeometry(
            layer_type="conv2d", mapping=self.mapping, bitsplit=bitsplit,
            in_channels=in_channels, kernel_size=self.kernel_size,
            stride=self.stride, padding=self.padding))

    # ------------------------------------------------------------------ #
    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, scheme={self.scheme.label()}, "
                f"arrays={self.n_arrays}, splits={self.n_splits}")
