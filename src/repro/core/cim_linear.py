"""Fully-connected layer executed on a simulated CIM macro.

Identical quantization pipeline to :class:`~repro.core.cim_conv.CIMConv2d` —
literally: both delegate to the shared staged
:class:`~repro.core.pipeline.CIMPipeline`, and differ only in the
unfold/fold adapter pair.  The classifier head of ResNet is mapped onto
crossbar arrays the same way (rows = input features, columns = classes).

Partial sums are laid out as ``(S, A, N, OC)`` — the canonical
``(S, A, N, L, OC)`` convention of :mod:`repro.core.psum` with the spatial
axis dropped.  :func:`repro.engine.freeze` provides the compiled eval fast
path for this layer as well.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..cim.tiling import WeightMapping, build_linear_mapping
from ..nn import init
from ..nn.tensor import Parameter
from ..quant.granularity import psum_scale_shape, weight_scale_shape
from ..quant.lsq import LSQQuantizer
from .pipeline import CIMLayerBase, LayerGeometry

__all__ = ["CIMLinear"]


class CIMLinear(CIMLayerBase):
    """Linear layer with granularity-aligned weight / partial-sum quantization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None,
                 quantize_input: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.scheme = scheme or QuantScheme()
        self.cim_config = cim_config or CIMConfig()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input

        self.weight = Parameter(init.kaiming_uniform((out_features, in_features),
                                                     gain=1.0, rng=rng), name="weight")
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

        self.mapping: WeightMapping = build_linear_mapping(
            in_features, out_features, self.scheme.weight_bits, self.cim_config)
        bitsplit = self.cim_config.bitsplit(self.scheme.weight_bits)

        n_arrays = self.mapping.n_arrays_row
        n_splits = bitsplit.n_splits

        w_shape = weight_scale_shape(self.scheme.weight_granularity, n_arrays, out_features)
        self.weight_quant = LSQQuantizer(self.scheme.weight_bits, signed=True,
                                         scale_shape=w_shape)
        if not self.scheme.learnable_weight_scale:
            self.weight_quant.scale.requires_grad = False

        self.act_quant = LSQQuantizer(self.scheme.act_bits, signed=False,
                                      scale_shape=(1,)) if quantize_input else None

        # psum layout for linear layers: (S, A, N, OC)
        p_shape = psum_scale_shape(self.scheme.psum_granularity, n_splits, n_arrays,
                                   out_features)
        p_shape = (p_shape[0], p_shape[1], p_shape[2], p_shape[4])
        self.psum_quant = LSQQuantizer(self.scheme.psum_bits, signed=True,
                                       scale_shape=p_shape)
        if not self.scheme.learnable_psum_scale:
            self.psum_quant.scale.requires_grad = False

        self._finalize_cim(LayerGeometry(
            layer_type="linear", mapping=self.mapping, bitsplit=bitsplit))

    # ------------------------------------------------------------------ #
    def extra_repr(self) -> str:
        return (f"in={self.in_features}, out={self.out_features}, "
                f"scheme={self.scheme.label()}, arrays={self.n_arrays}, "
                f"splits={self.n_splits}")
