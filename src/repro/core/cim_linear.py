"""Fully-connected layer executed on a simulated CIM macro.

Identical quantization pipeline to :class:`~repro.core.cim_conv.CIMConv2d`
but for a matrix-vector product: the classifier head of ResNet is mapped onto
crossbar arrays the same way (rows = input features, columns = classes).

Partial sums are laid out as ``(S, A, N, OC)`` — the canonical
``(S, A, N, L, OC)`` convention of :mod:`repro.core.psum` with the spatial
axis dropped.  :func:`repro.engine.freeze` provides the compiled eval fast
path for this layer as well.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..cim.config import CIMConfig, QuantScheme
from ..cim.tiling import WeightMapping, build_linear_mapping
from ..cim.variation import VariationModel
from ..nn import init
from ..nn.module import Module
from ..nn.tensor import Parameter, Tensor
from ..quant.bitsplit import split_tensor_ste
from ..quant.granularity import psum_scale_shape, weight_scale_shape
from ..quant.lsq import LSQQuantizer
from .psum import PartialSumRecorder

__all__ = ["CIMLinear"]


class CIMLinear(Module):
    """Linear layer with granularity-aligned weight / partial-sum quantization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 scheme: Optional[QuantScheme] = None,
                 cim_config: Optional[CIMConfig] = None,
                 quantize_input: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.scheme = scheme or QuantScheme()
        self.cim_config = cim_config or CIMConfig()
        self.in_features = in_features
        self.out_features = out_features
        self.quantize_input = quantize_input

        self.weight = Parameter(init.kaiming_uniform((out_features, in_features),
                                                     gain=1.0, rng=rng), name="weight")
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound, rng=rng),
                                  name="bias")
        else:
            self.bias = None

        self.mapping: WeightMapping = build_linear_mapping(
            in_features, out_features, self.scheme.weight_bits, self.cim_config)
        self.bitsplit = self.cim_config.bitsplit(self.scheme.weight_bits)
        self._shift_factors = self.bitsplit.shift_factors

        n_arrays = self.mapping.n_arrays_row
        n_splits = self.bitsplit.n_splits

        w_shape = weight_scale_shape(self.scheme.weight_granularity, n_arrays, out_features)
        self.weight_quant = LSQQuantizer(self.scheme.weight_bits, signed=True,
                                         scale_shape=w_shape)
        if not self.scheme.learnable_weight_scale:
            self.weight_quant.scale.requires_grad = False

        self.act_quant = LSQQuantizer(self.scheme.act_bits, signed=False,
                                      scale_shape=(1,)) if quantize_input else None

        # psum layout for linear layers: (S, A, N, OC)
        p_shape = psum_scale_shape(self.scheme.psum_granularity, n_splits, n_arrays,
                                   out_features)
        p_shape = (p_shape[0], p_shape[1], p_shape[2], p_shape[4])
        self.psum_quant = LSQQuantizer(self.scheme.psum_bits, signed=True,
                                       scale_shape=p_shape)
        if not self.scheme.learnable_psum_scale:
            self.psum_quant.scale.requires_grad = False

        self.psum_quant_enabled = self.scheme.quantize_psum
        self.variation: Optional[VariationModel] = None
        self.recorder: Optional[PartialSumRecorder] = None
        self.layer_name: str = ""

    # ------------------------------------------------------------------ #
    def set_psum_quant_enabled(self, enabled: bool) -> None:
        self.psum_quant_enabled = bool(enabled)

    def set_variation(self, variation: Optional[VariationModel]) -> None:
        self.variation = variation

    def attach_recorder(self, recorder: Optional[PartialSumRecorder],
                        layer_name: str = "") -> None:
        self.recorder = recorder
        if layer_name:
            self.layer_name = layer_name

    @property
    def n_arrays(self) -> int:
        return self.mapping.n_arrays_row

    @property
    def n_splits(self) -> int:
        return self.bitsplit.n_splits

    # ------------------------------------------------------------------ #
    def _tiled_weight(self) -> Tensor:
        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        w_mat = self.weight.transpose()                  # (in, out)
        pad_rows = n_arrays * rows - self.in_features
        if pad_rows:
            w_mat = w_mat.pad(((0, pad_rows), (0, 0)))
        return w_mat.reshape(n_arrays, rows, self.out_features)

    def _valid_rows_mask(self) -> np.ndarray:
        """Boolean mask over ``(A, R, 1)`` marking rows that hold real weights."""
        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        mask = np.zeros((n_arrays, rows, 1))
        for tile in self.mapping.tiles:
            mask[tile.index, :tile.rows, :] = 1.0
        return mask

    def quantized_weight(self) -> Tuple[Tensor, Tensor]:
        tiled = self._tiled_weight()
        if not self.weight_quant.is_initialized():
            self.weight_quant.initialize_from(tiled.data, valid_mask=self._valid_rows_mask())
        return self.weight_quant.quantize_int(tiled)

    def reconstructed_weight(self) -> Tensor:
        w_bar, s_w = self.quantized_weight()
        w_hat = (w_bar * s_w).reshape(self.mapping.n_arrays_row * self.mapping.rows_per_array,
                                      self.out_features)
        return w_hat[:self.in_features, :].transpose()

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input of shape (N, {self.in_features}), got {x.shape}")
        n = x.shape[0]

        if self.act_quant is not None:
            a_int, s_a = self.act_quant.quantize_int(x)
        else:
            a_int, s_a = x, Tensor(np.ones(1))

        w_bar, s_w = self.quantized_weight()             # (A, R, OC)
        splits = split_tensor_ste(w_bar, self.bitsplit)  # (S, A, R, OC)

        if self.variation is not None and self.variation.enabled:
            if self.variation.target == "cells":
                splits = Tensor(self.variation.perturb(splits.data))
            else:
                w_var = self.variation.perturb(w_bar.data)
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = np.where(w_bar.data != 0, w_var / w_bar.data, 1.0)
                splits = Tensor(splits.data * ratio[None, ...])

        n_arrays = self.mapping.n_arrays_row
        rows = self.mapping.rows_per_array
        pad = n_arrays * rows - self.in_features
        a_padded = a_int.pad(((0, 0), (0, pad))) if pad else a_int
        a_tiled = a_padded.reshape(n, n_arrays, rows).transpose(1, 0, 2)  # (A, N, R)
        a_tiled = a_tiled.expand_dims(0)                                  # (1, A, N, R)

        w_splits = splits                                                  # (S, A, R, OC)
        psum = a_tiled.matmul(w_splits)                                    # (S, A, N, OC)

        if self.recorder is not None:
            self.recorder.record(self.layer_name or "cim_linear", psum.data)

        if self.psum_quant_enabled:
            p_bar, s_p = self.psum_quant.quantize_int(psum)
            psum_deq = p_bar * s_p
        else:
            psum_deq = psum

        # weight scale (A or 1, 1, OC or 1) aligned with psum layout (S, A, N, OC)
        s_w_b = s_w.reshape(1, s_w.shape[0], 1, s_w.shape[2])
        shifts = Tensor(self._shift_factors.reshape(self.n_splits, 1, 1, 1))
        out = (psum_deq * shifts * s_w_b).sum(axis=(0, 1)) * s_a           # (N, OC)

        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (f"in={self.in_features}, out={self.out_features}, "
                f"scheme={self.scheme.label()}, arrays={self.n_arrays}, "
                f"splits={self.n_splits}")
