"""``repro.core`` — the paper's contribution.

CIM convolution / linear layers with column-wise weight and partial-sum
quantization, the quantization-scheme registry reproducing related work
(Table I), partial-sum observation, and FP-to-CIM model conversion.
"""

from .cim_conv import CIMConv2d
from .cim_linear import CIMLinear
from .convert import (apply_variation, attach_recorders, cim_layers, convert_to_cim,
                      model_mappings, model_overhead, scale_parameters,
                      set_psum_quant_enabled, weight_parameters)
from .pipeline import (CIMLayerBase, CIMPipeline, ConvAdapter, LayerGeometry,
                       LinearAdapter, varied_splits)
from .psum import ColumnStatistics, PartialSumRecorder
from .requant import (RequantConstants, compile_requant, quantize_multiplier,
                      quantize_multipliers, requantize)
from .schemes import (SCHEME_REGISTRY, SchemeInfo, all_granularity_combinations,
                      get_scheme, related_work_schemes, table1_rows)

__all__ = [
    "CIMConv2d", "CIMLinear",
    "CIMPipeline", "CIMLayerBase", "LayerGeometry",
    "ConvAdapter", "LinearAdapter", "varied_splits",
    "RequantConstants", "compile_requant", "requantize",
    "quantize_multiplier", "quantize_multipliers",
    "PartialSumRecorder", "ColumnStatistics",
    "SCHEME_REGISTRY", "SchemeInfo", "get_scheme", "related_work_schemes",
    "all_granularity_combinations", "table1_rows",
    "convert_to_cim", "cim_layers", "set_psum_quant_enabled", "apply_variation",
    "attach_recorders", "model_mappings", "model_overhead", "scale_parameters",
    "weight_parameters",
]
