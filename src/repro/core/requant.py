"""Fixed-point requantization: the integer-only execution constants.

The frozen plans of :mod:`repro.engine.plan` execute a CIM layer through
*float* dequantization: integer activation codes hit integer weight codes in
a GEMM, and the accumulator is rescaled by folded floating-point multipliers
(``s_a * s_w``, or ``s_a * s_p * 2**(j*cell_bits) * s_w`` on the ADC path).
Real CIM hardware has no float unit between the DAC and the output register —
it rescales with a **fixed-point multiplier**: an ``int32`` mantissa ``M0``
and an arithmetic right ``shift`` such that ``M0 * 2**-shift`` approximates
the real multiplier to ~31 bits.  This module owns that recipe, the same one
the PerClusterQuantization exemplar (and gemmlowp/TFLite before it) uses:

* :func:`quantize_multipliers` turns an array of positive real multipliers
  into ``int32`` mantissas sharing one layer-wide shift, so a whole
  accumulator tensor requantizes with integer multiplies and a single
  rounding shift;
* :func:`requantize` applies ``round_half_away(acc * M0 * 2**-shift)`` in
  pure ``int64`` arithmetic — no Python-float intermediate can round — with
  optional saturation bounds (the ADC clip range, or int8 output bounds);
* :func:`requantize_up` is the sign-uniform variant (``floor(q + 1/2)``,
  i.e. half-toward-+inf): one add and one arithmetic shift, no sign
  handling — the convention the vectorized ADC stage executes, because it
  costs three ``int64`` passes fewer per partial sum and the exhaustive
  per-column verification below makes the tie convention irrelevant (the
  mantissas are *repaired* until the codes match the float oracle exactly);
* :func:`compile_requant` derives a layer's full
  :class:`RequantConstants` — output scale, fixed-point multipliers, the
  ``int32``/``int64`` bias fold and the exact-integer GEMM carrier — from the
  same compile-state snapshot the float plan is built from.

Zero-points: every quantizer in this reproduction is LSQ, i.e. *symmetric*
(signed weights/partial sums, unsigned post-ReLU activations anchored at 0),
so all zero-points are structurally zero.  They are still carried as explicit
schema fields (``z_in`` / ``z_w`` / ``z_out``) so the artifact format states
the assumption instead of hiding it.

Exact-integer GEMM carrier
--------------------------
NumPy's integer ``matmul`` never reaches BLAS, so a literal ``int32`` GEMM
would be an order of magnitude *slower* than the float path.  Instead the
integer operands are carried in ``float32`` (or ``float64`` for very deep
layers): every product and every partial sum of the GEMM is an integer whose
magnitude :func:`compile_requant` bounds at compile time (``acc_bound``)
below the carrier's exact-integer range (``2**24`` / ``2**53``), so the BLAS
GEMM performs *integer arithmetic in IEEE clothing* — bit-exactly the sums an
int32 MAC array would produce — at SIMD float speed.  Everything after the
GEMM (multipliers, bias fold, rounding shift, saturation) is genuine
``int64`` math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "INT32_MIN",
    "INT32_MAX",
    "INT8_MIN",
    "INT8_MAX",
    "MAX_SHIFT",
    "OUTPUT_FRACTION_BITS",
    "quantize_multiplier",
    "quantize_multipliers",
    "requantize",
    "requantize_up",
    "RequantConstants",
    "compile_requant",
]

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1
INT8_MIN = -128
INT8_MAX = 127

#: Largest supported rounding shift.  Keeps ``|acc * M0| + 2**(shift-1)``
#: inside ``int64`` for any int32 accumulator and any int32 mantissa:
#: ``2**31 * 2**31 + 2**54 < 2**63``.
MAX_SHIFT = 55

#: Fractional bits of the integer output code below the layer's natural
#: scale.  The output grid is ``s_a * max(multiplier) * 2**-24``, so the one
#: rounding step of the integer route perturbs the output by at most
#: ``2**-25`` of the natural scale — without this margin a layer's rounding
#: noise lands near the *next* layer's activation-quantizer boundaries often
#: enough to flip codes, and a flipped code cascades at unit scale through
#: the remaining layers (deeper/wider models flip argmaxes).  24 bits puts
#: the rounding term at the same order as the irreducible ``2**-32``-relative
#: mantissa error mass, so more bits would buy nothing.  The encoded
#: multipliers scale *up* by ``2**24`` correspondingly, which only lowers
#: the shared shift by 24; the ``int64`` overflow analysis is unchanged
#: because the mantissas still cap at ``2**31``.
OUTPUT_FRACTION_BITS = 24


def quantize_multipliers(m: np.ndarray) -> Tuple[np.ndarray, int]:
    """Fixed-point encode positive real multipliers with one shared shift.

    Returns ``(M0, shift)`` with ``M0`` an ``int32`` array of the same shape
    as ``m`` and ``shift`` a plain int, such that ``M0 * 2**-shift ~= m``
    element-wise.  The shift is normalized on ``m.max()`` so the largest
    mantissa uses the full 31-bit range (relative error ``<= 2**-31`` for the
    dominant multipliers), then capped at :data:`MAX_SHIFT` so downstream
    ``int64`` accumulation cannot overflow; multipliers more than ``~2**31``
    below the maximum round to a zero mantissa, which is the correct
    fixed-point statement that their contribution is unrepresentable.
    """
    m = np.asarray(m, dtype=np.float64)
    if m.size == 0:
        raise ValueError("cannot quantize an empty multiplier array")
    m_max = float(m.max())
    if not np.isfinite(m_max) or m_max <= 0.0 or float(m.min()) < 0.0:
        raise ValueError(
            "multipliers must be finite, non-negative, with a positive max; "
            f"got range [{float(m.min())!r}, {m_max!r}]")
    shift = int(np.floor(31.0 - np.log2(m_max)))
    while round(m_max * 2.0 ** shift) > INT32_MAX:
        shift -= 1
    if shift < 0:
        raise ValueError(f"multiplier {m_max!r} exceeds the int32 "
                         "fixed-point range (max ~2**31)")
    shift = min(shift, MAX_SHIFT)
    m0 = np.round(m * 2.0 ** shift)
    np.clip(m0, 0, INT32_MAX, out=m0)
    return m0.astype(np.int32), shift


def quantize_multiplier(m: float) -> Tuple[int, int]:
    """Scalar convenience wrapper of :func:`quantize_multipliers`."""
    m0, shift = quantize_multipliers(np.asarray([m], dtype=np.float64))
    return int(m0[0]), shift


def requantize(acc, m0, shift, qmin: Optional[int] = None,
               qmax: Optional[int] = None) -> np.ndarray:
    """Fixed-point rescale: ``round_half_away(acc * M0 * 2**-shift)``.

    Pure ``int64`` arithmetic end to end — the product, the rounding offset
    and the arithmetic shift never pass through a Python float, so results
    are exact even where ``float64`` would lose integer precision (e.g.
    ``acc = M0 = 2**31 - 1, shift = 0``).  Rounding is half-away-from-zero
    (the hardware convention), implemented as ``(|prod| + 2**(shift-1)) >>
    shift`` with the sign reapplied.  ``qmin`` / ``qmax`` optionally saturate
    the result (ADC clip range, int8 output bounds); both or neither must be
    given.

    ``acc``, ``m0`` and ``shift`` broadcast against each other; ``m0`` may be
    a scalar (``m0 = 1`` turns this into a bare rounding shift) and ``shift``
    may be a per-element ``int`` array (the ADC divide uses per-column
    shifts).  Inputs must already fit ``int64`` without overflow of
    ``acc * m0`` — callers bound ``acc`` at compile time (see
    ``RequantConstants.acc_bound``).
    """
    if (qmin is None) != (qmax is None):
        raise ValueError("pass both qmin and qmax, or neither")
    shift_arr = np.asarray(shift, dtype=np.int64)
    if np.any(shift_arr < 0) or np.any(shift_arr > MAX_SHIFT):
        raise ValueError(
            f"shift must be in [0, {MAX_SHIFT}], got "
            f"[{int(shift_arr.min())}, {int(shift_arr.max())}]")
    # int-pure: begin
    prod = np.asarray(acc, dtype=np.int64) * np.asarray(m0, dtype=np.int64)
    # (1 << shift) >> 1 is 2**(shift-1), and 0 when shift == 0 — the
    # shift-0 case degenerates to the identity without a branch.
    half = (np.int64(1) << shift_arr) >> np.int64(1)
    mag = (np.abs(prod) + half) >> shift_arr
    out = np.where(prod < 0, -mag, mag)
    if qmin is not None:
        out = np.clip(out, int(qmin), int(qmax))
    # int-pure: end
    return out


def requantize_up(acc, m0, shift, qmin: Optional[int] = None,
                  qmax: Optional[int] = None) -> np.ndarray:
    """Sign-uniform fixed-point rescale: ``floor(acc * M0 * 2**-shift + 1/2)``.

    Rounds halves toward +inf for *both* signs — ``(prod + 2**(shift-1)) >>
    shift`` with an arithmetic (flooring) right shift, no sign split.  This
    is the convention of the integer ADC stage: it saves the absolute-value /
    sign-restore passes of :func:`requantize` in the hottest loop of the
    integer route, and the exhaustive window verification of
    :func:`_verified_adc_multipliers` repairs the mantissas under *this*
    convention, so the executed codes still match the float oracle exactly.
    Same broadcasting, overflow preconditions and saturation arguments as
    :func:`requantize`.
    """
    if (qmin is None) != (qmax is None):
        raise ValueError("pass both qmin and qmax, or neither")
    shift_arr = np.asarray(shift, dtype=np.int64)
    if np.any(shift_arr < 0) or np.any(shift_arr > MAX_SHIFT):
        raise ValueError(
            f"shift must be in [0, {MAX_SHIFT}], got "
            f"[{int(shift_arr.min())}, {int(shift_arr.max())}]")
    # int-pure: begin
    prod = np.asarray(acc, dtype=np.int64) * np.asarray(m0, dtype=np.int64)
    half = (np.int64(1) << shift_arr) >> np.int64(1)
    out = (prod + half) >> shift_arr
    if qmin is not None:
        out = np.clip(out, int(qmin), int(qmax))
    # int-pure: end
    return out


# --------------------------------------------------------------------------- #
# compiled per-layer constants
# --------------------------------------------------------------------------- #
@dataclass
class RequantConstants:
    """Everything the integer execution route of one layer plan needs.

    The integer route computes ``int64`` accumulator sums on a per-channel
    *output grid* ``s_out`` (the only float constant left — it is applied
    once, at the layer's output-dequant boundary) and reaches that grid
    through the fixed-point multipliers below.  Two mutually exclusive
    routes:

    fused (``psum_quant_enabled`` false)
        ``acc64 = sum_a (cols_a @ w_bar_a) * m0_fused[a]``; one rounding
        ``shift`` at the end maps the accumulator onto the output grid.

    ADC (``psum_quant_enabled`` true)
        per-(split, array) partial sums requantize through ``m0_adc`` /
        ``shift_adc`` into saturated ADC codes, which then reduce through
        ``m0_out`` and the shared output ``shift``.

    ``bias_q`` is the bias pre-folded onto the *accumulator* grid
    (``round(bias / (s_out * 2**-shift))``) so it is added before the single
    rounding shift — the whole layer rounds exactly once.

    The output grid carries :data:`OUTPUT_FRACTION_BITS` fractional bits
    below the layer's natural scale (``s_a * max(multiplier)``), so the
    single output rounding costs ``2**-25`` of the natural scale instead of
    half of it; the output code is correspondingly wider than int8, which is
    free — it lives in the ``int64`` accumulator and is dequantized
    immediately.  ``drift_bound`` is the *declared* worst-case max-abs
    deviation from the float oracle, computed at compile time from the
    actual multiplier/rounding error terms of this layer (see
    :func:`compile_requant`); the differential test harness holds the
    integer route to it.
    """

    shift: int                           # output rounding shift
    s_out: np.ndarray                    # (OC,) float64 output-grid scale
    drift_bound: float = 0.0             # declared max-abs drift vs float
    gemm_dtype: str = "float32"          # exact-integer GEMM carrier dtype
    acc_bound: int = 0                   # compile-time max |per-array acc|
    bias_q: Optional[np.ndarray] = None  # (OC,) int64 accumulator-grid bias
    m0_fused: Optional[np.ndarray] = None   # (A, OC) int32, fused route
    m0_adc: Optional[np.ndarray] = None     # (A, S, OC) int32, ADC divide
    shift_adc: Optional[np.ndarray] = None  # (A, S, OC) per-column ADC shift
    m0_out: Optional[np.ndarray] = None     # (A, S, OC) int32, ADC reduce
    z_in: int = 0                        # zero-points: structurally 0 (LSQ
    z_w: int = 0                         # quantizers are symmetric); stored
    z_out: int = 0                       # so the schema states the assumption

    _ARRAYS = ("s_out", "bias_q", "m0_fused", "m0_adc", "shift_adc", "m0_out")

    # ------------------------------------------------------------------ #
    # (de)serialization — split into JSON scalars + npz arrays
    # ------------------------------------------------------------------ #
    def meta(self) -> dict:
        """JSON-serializable scalar fields (the ``requant`` manifest entry)."""
        return {
            "shift": int(self.shift),
            "gemm_dtype": self.gemm_dtype,
            "acc_bound": int(self.acc_bound),
            "drift_bound": float(self.drift_bound),
            "zero_points": [int(self.z_in), int(self.z_w), int(self.z_out)],
        }

    def arrays(self) -> Dict[str, np.ndarray]:
        """Array payload keyed ``rq_<field>`` (``None`` fields omitted)."""
        return {f"rq_{name}": getattr(self, name) for name in self._ARRAYS
                if getattr(self, name) is not None}

    @classmethod
    def from_parts(cls, meta: dict, arrays: Dict[str, np.ndarray]
                   ) -> "RequantConstants":
        """Inverse of (:meth:`meta`, :meth:`arrays`)."""
        z_in, z_w, z_out = meta.get("zero_points", (0, 0, 0))
        return cls(shift=int(meta["shift"]),
                   gemm_dtype=str(meta.get("gemm_dtype", "float32")),
                   acc_bound=int(meta.get("acc_bound", 0)),
                   drift_bound=float(meta.get("drift_bound", 0.0)),
                   z_in=int(z_in), z_w=int(z_w), z_out=int(z_out),
                   **{name: arrays.get(f"rq_{name}") for name in cls._ARRAYS})


# --------------------------------------------------------------------------- #
# compile-time verification of the ADC stage
# --------------------------------------------------------------------------- #
def _repair_adc_multiplier(p: np.ndarray, oracle: np.ndarray, half: int,
                           m0: int, qmin: int, qmax: int) -> Optional[int]:
    """The int32 mantissa closest to ``m0`` that reproduces ``oracle`` exactly.

    ``oracle[j]`` is the ADC code the float route assigns to integer partial
    sum ``p[j]``.  Under the executed half-up convention
    (:func:`requantize_up`), ``M0`` lands ``p`` on code ``k`` iff
    ``(2k - 1) * 2**(shift-1) <= p * M0 <= (2k + 1) * 2**(shift-1) - 1`` —
    one sign-uniform integer interval per window entry, solved for ``M0`` by
    exact integer ceil/floor division (direction flipping with the sign of
    ``p``).  Entries whose code saturates drop the clipped-away side of the
    product constraint.  Returns ``None`` when the intersection is empty —
    i.e. no single multiply-shift can reproduce the float path's half-even
    tie decisions for this column.
    """
    keep = p != 0                        # p = 0 maps to code 0 under any M0
    p, k = p[keep], oracle[keep]
    a = (2 * k - 1) * half               # product lower bound (inclusive)
    b = (2 * k + 1) * half - 1           # product upper bound (inclusive)
    pos = p > 0
    # ceil(x/p) = -((-x) // p); numpy's // floors for either sign of p
    lo_vals = np.where(pos, -((-a) // p), -((-b) // p))
    hi_vals = np.where(pos, b // p, a // p)
    # k == qmax drops the product's upper bound, k == qmin its lower bound;
    # which side of the *M0* interval that removes depends on sign(p)
    drop_lo = np.where(pos, k == qmin, k == qmax)
    drop_hi = np.where(pos, k == qmax, k == qmin)
    lower = np.where(drop_lo, np.int64(1), lo_vals)
    upper = np.where(drop_hi, np.int64(2) ** 62, hi_vals)
    lo = max(1, int(lower.max()))
    hi = min(INT32_MAX, int(upper.min()))
    if lo > hi:
        return None
    return min(max(m0, lo), hi)


def _verified_adc_multipliers(s_p_cols: np.ndarray, qmin: float, qmax: float,
                              dtype: np.dtype
                              ) -> Tuple[np.ndarray, int, np.ndarray]:
    """ADC mantissas for ``1/s_p``, exhaustively verified per column.

    The float route computes ADC codes as ``round(clip(psum / s_p))`` in the
    plan's ``dtype`` — half-even ties and all.  The executed fixed-point
    divide (:func:`requantize_up`) rounds halves up, so near a tie the two
    can land one code apart.  But the *disagreement domain is enumerable*:
    outside ``|psum / s_p| <= qmax + 0.5`` both paths saturate identically,
    so only a small integer window of partial sums per column can ever
    disagree.  This walks that window, replays the float route's exact
    expression as the oracle, and repairs any mismatching mantissa via
    :func:`_repair_adc_multiplier`.

    Each column gets its *own* shift, not one shared layer-wide: ``s_p``
    spans orders of magnitude across columns (a near-dead weight column
    learns a near-zero partial-sum scale), and under a shared shift the
    ordinary columns would be left with one-bit mantissas.  A shift below 0
    (``1/s_p`` beyond int32) saturates at ``M0 = INT32_MAX, shift = 0`` —
    such a column clips every nonzero partial sum, exactly like the float
    route does.

    Returns ``(m0, shift, unverified)`` with ``m0`` / ``shift`` / ``unverified``
    per-column arrays; ``unverified`` marks the columns whose float tie
    pattern no single mantissa can reproduce (conflicting half-even ties;
    possible but rare) — those columns stay on the nearest mantissa and
    their worst-case one-code slip is charged to the layer's declared drift
    bound instead.
    """
    m = 1.0 / np.asarray(s_p_cols, dtype=np.float64)
    if m.size == 0 or not np.all(np.isfinite(m)) or float(m.min()) <= 0.0:
        raise ValueError("partial-sum scales must be finite and positive")
    shift = np.floor(31.0 - np.log2(m)).astype(np.int64)
    np.clip(shift, 0, MAX_SHIFT, out=shift)
    m0 = np.round(m * np.exp2(shift.astype(np.float64)))
    over = (m0 > INT32_MAX) & (shift > 0)
    while np.any(over):
        shift[over] -= 1
        m0 = np.round(m * np.exp2(shift.astype(np.float64)))
        over = (m0 > INT32_MAX) & (shift > 0)
    m064 = np.clip(m0, 0, INT32_MAX).astype(np.int64)
    p_lo = np.floor((qmin - 0.5) * s_p_cols).astype(np.int64) - 1
    p_hi = np.ceil((qmax + 0.5) * s_p_cols).astype(np.int64) + 1
    n_cols = int(s_p_cols.shape[0])
    width = int((p_hi - p_lo).max()) + 1
    unverified = np.zeros(n_cols, dtype=bool)
    offsets = np.arange(width, dtype=np.int64)[None, :]
    chunk = max(1, (1 << 22) // width)   # bound the window matrix to ~32MiB
    for start in range(0, n_cols, chunk):
        rows = slice(start, min(start + chunk, n_cols))
        p = p_lo[rows, None] + offsets
        in_window = p <= p_hi[rows, None]
        vals = p.astype(dtype) / s_p_cols[rows].astype(dtype)[:, None]
        np.clip(vals, qmin, qmax, out=vals)
        oracle = np.round(vals).astype(np.int64)
        codes = requantize_up(p, m064[rows, None], shift[rows, None],
                              int(qmin), int(qmax))
        mismatch = (codes != oracle) & in_window
        for idx in np.nonzero(mismatch.any(axis=1))[0]:
            col = start + int(idx)
            fixed = _repair_adc_multiplier(
                p[idx][in_window[idx]], oracle[idx][in_window[idx]],
                (1 << int(shift[col])) >> 1, int(m064[col]),
                int(qmin), int(qmax))
            if fixed is None:
                unverified[col] = True
            else:
                m064[col] = fixed
    return m064.astype(np.int32), shift, unverified


# --------------------------------------------------------------------------- #
# compilation from a plan snapshot
# --------------------------------------------------------------------------- #
def _collapse_weight_scale(s_w: np.ndarray, n_arrays: int,
                           out_channels: int) -> np.ndarray:
    """Weight scale broadcast to a dense ``(A, OC)`` grid (its row axis is 1)."""
    flat = s_w.reshape(s_w.shape[0], s_w.shape[2])
    return np.ascontiguousarray(
        np.broadcast_to(flat, (n_arrays, out_channels)).astype(np.float64))


def compile_requant(state: dict,
                    dtype: np.dtype = np.float64
                    ) -> Optional[RequantConstants]:
    """Derive a layer's :class:`RequantConstants` from its compile-state dict.

    ``state`` is the snapshot produced by
    :meth:`repro.core.pipeline.CIMPipeline.compile_state` *before* any
    narrowing dtype cast — the float64 scales are the ground truth the
    fixed-point constants approximate.  ``dtype`` is the float width the
    plan will *execute* in: the ADC verification replays the float route's
    rounding in exactly that dtype.  Returns ``None`` for layers without an
    activation quantizer (a raw-float input has no integer grid, so there is
    nothing for an integer route to execute on; such layers stay on the
    float path even in integer mode).
    """
    if state.get("act_scale") is None:
        return None
    s_a = float(np.asarray(state["act_scale"]).reshape(-1)[0])
    w_bar = np.asarray(state["w_bar"])
    n_arrays, rows_per_array, out_channels = w_bar.shape
    act_amax = max(abs(float(state["act_qmin"])), abs(float(state["act_qmax"])))

    if state["psum_quant_enabled"]:
        splits = np.asarray(state["splits"])
        n_splits = splits.shape[0]
        s_p = np.ascontiguousarray(np.broadcast_to(
            np.asarray(state["s_p"], dtype=np.float64),
            (n_splits, n_arrays, out_channels)))
        shift_factors = np.asarray(state["shift_factors"], dtype=np.float64)
        s_w_grid = _collapse_weight_scale(np.asarray(state["s_w"]),
                                          n_arrays, out_channels)
        # folded dequant multiplier of the float path, (S, A, OC) -> (A, S, OC)
        m_fold = (s_p * shift_factors[:, None, None]
                  * s_w_grid[None, :, :]).transpose(1, 0, 2)
        s_out = (s_a * m_fold.max(axis=(0, 1))              # (OC,)
                 * 2.0 ** -OUTPUT_FRACTION_BITS)
        m0_out, shift = quantize_multipliers(m_fold / (s_out[None, None, :] / s_a))
        s_p_aso = np.ascontiguousarray(s_p.transpose(1, 0, 2))  # (A, S, OC)
        m0_adc_flat, shift_adc_flat, unverified = _verified_adc_multipliers(
            s_p_aso.reshape(-1), float(state["psum_qmin"]),
            float(state["psum_qmax"]), np.dtype(dtype))
        m0_adc = m0_adc_flat.reshape(s_p_aso.shape)
        shift_adc = shift_adc_flat.reshape(s_p_aso.shape)
        m0_fused = None
        operand_amax = float(np.abs(splits).max()) if splits.size else 0.0
        # error budget: the ADC mantissas are verified to reproduce the float
        # route's codes exactly, so only *unverified* columns (conflicting
        # half-even ties, see _verified_adc_multipliers) can slip one code —
        # worth s_a * m_fold each, summed per output channel ...
        if unverified.any():
            slip = np.where(unverified.reshape(s_p_aso.shape), m_fold, 0.0)
            tie_margin = s_a * float(slip.sum(axis=(0, 1)).max())
        else:
            tie_margin = 0.0
        # ... and the 2**-31-relative mantissa error of m0_out acts on the
        # summed |code| mass, bounded by every code saturated at the clip.
        psum_amax = max(abs(float(state["psum_qmin"])),
                        abs(float(state["psum_qmax"])))
        mantissa_mass = n_splits * n_arrays * psum_amax
    else:
        s_w_grid = _collapse_weight_scale(np.asarray(state["s_w"]),
                                          n_arrays, out_channels)
        s_out = (s_a * s_w_grid.max(axis=0)                 # (OC,)
                 * 2.0 ** -OUTPUT_FRACTION_BITS)
        m0_fused, shift = quantize_multipliers(s_w_grid / (s_out / s_a))
        m0_adc, shift_adc, m0_out = None, None, None
        operand_amax = float(np.abs(w_bar).max()) if w_bar.size else 0.0
        tie_margin = 0.0
        mantissa_mass = None  # filled from acc_bound below

    acc_bound = int(rows_per_array * act_amax * operand_amax)
    if mantissa_mass is None:
        mantissa_mass = float(n_arrays * acc_bound)
    # two output-grid steps (one rounding shift + slack for the bias fold's
    # own rounding) plus the mantissa representation error scaled onto the
    # output grid, plus the ADC tie margin.
    drift_bound = (float(s_out.max())
                   * (2.0 + mantissa_mass * 2.0 ** -(shift + 1))
                   + tie_margin)
    if acc_bound < 2 ** 24:
        gemm_dtype = "float32"
    elif acc_bound < 2 ** 30:
        gemm_dtype = "float64"
    else:  # pragma: no cover - needs a ~billion-count accumulator geometry
        raise ValueError(
            f"per-array accumulator bound {acc_bound} leaves no int64 "
            "headroom for the fixed-point multipliers (need < 2**30)")
    if n_arrays * max(acc_bound, 1) >= 2 ** 32:  # pragma: no cover - ditto
        raise ValueError(
            f"{n_arrays} arrays x accumulator bound {acc_bound} could "
            "overflow the int64 layer accumulator")

    bias = state.get("bias")
    bias_q = (None if bias is None else
              np.round(np.asarray(bias, dtype=np.float64)
                       / s_out * 2.0 ** shift).astype(np.int64))
    return RequantConstants(shift=shift, s_out=np.asarray(s_out, np.float64),
                            drift_bound=drift_bound,
                            gemm_dtype=gemm_dtype, acc_bound=acc_bound,
                            bias_q=bias_q, m0_fused=m0_fused,
                            m0_adc=m0_adc, shift_adc=shift_adc, m0_out=m0_out)
