"""Partial-sum observation utilities and the canonical partial-sum layout.

.. _psum-axes:

Partial-sum axis convention
---------------------------
Every partial-sum tensor in this codebase uses the axis order

    ``(S, A, N, L, OC)``

* ``S``  — weight bit-split index (``n_splits`` slices of ``cell_bits`` each;
  :mod:`repro.quant.bitsplit`);
* ``A``  — crossbar-array index along the word-line (row) direction of the
  tiling (:mod:`repro.cim.tiling`);
* ``N``  — batch (sample) index;
* ``L``  — flattened spatial output position, ``L = out_h * out_w``;
* ``OC`` — output channel, i.e. the physical ADC column group.

Linear layers have no spatial extent, so their partial sums are
``(S, A, N, OC)`` — the same convention with the ``L`` axis dropped
(:class:`PartialSumRecorder` re-inserts a singleton ``L`` so both layer kinds
share one code path).  One *physical ADC column* corresponds to a fixed
``(split, array, output channel)`` triple; column-wise quantities (partial-sum
scales, Fig. 6 distributions, dequant multipliers) are therefore indexed by
``(S, A, OC)``.  The scale-shape helpers in :mod:`repro.quant.granularity`,
the layers in :mod:`repro.core`, and the compiled plans in
:mod:`repro.engine.plan` all follow this convention.

Recording
---------
The distribution analysis of Fig. 6 (integer-valued column-wise partial-sum
distributions under layer-wise vs column-wise weight quantization) needs
access to the raw partial sums produced inside a CIM layer before they are
quantized.  :class:`PartialSumRecorder` is a lightweight sink that CIM layers
write into when recording is enabled; the frozen inference engine falls back
to the recording path whenever a recorder is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["PartialSumRecorder", "ColumnStatistics"]


@dataclass
class ColumnStatistics:
    """Summary statistics of the integer partial sums of one ADC column."""

    column_index: int
    minimum: float
    maximum: float
    mean: float
    std: float
    dynamic_range: float

    @classmethod
    def from_values(cls, column_index: int, values: np.ndarray) -> "ColumnStatistics":
        """Summarise one column's recorded partial sums (empty columns give zeros)."""
        values = np.asarray(values, dtype=np.float64)
        vmin = float(values.min()) if values.size else 0.0
        vmax = float(values.max()) if values.size else 0.0
        return cls(
            column_index=column_index,
            minimum=vmin,
            maximum=vmax,
            mean=float(values.mean()) if values.size else 0.0,
            std=float(values.std()) if values.size else 0.0,
            dynamic_range=vmax - vmin,
        )


@dataclass
class PartialSumRecorder:
    """Collects integer partial sums emitted by CIM layers.

    ``samples_per_column`` bounds memory: only the first N partial sums per
    column are kept verbatim (statistics still use everything recorded).
    """

    samples_per_column: int = 4096
    _columns: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def record(self, layer_name: str, psums: np.ndarray) -> None:
        """Record partial sums of shape ``(S, A, N, L, OC)`` (or ``(S, A, N, OC)``)."""
        psums = np.asarray(psums)
        if psums.ndim == 4:  # linear layer: add a singleton spatial axis
            psums = psums[:, :, :, None, :]
        n_splits, n_arrays, batch, length, oc = psums.shape
        # flatten samples, keep per physical column = (split, array, oc)
        per_column = psums.transpose(0, 1, 4, 2, 3).reshape(n_splits * n_arrays * oc, -1)
        existing = self._columns.setdefault(layer_name, [])
        if not existing:
            for column in per_column:
                existing.append(column[: self.samples_per_column].copy())
        else:
            for idx, column in enumerate(per_column):
                kept = existing[idx]
                room = self.samples_per_column - kept.size
                if room > 0:
                    existing[idx] = np.concatenate([kept, column[:room]])

    # ------------------------------------------------------------------ #
    def layers(self) -> List[str]:
        """Names of the layers that have recorded partial sums so far."""
        return list(self._columns.keys())

    def column_values(self, layer_name: str) -> List[np.ndarray]:
        """Raw recorded partial sums per column for one layer."""
        if layer_name not in self._columns:
            raise KeyError(f"no partial sums recorded for layer {layer_name!r}")
        return self._columns[layer_name]

    def column_statistics(self, layer_name: str) -> List[ColumnStatistics]:
        """Per-column :class:`ColumnStatistics` over the recorded partial sums."""
        return [ColumnStatistics.from_values(i, vals)
                for i, vals in enumerate(self.column_values(layer_name))]

    def dynamic_range(self, layer_name: str) -> np.ndarray:
        """Per-column dynamic range (max - min) of the integer partial sums."""
        return np.array([s.dynamic_range for s in self.column_statistics(layer_name)])

    def clear(self) -> None:
        """Drop all recorded partial sums (e.g. between evaluation sweeps)."""
        self._columns.clear()
