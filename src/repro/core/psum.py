"""Partial-sum observation utilities.

The distribution analysis of Fig. 6 (integer-valued column-wise partial-sum
distributions under layer-wise vs column-wise weight quantization) needs
access to the raw partial sums produced inside a CIM layer before they are
quantized.  :class:`PartialSumRecorder` is a lightweight sink that CIM layers
write into when recording is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["PartialSumRecorder", "ColumnStatistics"]


@dataclass
class ColumnStatistics:
    """Summary statistics of the integer partial sums of one ADC column."""

    column_index: int
    minimum: float
    maximum: float
    mean: float
    std: float
    dynamic_range: float

    @classmethod
    def from_values(cls, column_index: int, values: np.ndarray) -> "ColumnStatistics":
        values = np.asarray(values, dtype=np.float64)
        vmin = float(values.min()) if values.size else 0.0
        vmax = float(values.max()) if values.size else 0.0
        return cls(
            column_index=column_index,
            minimum=vmin,
            maximum=vmax,
            mean=float(values.mean()) if values.size else 0.0,
            std=float(values.std()) if values.size else 0.0,
            dynamic_range=vmax - vmin,
        )


@dataclass
class PartialSumRecorder:
    """Collects integer partial sums emitted by CIM layers.

    ``samples_per_column`` bounds memory: only the first N partial sums per
    column are kept verbatim (statistics still use everything recorded).
    """

    samples_per_column: int = 4096
    _columns: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def record(self, layer_name: str, psums: np.ndarray) -> None:
        """Record partial sums of shape ``(S, A, N, L, OC)`` (or ``(S, A, N, OC)``)."""
        psums = np.asarray(psums)
        if psums.ndim == 4:  # linear layer: add a singleton spatial axis
            psums = psums[:, :, :, None, :]
        n_splits, n_arrays, batch, length, oc = psums.shape
        # flatten samples, keep per physical column = (split, array, oc)
        per_column = psums.transpose(0, 1, 4, 2, 3).reshape(n_splits * n_arrays * oc, -1)
        existing = self._columns.setdefault(layer_name, [])
        if not existing:
            for column in per_column:
                existing.append(column[: self.samples_per_column].copy())
        else:
            for idx, column in enumerate(per_column):
                kept = existing[idx]
                room = self.samples_per_column - kept.size
                if room > 0:
                    existing[idx] = np.concatenate([kept, column[:room]])

    # ------------------------------------------------------------------ #
    def layers(self) -> List[str]:
        return list(self._columns.keys())

    def column_values(self, layer_name: str) -> List[np.ndarray]:
        """Raw recorded partial sums per column for one layer."""
        if layer_name not in self._columns:
            raise KeyError(f"no partial sums recorded for layer {layer_name!r}")
        return self._columns[layer_name]

    def column_statistics(self, layer_name: str) -> List[ColumnStatistics]:
        return [ColumnStatistics.from_values(i, vals)
                for i, vals in enumerate(self.column_values(layer_name))]

    def dynamic_range(self, layer_name: str) -> np.ndarray:
        """Per-column dynamic range (max - min) of the integer partial sums."""
        return np.array([s.dynamic_range for s in self.column_statistics(layer_name)])

    def clear(self) -> None:
        self._columns.clear()
