"""Quantization-scheme registry reproducing Table I of the paper.

Each entry captures the quantization configuration of a related work (weight
granularity, partial-sum granularity, PTQ vs QAT, learnable scales, one- vs
two-stage training) plus the paper's proposed scheme ("ours").  The
experiment drivers iterate over this registry to regenerate Fig. 7, Fig. 8,
Fig. 10 and Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..cim.config import QuantScheme
from ..quant.granularity import Granularity

__all__ = ["SchemeInfo", "SCHEME_REGISTRY", "get_scheme", "related_work_schemes",
           "all_granularity_combinations", "table1_rows"]


@dataclass(frozen=True)
class SchemeInfo:
    """A named quantization scheme with its citation metadata."""

    key: str
    citation: str
    scheme: QuantScheme
    training: str        # "ptq", "qat", "two-stage-qat"

    def describe(self) -> str:
        s = self.scheme
        return (f"{self.citation}: W={s.weight_granularity.value}, "
                f"P={s.psum_granularity.value}, training={self.training}, "
                f"learnable scales: W={s.learnable_weight_scale} P={s.learnable_psum_scale}")


def _scheme(name: str, wg: str, pg: str, *, learn_w: bool, learn_p: bool,
            scratch: bool, two_stage: bool, weight_bits: int = 4, act_bits: int = 4,
            psum_bits: int = 4, description: str = "") -> QuantScheme:
    return QuantScheme(
        name=name,
        weight_bits=weight_bits,
        act_bits=act_bits,
        psum_bits=psum_bits,
        weight_granularity=Granularity.parse(wg),
        psum_granularity=Granularity.parse(pg),
        quantize_psum=True,
        learnable_weight_scale=learn_w,
        learnable_psum_scale=learn_p,
        train_from_scratch=scratch,
        two_stage=two_stage,
        description=description,
    )


#: Table I of the paper, keyed by a short identifier.
SCHEME_REGISTRY: Dict[str, SchemeInfo] = {
    "kim": SchemeInfo(
        key="kim",
        citation="Kim [5] (JETC 2022)",
        scheme=_scheme("kim", "layer", "layer", learn_w=False, learn_p=True,
                       scratch=False, two_stage=False,
                       description="Layer-wise weights and partial sums, PTQ, "
                                   "learnable scale only for partial sums."),
        training="ptq",
    ),
    "bai": SchemeInfo(
        key="bai",
        citation="Bai [6], [7] (TCAS-II 2023 / TCAD 2024)",
        scheme=_scheme("bai", "array", "array", learn_w=False, learn_p=True,
                       scratch=False, two_stage=False,
                       description="Array-wise weights and partial sums, PTQ."),
        training="ptq",
    ),
    "saxena_date22": SchemeInfo(
        key="saxena_date22",
        citation="Saxena [8] (DATE 2022)",
        scheme=_scheme("saxena_date22", "layer", "array", learn_w=True, learn_p=True,
                       scratch=True, two_stage=True,
                       description="Layer-wise weights (QAT from scratch), array-wise "
                                   "partial sums quantized in a second training stage."),
        training="two-stage-qat",
    ),
    "saxena_islped23": SchemeInfo(
        key="saxena_islped23",
        citation="Saxena [9] (ISLPED 2023)",
        scheme=_scheme("saxena_islped23", "layer", "column", learn_w=True, learn_p=True,
                       scratch=True, two_stage=True,
                       description="Layer-wise weights, column-wise partial sums, "
                                   "two-stage QAT."),
        training="two-stage-qat",
    ),
    "ours": SchemeInfo(
        key="ours",
        citation="Ours (this paper)",
        scheme=_scheme("ours", "column", "column", learn_w=True, learn_p=True,
                       scratch=True, two_stage=False,
                       description="Column-wise weights and partial sums, learnable "
                                   "scales for both, single-stage QAT from scratch."),
        training="qat",
    ),
}


def get_scheme(key: str, **overrides) -> QuantScheme:
    """Return a registry scheme, optionally overriding bit widths etc."""
    if key not in SCHEME_REGISTRY:
        raise KeyError(f"unknown scheme {key!r}; known: {sorted(SCHEME_REGISTRY)}")
    scheme = SCHEME_REGISTRY[key].scheme
    return scheme.with_(**overrides) if overrides else scheme


def related_work_schemes(weight_bits: int = 4, act_bits: int = 4,
                         psum_bits: int = 4) -> Dict[str, QuantScheme]:
    """All registry schemes re-parameterised to the requested bit widths."""
    return {key: info.scheme.with_(weight_bits=weight_bits, act_bits=act_bits,
                                   psum_bits=psum_bits)
            for key, info in SCHEME_REGISTRY.items()}


def all_granularity_combinations(weight_bits: int = 4, act_bits: int = 4,
                                 psum_bits: int = 4,
                                 quantize_psum: bool = True) -> List[QuantScheme]:
    """The full 3x3 grid of weight x partial-sum granularities (Fig. 7 / Fig. 8)."""
    combos = []
    for wg in Granularity:
        for pg in Granularity:
            combos.append(QuantScheme(
                name=f"{wg.value}_w__{pg.value}_p",
                weight_bits=weight_bits, act_bits=act_bits, psum_bits=psum_bits,
                weight_granularity=wg, psum_granularity=pg,
                quantize_psum=quantize_psum,
                learnable_weight_scale=True, learnable_psum_scale=True,
                train_from_scratch=True, two_stage=False))
    return combos


def table1_rows() -> List[Dict[str, str]]:
    """Rows of Table I as dictionaries (used by the Table I benchmark)."""
    rows = []
    for key, info in SCHEME_REGISTRY.items():
        s = info.scheme
        rows.append({
            "scheme": info.citation,
            "weight_granularity": s.weight_granularity.value,
            "weight_train_from_scratch": "yes" if (s.train_from_scratch and not s.two_stage) or key == "ours"
            else ("yes" if s.train_from_scratch else "no (PTQ)"),
            "weight_learnable_scale": "yes" if s.learnable_weight_scale else "no",
            "psum_granularity": s.psum_granularity.value,
            "psum_train_from_scratch": "no (PTQ)" if not s.train_from_scratch
            else ("no (2-stage QAT)" if s.two_stage else "yes"),
            "psum_learnable_scale": "yes" if s.learnable_psum_scale else "no",
        })
    return rows
