"""Reproduction of "Column-wise Quantization of Weights and Partial Sums for
Accurate and Efficient Compute-In-Memory Accelerators" (DATE 2025).

Sub-packages
------------
``repro.nn``
    NumPy autograd / neural-network substrate (stands in for PyTorch).
``repro.quant``
    Granularity-aware quantizers: LSQ with learnable per-column scales,
    PTQ observers, weight bit-splitting.
``repro.cim``
    Behavioural compute-in-memory crossbar model: array tiling, ADC/DAC,
    device variation, dequantization-overhead cost model.
``repro.core``
    The paper's contribution: CIM convolution / linear layers with
    column-wise weight and partial-sum quantization, and the quantization
    scheme registry reproducing related work.
``repro.engine``
    Frozen inference engine: compiled per-layer plans and the
    ``freeze`` / ``thaw`` eval fast path.
``repro.models``
    ResNet-20 / ResNet-18 and reduced variants.
``repro.data``
    Synthetic CIFAR-like / ImageNet-like datasets and loaders.
``repro.training``
    One-stage and two-stage QAT trainers, PTQ calibration, metrics.
``repro.analysis``
    Experiment drivers reproducing every table and figure of the paper.
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401
from . import quant  # noqa: F401
from . import cim  # noqa: F401
from . import core  # noqa: F401
from . import engine  # noqa: F401
from . import models  # noqa: F401
from . import data  # noqa: F401
from . import training  # noqa: F401
from . import analysis  # noqa: F401

__all__ = ["nn", "quant", "cim", "core", "engine", "models", "data", "training",
           "analysis", "__version__"]
