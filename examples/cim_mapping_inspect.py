"""Inspect how a convolution layer is mapped onto CIM crossbar arrays.

Walks through the paper's convolution framework step by step for a single
layer: weight quantization (column-wise), bit-splitting, the
kernel-preserving array tiling vs the conventional im2col tiling, and a
single-crossbar MAC cross-checked against the behavioural
:class:`repro.cim.CrossbarArray` model.

Run:
    python examples/cim_mapping_inspect.py
"""

import numpy as np

from repro.analysis import print_table
from repro.cim import (ADCModel, CIMConfig, CrossbarArray, QuantScheme, build_mapping,
                       rows_utilization)
from repro.core import CIMConv2d
from repro.nn import Tensor
from repro.quant import split_signed


def main() -> None:
    cim = CIMConfig(array_rows=128, array_cols=128, cell_bits=2, adc_bits=4)
    scheme = QuantScheme(weight_bits=4, act_bits=4, psum_bits=4,
                         weight_granularity="column", psum_granularity="column")

    # a mid-network ResNet-20 layer: 32 input channels, 64 output channels, 3x3
    layer = CIMConv2d(32, 64, 3, padding=1, scheme=scheme, cim_config=cim,
                      rng=np.random.default_rng(0))

    print("=== array tiling (Sec. III-C) ===")
    rows = []
    for strategy in ("kernel_preserving", "im2col"):
        mapping = build_mapping(32, 64, (3, 3), scheme.weight_bits, cim, strategy=strategy)
        rows.append({
            "strategy": strategy,
            "row_tiles": mapping.n_arrays_row,
            "col_tiles": mapping.col_tiles,
            "rows_per_array": mapping.rows_per_array,
            "row_utilization": round(rows_utilization(mapping), 3),
            "kernels_kept_intact": strategy == "kernel_preserving",
        })
    print_table(rows)

    print("\n=== column-wise weight quantization and bit-splitting ===")
    w_bar, s_w = layer.quantized_weight()
    splits = split_signed(w_bar.data, layer.bitsplit)
    print(f"tiled integer weight shape (arrays, rows, columns): {w_bar.shape}")
    print(f"weight scale shape (one per crossbar column):        {s_w.shape}")
    print(f"bit-splits: {layer.n_splits} x {layer.bitsplit.cell_bits}-bit cells, "
          f"shift factors {layer.bitsplit.shift_factors.tolist()}")

    print("\n=== one crossbar array, cross-checked against CrossbarArray ===")
    array_index, split_index = 0, 0
    crossbar = CrossbarArray.from_config(cim)
    crossbar.program(splits[split_index, array_index])
    x = np.abs(np.random.default_rng(1).normal(size=(1, 32, 8, 8)))
    a_int, s_a = layer.act_quant.quantize_int(Tensor(x))
    # drive one im2col column (the first output pixel's receptive field)
    from repro.nn import functional as F
    cols = F.unfold(a_int, (3, 3), 1, 1).data[0, :, 0]
    wordline = cols[:layer.mapping.tiles[array_index].rows]
    analog = crossbar.mac(wordline)
    adc = ADCModel(bits=cim.adc_bits)
    scale = layer.psum_quant.scale.data.reshape(layer.n_splits, layer.n_arrays, -1)[
        split_index, array_index] if layer.psum_quant.is_initialized() else np.ones(64)
    codes = adc.convert(analog, np.maximum(np.abs(analog).max() / adc.qrange.qmax, 1e-8))
    print(f"analog column currents (first 8 columns):  {np.round(analog[:8], 2)}")
    print(f"ADC codes               (first 8 columns):  {codes[:8]}")
    print(f"array occupancy: {crossbar.occupancy():.2%}")

    print("\n=== full layer forward on the CIM pipeline ===")
    out = layer(Tensor(x))
    print(f"input {x.shape} -> output {out.shape}")
    print(f"dequantization overhead of this layer: "
          f"{layer.n_splits * layer.mapping.n_arrays * layer.mapping.channels_per_array} "
          f"multiplications (column-wise partial sums)")


if __name__ == "__main__":
    main()
