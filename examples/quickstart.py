"""Quickstart: train a CIM-quantized CNN with column-wise weight and
partial-sum quantization (the paper's scheme) on a synthetic CIFAR-10-like
task, compare it against the full-precision baseline, and then deploy it
through the frozen inference engine — ending with a saved model-level
artifact reloaded and served without any QAT objects.

Every CIM layer runs the shared staged execution pipeline
(``repro.core.pipeline``): activation LSQ -> tiled weight LSQ -> bit-split ->
per-array MAC -> ADC partial-sum quant -> folded dequant/shift-add.
``engine.freeze`` compiles deployment plans from that same stage list, so the
frozen model is numerically identical to the QAT forward — just faster.
``engine.compile_model_plan`` then captures the whole frozen network (layer
plans + folded BatchNorm + the inter-layer op graph) into one ``.npz`` that
``engine.load_plan`` turns back into a runnable executor (see
docs/engine.md).

Run:
    python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import engine
from repro.analysis import print_table
from repro.cim import CIMConfig, QuantScheme
from repro.core import cim_layers
from repro.data import standard_augmentation, synthetic_cifar10, test_loader, train_loader
from repro.models import resnet8
from repro.nn import Tensor
from repro.training import QATTrainer, TrainerConfig, evaluate


def main() -> None:
    # 1. data: a synthetic CIFAR-10 stand-in (offline substitute, see DESIGN.md)
    dataset = synthetic_cifar10(image_size=16, train_samples=512, test_samples=256)
    train = train_loader(dataset, batch_size=32, transform=standard_augmentation())
    test = test_loader(dataset, batch_size=64)

    # 2. hardware: a 64x64 crossbar with 1-bit cells and 3-bit ADCs
    cim = CIMConfig(array_rows=64, array_cols=64, cell_bits=1, adc_bits=3)

    # 3. the paper's quantization scheme: column-wise weights AND partial sums,
    #    learnable LSQ scales, single-stage QAT from scratch
    ours = QuantScheme(name="ours", weight_bits=3, act_bits=3, psum_bits=3,
                       weight_granularity="column", psum_granularity="column")

    results = []
    for label, scheme in [("full-precision", None), ("ours (column/column)", ours)]:
        model = resnet8(num_classes=10, scheme=scheme, cim_config=cim,
                        width_multiplier=0.5, seed=0)
        trainer = QATTrainer(model, train, test,
                             TrainerConfig(epochs=5, lr=0.05, log_every=1))
        print(f"\n=== training {label} ===")
        history = trainer.fit()
        stats = evaluate(model, test)
        results.append({
            "model": label,
            "params": model.num_parameters(),
            "best_test_top1": round(history.best_test_accuracy, 4),
            "final_test_top1": round(stats["top1"], 4),
            "train_seconds": round(history.total_seconds, 1),
        })

    # 4. deployment: freeze the trained CIM model.  Each layer's staged
    #    pipeline is compiled into a static plan (integer weights, bit-splits,
    #    folded dequant scales) and eval batches take the fused fast path.
    print("\n=== freezing the CIM model for deployment ===")
    engine.freeze(model)
    for name, layer in cim_layers(model):
        print(f"  {name}: stages "
              f"{[stage.name for stage in layer.pipeline.stages]}")
        break  # every CIM layer shares the same stage list
    frozen_stats = evaluate(model, test)

    results.append({
        "model": "ours (frozen engine)",
        "params": model.num_parameters(),
        "best_test_top1": results[-1]["best_test_top1"],
        "final_test_top1": round(frozen_stats["top1"], 4),
        "train_seconds": 0.0,
    })

    # 5. shipping: capture the frozen network into a single model-level
    #    artifact, reload it, and serve a stream through the batched runner.
    #    The loaded plan is plain data — no QAT model, layers or quantizers
    #    are constructed, and float64 artifacts match the frozen model
    #    bit for bit.
    print("\n=== saving / reloading the deployment artifact ===")
    model.eval()  # evaluate() leaves models in train mode; artifacts are eval-only
    images, _ = next(iter(test))
    images = Tensor(images)
    reference = model(images).data
    with tempfile.TemporaryDirectory() as workdir:
        artifact = os.path.join(workdir, "quickstart_plan.npz")
        engine.save_model_plan(engine.compile_model_plan(model), artifact)
        print(f"  wrote {os.path.basename(artifact)} "
              f"({os.path.getsize(artifact) / 1024:.0f} KiB)")
        deployed = engine.load_plan(artifact)
    print(f"  loaded: {deployed.n_cim_layers} CIM layer plans, "
          f"{len(deployed.nodes) - 1} graph ops, dtype={deployed.dtype}")
    runner = engine.InferenceRunner(deployed, batch_size=16)
    served = runner.predict(images.data)
    drift = float(np.abs(served - reference).max())
    print(f"  served {runner.stats.samples} samples at "
          f"{runner.stats.throughput:.0f} samples/s, "
          f"max |logit drift| vs frozen model = {drift:.1e}")
    assert drift <= 1e-10, "deployed artifact must match the frozen model"

    engine.thaw(model)  # lossless: back to the QAT layers

    print()
    print_table(results, title="Quickstart summary")
    assert abs(results[-1]["final_test_top1"] - results[-2]["final_test_top1"]) < 1e-9, \
        "frozen engine must reproduce the QAT eval accuracy exactly"


if __name__ == "__main__":
    main()
