"""HTTP serving walkthrough: mount artifacts on a socket, talk JSON to them.

Builds a calibrated TinyCNN, saves it as a model-plan artifact, and mounts
it twice on one :class:`~repro.engine.NetServer` — once on the float route
and once integer-requantized — to show the full network serving story:

1. **multi-model tenancy** — each ``POST /v1/models/{name}/predict`` routes
   to its own dynamically-batched ``PlanServer``; the two mounts share
   nothing but the artifact file;
2. **wire contract** — requests are plain JSON (``{"inputs": [[...], ...]}``),
   responses carry outputs plus a per-request queue/compute timing split;
   hostile bodies come back as structured 400/413/422 errors without
   disturbing the healthy mount;
3. **observability** — ``GET /metrics`` exposes admission counters
   (``accepted + rejected == offered``) and latency histograms per model;
4. **graceful shutdown** — ``close()`` drains in-flight work before the
   socket goes away.

The long-lived equivalent is ``tools/serve.py``, which wraps the same
``NetServer`` in a CLI with SIGTERM draining (see ``make serve-demo``).

Run:
    python examples/serve_http.py
"""

import http.client
import json
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad


def build_artifact(path: str) -> np.ndarray:
    """Calibrate a small TinyCNN and save it as one model-plan artifact."""
    rng = np.random.default_rng(0)
    model = TinyCNN(num_classes=4, width=8,
                    scheme=QuantScheme(weight_bits=4, act_bits=4, psum_bits=4),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=4),
                    seed=1)
    x = np.abs(rng.normal(size=(8, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    engine.save_model_plan(plan, path)
    return x


def post(net: engine.NetServer, path: str, payload) -> tuple:
    """One JSON POST against the live server; returns (status, body dict)."""
    conn = http.client.HTTPConnection(net.host, net.port, timeout=30)
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    conn.request("POST", path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    decoded = json.loads(response.read().decode())
    conn.close()
    return response.status, decoded


def get(net: engine.NetServer, path: str) -> dict:
    """One GET against the live server; returns the decoded JSON body."""
    conn = http.client.HTTPConnection(net.host, net.port, timeout=30)
    conn.request("GET", path)
    decoded = json.loads(conn.getresponse().read().decode())
    conn.close()
    return decoded


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_serve_http_")
    artifact = os.path.join(workdir, "tiny_plan.npz")
    x = build_artifact(artifact)
    print(f"artifact: {artifact}")

    with engine.NetServer() as net:          # port=0 -> ephemeral, bound now
        net.add_model("tiny-float", artifact, mode="float", compile=True,
                      n_shards=2, max_batch=8, max_wait_ms=1.0, queue_size=64)
        net.add_model("tiny-int", artifact, mode="int",
                      n_shards=1, max_batch=8, queue_size=32)
        print(f"serving on {net.url}")
        print(f"health: {get(net, '/healthz')}")

        # ordinary prediction on each mount
        for name in ("tiny-float", "tiny-int"):
            status, body = post(net, f"/v1/models/{name}/predict",
                                {"inputs": x[:4].tolist()})
            outputs = np.asarray(body["outputs"])
            timing = body["timing_ms"]
            print(f"{name}: status={status} outputs={outputs.shape} "
                  f"queue={timing['queue']:.2f}ms "
                  f"compute={timing['compute']:.2f}ms")

        # the error surface: malformed JSON and an unrunnable shape, each a
        # structured error that leaves the server healthy
        status, body = post(net, "/v1/models/tiny-float/predict", b"{broken")
        print(f"malformed body -> {status} ({body['error']['reason']})")
        status, body = post(net, "/v1/models/tiny-float/predict",
                            {"inputs": [[1.0, 2.0]]})
        print(f"wrong shape    -> {status} ({body['error']['reason']})")

        # metrics: conservation + latency split, per model
        report = get(net, "/metrics")
        for name, model_report in sorted(report["models"].items()):
            counters = model_report["requests"]
            latency = model_report["latency"]["total"]
            print(f"{name}: offered={counters['offered']} "
                  f"accepted={counters['accepted']} "
                  f"rejected={counters['rejected']} "
                  f"p50={latency['p50_ms']:.2f}ms p99={latency['p99_ms']:.2f}ms")
    print("server drained and closed")


if __name__ == "__main__":
    main()
