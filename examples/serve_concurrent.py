"""Concurrent serving walkthrough: one artifact, many simultaneous callers.

Builds a calibrated ResNet-8 CIM model, ships it as a model-level engine
artifact, and then serves it three ways to show what each serving layer
buys:

1. **per-request** — the no-scheduler baseline: a single
   ``InferenceRunner`` executing every request the moment it arrives
   (batch of one, the PR-3 deployment story);
2. **dynamically batched** — a ``PlanServer`` whose scheduler coalesces the
   same requests into fat batches across 2 shard executors (flush on
   ``max_batch`` or ``max_wait_ms``);
3. **batched + cached** — the same server with the LRU result cache turned
   on, serving a second traffic wave in which a quarter of the requests
   repeat earlier inputs.

All three produce bit-identical responses; the throughput gap is the point.
Clients submit from several threads at once to show that `submit` is safe to
call concurrently and that futures keep request/response pairing intact.

Run:
    python examples/serve_concurrent.py
"""

import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import resnet8
from repro.nn import Tensor
from repro.nn.tensor import no_grad


def build_artifact(path: str) -> None:
    """Calibrate a reduced ResNet-8 and save it as one model-plan artifact."""
    rng = np.random.default_rng(0)
    model = resnet8(num_classes=8,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                                       weight_granularity="column",
                                       psum_granularity="column"),
                    cim_config=CIMConfig(array_rows=64, array_cols=64,
                                         cell_bits=1, adc_bits=3),
                    width_multiplier=0.5, seed=0)
    calib = np.abs(rng.normal(size=(4, 3, 14, 14)))
    with no_grad():
        model(Tensor(calib))
    model.eval()
    engine.freeze(model, calibrate=Tensor(calib))
    engine.save_model_plan(engine.compile_model_plan(model), path)


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "resnet8_plan.npz")
        build_artifact(path)
        plan = engine.load_plan_cached(path)       # hot reloads share this parse

        rng = np.random.default_rng(1)
        requests = np.abs(rng.normal(size=(64, 3, 14, 14)))
        repeats = [int(rng.integers(0, 64)) for _ in range(16)]

        # 1. per-request baseline -------------------------------------- #
        runner = engine.InferenceRunner(plan, batch_size=1)
        start = time.perf_counter()
        baseline = [runner.predict(sample[None])[0] for sample in requests]
        baseline += [runner.predict(requests[i][None])[0] for i in repeats]
        t_baseline = time.perf_counter() - start

        # 2 + 3. dynamically batched, sharded, cached ------------------ #
        with engine.PlanServer(path, n_shards=2, max_batch=16,
                               max_wait_ms=2.0,
                               result_cache_entries=128) as server:
            start = time.perf_counter()
            # several client threads submitting concurrently
            futures = [None] * len(requests)

            def client(lo: int, hi: int) -> None:
                for i in range(lo, hi):
                    futures[i] = server.submit(requests[i])

            clients = [threading.Thread(target=client, args=(lo, lo + 16))
                       for lo in range(0, 64, 16)]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            wave_one = [future.result(timeout=30.0) for future in futures]
            # second wave: repeated inputs resolve from the result cache
            wave_two = [server.submit(requests[i]).result(timeout=30.0)
                        for i in repeats]
            t_server = time.perf_counter() - start
            report = server.stats_report()

        # responses are bit-identical across the three paths ----------- #
        by_index = {tuple(requests[i].ravel()[:4]): row
                    for i, row in zip(range(64), wave_one)}
        for i, row in enumerate(wave_one):
            assert np.array_equal(row, baseline[i])
        for j, i in enumerate(repeats):
            assert np.array_equal(wave_two[j], baseline[64 + j])
            assert np.array_equal(wave_two[j], by_index[tuple(requests[i].ravel()[:4])])

        n = len(baseline)
        print(f"requests                 : {n} (64 unique + 16 repeats)")
        print(f"per-request runner       : {t_baseline * 1e3:7.1f} ms "
              f"({n / t_baseline:7.1f} req/s)")
        print(f"server (2 shards, cache) : {t_server * 1e3:7.1f} ms "
              f"({n / t_server:7.1f} req/s)  "
              f"{t_baseline / t_server:.2f}x")
        sched = report["scheduler"]
        print(f"scheduler                : {sched['batches']} batches, "
              f"mean size {sched['mean_batch']:.1f}, "
              f"high water {sched['queue_high_water']}")
        print(f"result cache             : {report['cache']['hits']} hits / "
              f"{report['cache']['misses']} misses")
        print(f"shard load               : "
              f"{[shard['samples'] for shard in report['shards']]}")


if __name__ == "__main__":
    main()
