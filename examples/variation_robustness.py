"""Variation robustness: the experiment behind Fig. 10 of the paper.

Trains the paper's column/column scheme and the layer/column baseline
(Saxena [9]), then evaluates both under increasing log-normal memory-cell
variation (Eq. 5) with Monte-Carlo sampling.

Run:
    python examples/variation_robustness.py [--epochs N] [--trials K]
"""

import argparse

from repro.analysis import (build_experiment_model, build_loaders, format_series,
                            print_table, run_variation_sweep)
from repro.training import QATTrainer, TrainerConfig, reduced_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--trials", type=int, default=3, help="Monte-Carlo trials per sigma")
    args = parser.parse_args()

    config = reduced_experiment("cifar10").reduced(
        image_size=12, train_samples=256, test_samples=128, batch_size=32)
    train, test = build_loaders(config)

    models = {}
    for name, (wg, pg) in {"ours (column/column)": ("column", "column"),
                           "Saxena [9] (layer/column)": ("layer", "column")}.items():
        print(f"training {name} ...")
        model = build_experiment_model(config, config.scheme(wg, pg), seed=0)
        QATTrainer(model, train, test,
                   TrainerConfig(epochs=args.epochs, lr=config.lr)).fit()
        models[name] = model

    sigmas = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)
    points = run_variation_sweep(models, test, sigmas=sigmas, trials=args.trials, seed=0)

    print()
    print_table([p.row() for p in points],
                title="Fig. 10 — accuracy under memory-cell variation")
    for name in models:
        series = [p for p in points if p.scheme == name]
        print()
        print(format_series(name, [p.sigma for p in series],
                            [p.mean_top1 for p in series], "sigma", "top1"))


if __name__ == "__main__":
    main()
