"""Granularity sweep: the experiment behind Fig. 7 / Fig. 8 of the paper.

Trains the same reduced ResNet under every weight x partial-sum granularity
combination, then prints accuracy together with the dequantization overhead
of each combination — showing that column/column improves accuracy *without*
costing more than layer/column.

Run:
    python examples/granularity_sweep.py [--epochs N]
"""

import argparse

from repro.analysis import (build_loaders, compute_overhead_table, print_table,
                            run_scheme)
from repro.core import all_granularity_combinations
from repro.training import reduced_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4, help="training epochs per scheme")
    parser.add_argument("--dataset", default="cifar10",
                        choices=["cifar10", "cifar100", "imagenet"])
    args = parser.parse_args()

    config = reduced_experiment(args.dataset)
    config = config.reduced(image_size=12, train_samples=256, test_samples=128,
                            num_classes=min(config.num_classes, 10), batch_size=32)
    train, test = build_loaders(config)

    overhead = {(p.weight_granularity, p.psum_granularity): p
                for p in compute_overhead_table(config)}

    rows = []
    for scheme in all_granularity_combinations(config.weight_bits, config.act_bits,
                                               config.psum_bits):
        print(f"training {scheme.label()} ...")
        result = run_scheme(config, scheme, train, test, training="qat",
                            epochs=args.epochs, seed=0)
        point = overhead[(scheme.weight_granularity.value, scheme.psum_granularity.value)]
        rows.append({
            "weight_granularity": scheme.weight_granularity.value,
            "psum_granularity": scheme.psum_granularity.value,
            "top1": round(result.top1, 4),
            "dequant_mults_per_layer": round(point.dequant_mults_per_layer_mean, 1),
            "train_seconds": round(result.train_seconds, 1),
        })

    rows.sort(key=lambda r: (r["dequant_mults_per_layer"], r["weight_granularity"]))
    print()
    print_table(rows, title="Accuracy vs granularity vs dequantization overhead (Fig. 7 / Fig. 8)")


if __name__ == "__main__":
    main()
