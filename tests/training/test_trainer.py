"""One-stage QAT trainer."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.data import test_loader as make_test_loader, train_loader as make_train_loader
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.training import QATTrainer, TrainerConfig, evaluate, top1_accuracy, topk_accuracy
from repro.training.metrics import Stopwatch, TrainingHistory


@pytest.fixture
def loaders(tiny_dataset):
    return (make_train_loader(tiny_dataset, batch_size=16),
            make_test_loader(tiny_dataset, batch_size=32))


class TestMetrics:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top1_accuracy(logits, np.array([1, 0])) == 1.0
        assert top1_accuracy(logits, np.array([0, 0])) == 0.5

    def test_topk(self):
        logits = np.array([[0.5, 0.3, 0.2, 0.0]])
        assert topk_accuracy(logits, np.array([2]), k=3) == 1.0
        assert topk_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_evaluate_counts_samples(self, loaders):
        _train, test = loaders
        model = TinyCNN(num_classes=4, width=4)
        stats = evaluate(model, test)
        assert stats["samples"] == 32
        assert 0.0 <= stats["top1"] <= 1.0

    def test_history_properties(self):
        history = TrainingHistory(test_accuracy=[0.1, 0.5, 0.4],
                                  epoch_seconds=[1.0, 1.0, 1.0],
                                  train_loss=[3, 2, 1])
        assert history.best_test_accuracy == 0.5
        assert history.final_test_accuracy == 0.4
        assert history.total_seconds == 3.0
        assert history.epochs_to_reach(0.45) == 2
        assert history.epochs_to_reach(0.9) is None
        assert history.summary()["epochs"] == 3

    def test_stopwatch(self):
        with Stopwatch() as timer:
            sum(range(1000))
        assert timer.seconds >= 0.0


class TestQATTrainer:
    def test_fp_training_reduces_loss(self, loaders):
        train, test = loaders
        model = TinyCNN(num_classes=4, width=6, seed=0)
        trainer = QATTrainer(model, train, test, TrainerConfig(epochs=3, lr=0.05))
        history = trainer.fit()
        assert history.epochs == 3
        assert history.train_loss[-1] < history.train_loss[0]
        assert len(history.learning_rate) == 3
        assert history.learning_rate[0] > history.learning_rate[-1]  # cosine decay

    def test_quantized_training_runs_and_improves_over_chance(self, loaders):
        train, test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = TinyCNN(num_classes=4, width=6, seed=0,
                        scheme=QuantScheme(weight_bits=4, act_bits=4, psum_bits=4),
                        cim_config=cfg)
        trainer = QATTrainer(model, train, test, TrainerConfig(epochs=4, lr=0.05))
        history = trainer.fit()
        assert history.train_accuracy[-1] > 0.3  # well above 25% chance on train set

    def test_scale_parameters_get_their_own_group(self, loaders):
        train, test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = TinyCNN(num_classes=4, width=4, scheme=QuantScheme(), cim_config=cfg)
        trainer = QATTrainer(model, train, test, TrainerConfig(epochs=1, lr=0.1,
                                                               scale_lr_factor=0.1))
        assert len(trainer.optimizer.param_groups) == 2
        assert trainer.optimizer.param_groups[1]["lr"] == pytest.approx(0.01)
        assert trainer.optimizer.param_groups[1]["weight_decay"] == 0.0

    def test_per_group_hyperparams_are_single_source_of_truth(self, loaders):
        """Regression: lr / weight_decay must live only in the param groups.

        The builder used to pass them both per-group and as SGD top-level
        kwargs; if a group ever dropped its own value, the duplicated default
        would silently apply (e.g. weight decay on LSQ scales).  Now the
        optimizer defaults must stay at the SGD built-ins and every group must
        carry explicit values derived from the trainer config."""
        train, test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = TinyCNN(num_classes=4, width=4, scheme=QuantScheme(), cim_config=cfg)
        config = TrainerConfig(epochs=1, lr=0.3, weight_decay=0.123,
                               scale_lr_factor=0.5)
        trainer = QATTrainer(model, train, test, config)
        groups = trainer.optimizer.param_groups
        assert groups[0]["lr"] == pytest.approx(0.3)
        assert groups[0]["weight_decay"] == pytest.approx(0.123)
        assert groups[1]["lr"] == pytest.approx(0.15)
        assert groups[1]["weight_decay"] == 0.0
        # the config values must not be duplicated into the optimizer defaults
        assert trainer.optimizer.defaults["weight_decay"] == 0.0
        assert trainer.optimizer.defaults["lr"] != config.lr
        assert trainer.optimizer.lr == pytest.approx(0.3)

    def test_epoch_callback_invoked(self, loaders):
        train, test = loaders
        calls = []
        model = TinyCNN(num_classes=4, width=4)
        QATTrainer(model, train, test, TrainerConfig(epochs=2, lr=0.01),
                   epoch_callback=lambda trainer, epoch: calls.append(epoch)).fit()
        assert calls == [0, 1]

    def test_fit_epochs_override(self, loaders):
        train, test = loaders
        model = TinyCNN(num_classes=4, width=4)
        history = QATTrainer(model, train, test, TrainerConfig(epochs=5, lr=0.01)).fit(epochs=1)
        assert history.epochs == 1

    def test_evaluate_method(self, loaders):
        train, test = loaders
        model = TinyCNN(num_classes=4, width=4)
        trainer = QATTrainer(model, train, test, TrainerConfig(epochs=1, lr=0.01))
        assert "top1" in trainer.evaluate()
