"""Two-stage QAT baseline trainer."""

import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.core import cim_layers
from repro.data import test_loader as make_test_loader, train_loader as make_train_loader
from repro.models import TinyCNN
from repro.training import (TrainerConfig, TwoStageConfig, TwoStageQATTrainer,
                            train_two_stage)


@pytest.fixture
def loaders(tiny_dataset):
    return (make_train_loader(tiny_dataset, batch_size=16),
            make_test_loader(tiny_dataset, batch_size=32))


@pytest.fixture
def quantized_model():
    cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
    return TinyCNN(num_classes=4, width=4,
                   scheme=QuantScheme(weight_granularity="layer",
                                      psum_granularity="column"),
                   cim_config=cfg)


class TestTwoStage:
    def test_config_totals(self):
        assert TwoStageConfig(stage1_epochs=8, stage2_epochs=4).total_epochs == 12

    def test_history_merged_with_stage_boundary(self, loaders, quantized_model):
        train, test = loaders
        trainer = TwoStageQATTrainer(quantized_model, train, test,
                                     base_config=TrainerConfig(epochs=3, lr=0.05),
                                     stages=TwoStageConfig(stage1_epochs=2, stage2_epochs=1))
        history = trainer.fit()
        assert history.epochs == 3
        assert history.stage_boundaries == [2]
        assert len(history.epoch_seconds) == 3

    def test_psum_quant_enabled_after_training(self, loaders, quantized_model):
        train, test = loaders
        TwoStageQATTrainer(quantized_model, train, test,
                           base_config=TrainerConfig(epochs=2, lr=0.05),
                           stages=TwoStageConfig(1, 1)).fit()
        assert all(layer.psum_quant_enabled for _, layer in cim_layers(quantized_model))

    def test_stage2_uses_smaller_lr(self, loaders, quantized_model):
        train, test = loaders
        trainer = TwoStageQATTrainer(quantized_model, train, test,
                                     base_config=TrainerConfig(epochs=2, lr=0.1),
                                     stages=TwoStageConfig(1, 1, stage2_lr_factor=0.1))
        history = trainer.fit()
        # first stage starts at 0.1, second stage starts at 0.01
        assert history.learning_rate[0] == pytest.approx(0.1)
        assert history.learning_rate[1] == pytest.approx(0.01)

    def test_convenience_wrapper(self, loaders, quantized_model):
        train, test = loaders
        history = train_two_stage(quantized_model, train, test,
                                  stage1_epochs=1, stage2_epochs=1, lr=0.05)
        assert history.epochs == 2
