"""Experiment configurations (Table II)."""

import pytest

from repro.quant import Granularity
from repro.training import (PAPER_EXPERIMENTS, available_experiments, paper_experiment,
                            reduced_experiment)


class TestTable2:
    def test_available(self):
        assert available_experiments() == ["cifar10", "cifar100", "imagenet"]
        with pytest.raises(KeyError):
            paper_experiment("mnist")

    def test_cifar10_settings(self):
        cfg = paper_experiment("cifar10")
        assert cfg.model == "resnet20"
        assert (cfg.weight_bits, cfg.act_bits, cfg.psum_bits) == (3, 3, 1)
        assert cfg.cell_bits == 1                 # 1 bit per cell
        assert cfg.array_size == 128
        assert cfg.epochs == 200

    def test_cifar100_settings(self):
        cfg = paper_experiment("cifar100")
        assert cfg.model == "resnet20"
        assert (cfg.weight_bits, cfg.act_bits, cfg.psum_bits) == (4, 4, 3)
        assert cfg.cell_bits == 2                 # 2 bits per cell
        assert cfg.array_size == 128

    def test_imagenet_settings(self):
        cfg = paper_experiment("imagenet")
        assert cfg.model == "resnet18"
        assert (cfg.weight_bits, cfg.act_bits, cfg.psum_bits) == (3, 3, 2)
        assert cfg.cell_bits == 3                 # 3 bits per cell -> single split
        assert cfg.array_size == 256
        assert cfg.epochs == 90

    def test_cim_config_derivation(self):
        cfg = paper_experiment("cifar100").cim_config()
        assert cfg.array_rows == 128 and cfg.cell_bits == 2
        assert cfg.n_splits(4) == 2

    def test_scheme_derivation(self):
        scheme = paper_experiment("cifar10").scheme("layer", "column")
        assert scheme.weight_bits == 3 and scheme.psum_bits == 1
        assert scheme.weight_granularity is Granularity.LAYER
        assert scheme.psum_granularity is Granularity.COLUMN

    def test_trainer_config(self):
        trainer_cfg = paper_experiment("cifar10").trainer_config(epochs=5)
        assert trainer_cfg.epochs == 5
        assert trainer_cfg.lr == paper_experiment("cifar10").lr


class TestReduced:
    @pytest.mark.parametrize("name", ["cifar10", "cifar100", "imagenet"])
    def test_reduced_preserves_bit_widths(self, name):
        full, reduced = paper_experiment(name), reduced_experiment(name)
        assert reduced.weight_bits == full.weight_bits
        assert reduced.act_bits == full.act_bits
        assert reduced.psum_bits == full.psum_bits
        assert reduced.cell_bits == full.cell_bits

    @pytest.mark.parametrize("name", ["cifar10", "cifar100", "imagenet"])
    def test_reduced_is_smaller(self, name):
        full, reduced = paper_experiment(name), reduced_experiment(name)
        assert reduced.train_samples < full.train_samples
        assert reduced.epochs < full.epochs
        assert reduced.image_size <= full.image_size

    def test_tiny_smaller_than_reduced(self):
        reduced = reduced_experiment("cifar10")
        tiny = reduced_experiment("cifar10", tiny=True)
        assert tiny.train_samples < reduced.train_samples
        assert tiny.epochs <= reduced.epochs

    def test_reduced_name_suffix(self):
        assert reduced_experiment("cifar10").name.endswith("-reduced")
