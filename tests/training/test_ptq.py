"""Post-training quantization pipeline (Kim / Bai baselines)."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.core import cim_layers
from repro.data import test_loader as make_test_loader, train_loader as make_train_loader
from repro.models import TinyCNN
from repro.training import (PTQConfig, QATTrainer, TrainerConfig, calibrate_model,
                            evaluate, ptq_quantize)


@pytest.fixture
def loaders(tiny_dataset):
    return (make_train_loader(tiny_dataset, batch_size=16),
            make_test_loader(tiny_dataset, batch_size=32))


@pytest.fixture
def pretrained_fp(loaders):
    train, test = loaders
    model = TinyCNN(num_classes=4, width=6, seed=0)
    QATTrainer(model, train, test, TrainerConfig(epochs=4, lr=0.05)).fit()
    return model


class TestCalibration:
    def test_calibration_initialises_all_scales(self, loaders, pretrained_fp):
        train, _test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        scheme = QuantScheme(weight_granularity="array", psum_granularity="array",
                             learnable_weight_scale=False)
        model = ptq_quantize(pretrained_fp, scheme, cfg, calibration=train)
        for _name, layer in cim_layers(model):
            assert layer.weight_quant.is_initialized()
            assert layer.psum_quant.is_initialized()
            assert np.all(layer.psum_quant.scale.data > 0)
            assert not layer.weight_quant.scale.requires_grad
            assert not layer.psum_quant.scale.requires_grad
            assert layer.psum_quant_enabled

    def test_calibration_report_structure(self, loaders, pretrained_fp):
        import copy
        train, _test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        from repro.core import convert_to_cim
        model = convert_to_cim(copy.deepcopy(pretrained_fp), QuantScheme(), cfg)
        report = calibrate_model(model, train, PTQConfig(calibration_batches=2))
        assert len(report) == 3
        for entry in report.values():
            assert entry["weight_scale_mean"] > 0
            assert entry["psum_scale_mean"] > 0

    def test_percentile_observer_option(self, loaders, pretrained_fp):
        import copy
        train, _test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        from repro.core import convert_to_cim
        model = convert_to_cim(copy.deepcopy(pretrained_fp), QuantScheme(), cfg)
        report = calibrate_model(model, train,
                                 PTQConfig(calibration_batches=2, observer="percentile"))
        assert len(report) == 3

    def test_unknown_observer_raises(self):
        with pytest.raises(ValueError):
            PTQConfig(observer="entropy").make_observer(4, True, (1,))


class TestAccuracy:
    def test_high_precision_ptq_preserves_fp_accuracy(self, loaders, pretrained_fp):
        import copy
        train, test = loaders
        fp_acc = evaluate(pretrained_fp, test)["top1"]
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=4)
        scheme = QuantScheme(weight_bits=8, act_bits=8, psum_bits=8,
                             weight_granularity="column", psum_granularity="column")
        model = ptq_quantize(copy.deepcopy(pretrained_fp), scheme, cfg, calibration=train)
        ptq_acc = evaluate(model, test)["top1"]
        assert ptq_acc >= fp_acc - 0.15

    def test_aggressive_psum_quant_degrades_more_than_mild(self, loaders, pretrained_fp):
        import copy
        train, test = loaders
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        accuracies = {}
        for psum_bits in (1, 6):
            scheme = QuantScheme(weight_bits=4, act_bits=4, psum_bits=psum_bits,
                                 weight_granularity="layer", psum_granularity="layer")
            model = ptq_quantize(copy.deepcopy(pretrained_fp), scheme, cfg, calibration=train)
            accuracies[psum_bits] = evaluate(model, test)["top1"]
        assert accuracies[6] >= accuracies[1]
