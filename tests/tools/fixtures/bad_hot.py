"""Seeded hot-path allocation violations — fixture, never imported."""

import numpy as np

_HOT_FUNCTIONS = ("registry_hot",)


def hot_path(func):
    """Stand-in decorator; the pass matches the name lexically."""
    return func


@hot_path
def decorated_hot(values):
    """One of each banned construct inside a decorated hot function."""
    buffer = np.zeros(len(values))  # seed: hot-allocation
    squares = [v * v for v in values]  # seed: hot-comprehension

    def inner(v):  # seed: hot-closure
        return v + 1

    return buffer, squares, inner


def registry_hot(block):
    """Hot via the module-level _HOT_FUNCTIONS registry."""
    return np.concatenate([block, block])  # seed: hot-allocation


def cold_helper(n):
    """Not registered hot: allocating here is fine."""
    return np.zeros(n)
