"""Unbalanced int-pure markers — all three defect variants — fixture."""

FIRST = 1
# int-pure: begin
SECOND = 2
# int-pure: begin  seed: marker-unbalanced
THIRD = 3
# int-pure: end
# int-pure: end  seed: marker-unbalanced
# int-pure: begin  seed: marker-unbalanced
FOURTH = 4
