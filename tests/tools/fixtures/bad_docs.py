"""Seeded thread-safety doc-contract violations — fixture, never imported."""

import threading


class Counter:
    """Owns a lock; the public methods below violate the doc contract."""

    def __init__(self):
        """Single-threaded construction."""
        self._lock = threading.Lock()
        self.value = 0

    def increment(self):  # seed: missing-docstring
        with self._lock:
            self.value += 1

    def get(self):  # seed: thread-safety-undocumented
        """Return the current value."""
        with self._lock:
            return self.value

    def _helper(self):
        """Private: exempt from the contract."""
        return self.value


class _Private:
    """Private class: exempt even though it owns a lock."""

    def __init__(self):
        self._lock = threading.Lock()

    def poke(self):
        return 1
