"""Clean lock usage the analyzer must accept — fixture, never imported.

Covers the ``ordered()`` two-peer-lock helper, caller-must-hold tags,
dotted external guards, ``Condition``-aliases-lock resolution, and an
inline ``analyze: allow`` waiver.  ``lock-discipline`` must report zero
findings here; the waived read lands in ``result.waived``.
"""

import threading

from repro.engine.locking import ordered


class GoodPeer:
    """Peer merge through ordered(): no unordered-acquisition."""

    _GUARDED_BY = {"total": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def merge(self, other: "GoodPeer"):
        """Thread-safe: both peer locks held via id()-ordered ordered()."""
        with ordered(self._lock, other._lock):
            self.total += other.total

    def snapshot(self):
        """:guarded-by: _lock"""
        return self.total

    def racy_total(self):
        """Deliberately lock-free telemetry read, waived inline."""
        # analyze: allow[lock-discipline] -- racy-but-monotonic telemetry read
        return self.total


class CondAlias:
    """Condition constructed on the lock aliases to it."""

    _GUARDED_BY = {"queue": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self.queue = []

    def pop(self):
        """Thread-safe: waits under the condition, which wraps the lock."""
        with self._ready:
            return self.queue.pop()


class ExternalGood:
    """State guarded by another object's lock, declared with a dotted spec."""

    _GUARDED_BY = {"shared": "owner._lock"}

    def __init__(self, owner):
        self.owner = owner
        self.shared = 0

    def bump(self):
        """:guarded-by: owner._lock"""
        self.shared += 1
