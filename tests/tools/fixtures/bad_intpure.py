"""Seeded int-purity violations — fixture, never imported."""

import numpy as np


def leaky_requantize(acc, x):
    """Every float-reintroduction rule inside one marked region."""
    # int-pure: begin
    scale = 0.5  # seed: float-literal
    halved = acc / 2  # seed: float-division
    root = np.sqrt(x)  # seed: float-call
    boxed = float(acc[0])  # seed: float-call
    widened = x.astype(np.float32)  # seed: float-dtype
    summed = np.multiply(x, x, dtype="float64")  # seed: float-dtype
    # int-pure: end
    return scale, halved, root, boxed, widened, summed


def clean_outside(acc):
    """Float math outside any marked region is out of scope."""
    return acc / 2.0
