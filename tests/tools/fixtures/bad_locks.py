"""Seeded lock-discipline violations — analyzer fixture, never imported.

Each violating line carries a trailing ``seed: <rule>`` comment; the
test-suite maps those comments to expected ``(rule, line)`` findings, so
hand-maintained line numbers never drift.  This file lives under
``tests/`` on purpose: the lint gate only analyzes ``src/repro``.
"""

import threading

ORDER_LOCK = threading.Lock()


class MissingLock:
    """Declares guarded state with a lock the class never constructs."""

    _GUARDED_BY = {"items": "_nolock"}  # seed: unknown-lock

    def __init__(self):
        self.items = []


class Reacquire:
    """Caller-must-hold tag violated by re-acquiring the same lock."""

    _GUARDED_BY = {"count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def unguarded_read(self):
        """Reads guarded state with no lock held."""
        return self.count  # seed: unguarded-access

    def deadlock(self):
        """:guarded-by: _lock"""
        with self._lock:  # seed: lock-reacquire
            self.count += 1

    def bad_tag(self):  # seed: unknown-lock
        """:guarded-by: _ghost"""
        return 0


class Peer:
    """Two same-label peer locks taken in arbitrary order."""

    _GUARDED_BY = {"total": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def merge_bad(self, other: "Peer"):
        """Nested same-label acquisition bypassing the ordered() helper."""
        with self._lock:
            with other._lock:  # seed: unordered-acquisition
                self.total += 1


class ExternalBad:
    """Dotted guard spec accessed without the matching docstring tag."""

    _GUARDED_BY = {"shared": "owner._lock"}

    def __init__(self, owner):
        self.owner = owner
        self.shared = 0

    def bump(self):
        """Touches the externally-guarded attribute with no tag."""
        self.shared += 1  # seed: unguarded-access


class CycleMaker:
    """Feeds a two-node cycle into the project acquisition graph."""

    def __init__(self):
        self._a = threading.Lock()

    def forward(self):
        """Class lock, then module lock."""
        with self._a:
            with ORDER_LOCK:
                pass

    def backward(self):
        """Module lock, then class lock: the inversion."""
        with ORDER_LOCK:
            with self._a:
                pass
