"""A waiver without a ``-- reason`` clause is itself a finding — fixture."""


def noop():
    """No-op carrying a reasonless waiver."""
    # analyze: allow[lock-discipline]  seed: allow-missing-reason
    return None
