"""Make the repo root importable so ``tools.analyze`` resolves.

The suite runs with ``PYTHONPATH=src`` (see the Makefile); the analyzer
package lives at the repo root (``tools/``), two directory levels up
from this file, so it is inserted into ``sys.path`` here.
"""

import os
import sys

_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
