"""End-to-end tests for the ``tools.analyze`` static analyzer.

Every pass is proven *live* against a seeded-violation fixture and
proven *quiet* against the real engine tree.  Each violating fixture
line carries a trailing ``seed: <rule>`` comment that these tests
resolve to expected ``(rule, line)`` pairs, so assertions track the
fixtures automatically when they are edited.  The baseline workflow,
inline waivers, and the CLI entry point are exercised end to end.
"""

import os
import re
import time

import pytest

from tools.analyze.__main__ import main
from tools.analyze.core import (Finding, all_passes, load_baseline,
                                run_analysis, write_baseline)

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

_SEED_RE = re.compile(r"seed:\s*([a-z-]+)")


def seeded(name):
    """Expected ``{(rule, line), ...}`` pairs from a fixture's seeds."""
    pairs = set()
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            match = _SEED_RE.search(line)
            if match:
                pairs.add((match.group(1), lineno))
    return pairs


def analyze(name, select=None, baseline=None):
    """Run the analyzer over one fixture with repo-root-relative paths."""
    return run_analysis([os.path.join(FIXTURES, name)],
                        select=select, baseline=baseline, root=ROOT)


# --------------------------------------------------------------------------- #
# registry + finding model
# --------------------------------------------------------------------------- #
def test_all_four_passes_registered():
    assert set(all_passes()) == {"lock-discipline", "hot-path-allocation",
                                 "int-purity", "thread-safety-docs"}


def test_finding_model_round_trips():
    finding = Finding(pass_id="p", rule="r", path="a/b.py", line=3,
                      message="m", symbol="C.m")
    assert finding.end_line == 3
    assert finding.location() == "a/b.py:3"
    assert finding.baseline_key() == "a/b.py::p::r::C.m"
    assert "a/b.py:3" in finding.render() and "[C.m]" in finding.render()
    span = Finding(pass_id="p", rule="r", path="a.py", line=3, end_line=7,
                   message="m")
    assert span.location() == "a.py:3-7"
    with pytest.raises(ValueError):
        Finding(pass_id="p", rule="r", path="a.py", line=1, message="m",
                severity="note")


def test_unknown_pass_selection_rejected():
    with pytest.raises(ValueError):
        analyze("good_locks.py", select=["no-such-pass"])


def test_parse_error_is_reported(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    result = run_analysis([str(broken)], root=str(tmp_path))
    assert [f.rule for f in result.findings] == ["parse-error"]
    assert result.files_analyzed == 0


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #
def test_lock_discipline_fires_on_each_seeded_violation():
    result = analyze("bad_locks.py", select=["lock-discipline"])
    got = {(f.rule, f.line) for f in result.findings
           if f.rule != "lock-order-cycle"}
    assert got == seeded("bad_locks.py")
    by_rule = {}
    for finding in result.findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    assert by_rule["lock-reacquire"][0].symbol == "Reacquire.deadlock"
    assert by_rule["unordered-acquisition"][0].symbol == "Peer.merge_bad"
    assert {f.symbol for f in by_rule["unknown-lock"]} == \
        {"MissingLock", "Reacquire.bad_tag"}
    cycles = by_rule["lock-order-cycle"]
    assert len(cycles) == 1
    assert "CycleMaker._a" in cycles[0].symbol
    assert "ORDER_LOCK" in cycles[0].symbol


def test_lock_discipline_accepts_ordered_tags_aliases_and_waivers():
    result = analyze("good_locks.py", select=["lock-discipline"])
    assert result.findings == []
    assert [f.rule for f in result.waived] == ["unguarded-access"]


def test_waiver_without_reason_is_a_finding():
    result = analyze("bad_waiver.py")
    assert {(f.rule, f.line) for f in result.findings} == \
        seeded("bad_waiver.py")
    assert result.findings[0].pass_id == "analyzer"


# --------------------------------------------------------------------------- #
# hot-path allocation
# --------------------------------------------------------------------------- #
def test_hot_path_fires_decorator_and_registry_forms():
    result = analyze("bad_hot.py", select=["hot-path-allocation"])
    assert {(f.rule, f.line) for f in result.findings} == seeded("bad_hot.py")
    # cold_helper's np.zeros is absent from the seeds, so set equality
    # above already proves unregistered functions stay unflagged
    assert {f.symbol for f in result.findings} == \
        {"decorated_hot", "registry_hot"}


# --------------------------------------------------------------------------- #
# int-purity
# --------------------------------------------------------------------------- #
def test_int_purity_fires_on_each_float_reintroduction():
    result = analyze("bad_intpure.py", select=["int-purity"])
    assert {(f.rule, f.line) for f in result.findings} == \
        seeded("bad_intpure.py")


def test_int_purity_marker_balance():
    result = analyze("bad_markers.py", select=["int-purity"])
    assert {(f.rule, f.line) for f in result.findings} == \
        seeded("bad_markers.py")
    messages = [f.message for f in result.findings]
    assert any("inside an open region" in m for m in messages)
    assert any("no open region" in m for m in messages)
    assert any("never closed" in m for m in messages)


# --------------------------------------------------------------------------- #
# thread-safety docs
# --------------------------------------------------------------------------- #
def test_thread_safety_doc_contract():
    result = analyze("bad_docs.py", select=["thread-safety-docs"])
    assert {(f.rule, f.line) for f in result.findings} == \
        seeded("bad_docs.py")
    assert {f.symbol for f in result.findings} == \
        {"Counter.increment", "Counter.get"}


# --------------------------------------------------------------------------- #
# the real tree is clean, inside the runtime budget
# --------------------------------------------------------------------------- #
def test_engine_tree_is_analyzer_clean_within_budget():
    started = time.perf_counter()
    result = run_analysis([os.path.join(ROOT, "src", "repro")], root=ROOT)
    elapsed = time.perf_counter() - started
    assert result.findings == []
    assert result.files_analyzed > 50
    assert elapsed < 5.0


# --------------------------------------------------------------------------- #
# baseline workflow
# --------------------------------------------------------------------------- #
def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    first = analyze("bad_intpure.py", select=["int-purity"])
    assert first.findings
    path = str(tmp_path / "baseline.json")
    write_baseline(path, first.findings)
    keys = load_baseline(path)
    assert len(keys) == len({f.baseline_key() for f in first.findings})
    second = analyze("bad_intpure.py", select=["int-purity"], baseline=keys)
    assert second.findings == []
    assert len(second.suppressed) == len(first.findings)


def test_load_baseline_missing_and_malformed(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == []
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# --------------------------------------------------------------------------- #
# CLI entry point
# --------------------------------------------------------------------------- #
def test_cli_reports_findings_and_exit_codes(capsys):
    bad = os.path.join(FIXTURES, "bad_intpure.py")
    good = os.path.join(FIXTURES, "good_locks.py")
    assert main([bad, "--select", "int-purity"]) == 1
    out = capsys.readouterr().out
    assert "int-purity/float-literal" in out
    assert main([good, "--select", "lock-discipline"]) == 0
    out = capsys.readouterr().out
    assert "waived inline" in out
    assert main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for pass_id in all_passes():
        assert pass_id in out
    assert main([bad, "--select", "no-such-pass"]) == 2


def test_cli_baseline_workflow(tmp_path, capsys):
    bad = os.path.join(FIXTURES, "bad_markers.py")
    baseline = str(tmp_path / "baseline.json")
    assert main([bad, "--baseline", baseline, "--write-baseline"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert main([bad, "--baseline", baseline]) == 0
    assert "baseline-suppressed" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main([bad, "--write-baseline"])


def test_cli_runtime_budget_gate(capsys):
    good = os.path.join(FIXTURES, "good_locks.py")
    assert main([good, "--max-seconds", "0"]) == 1
    assert "budget" in capsys.readouterr().err
