"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cim import CIMConfig, build_mapping, dequant_mults_per_layer
from repro.nn import Tensor
from repro.nn import functional as F
from repro.quant import (BitSplitConfig, Granularity, fake_quantize, merge_splits,
                         quant_range, split_signed, weight_scale_shape)


# --------------------------------------------------------------------- #
# bit-splitting
# --------------------------------------------------------------------- #
@given(
    bits=st.integers(min_value=2, max_value=8),
    cell=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_bitsplit_roundtrip_exact(bits, cell, data):
    """merge(split(w)) == w for every weight in range and every configuration."""
    cell = min(cell, bits)
    cfg = BitSplitConfig(bits, cell)
    shape = data.draw(st.tuples(st.integers(1, 4), st.integers(1, 4)))
    values = data.draw(hnp.arrays(np.int64, shape,
                                  elements=st.integers(-(2 ** (bits - 1)),
                                                       2 ** (bits - 1) - 1)))
    splits = split_signed(values, cfg)
    np.testing.assert_array_equal(merge_splits(splits, cfg), values)
    # every non-top slice must be storable in an unsigned cell
    assert splits[:-1].min(initial=0) >= 0
    assert splits.max(initial=0) <= 2 ** cell - 1


# --------------------------------------------------------------------- #
# uniform quantization
# --------------------------------------------------------------------- #
@given(
    bits=st.integers(min_value=2, max_value=8),
    scale=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    values=hnp.arrays(np.float64, st.integers(1, 64),
                      elements=st.floats(-50, 50, allow_nan=False)),
)
@settings(max_examples=60, deadline=None)
def test_fake_quantize_error_bounded_by_half_step(bits, scale, values):
    """Inside the representable range the error is at most scale/2."""
    out = fake_quantize(values, scale, bits, signed=True)
    rng = quant_range(bits, signed=True)
    inside = (values >= rng.qmin * scale) & (values <= rng.qmax * scale)
    assert np.all(np.abs(out[inside] - values[inside]) <= scale / 2 + 1e-9)
    # outputs always lie on the quantization grid
    codes = out / scale
    np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)


@given(values=hnp.arrays(np.float64, st.integers(1, 128),
                         elements=st.floats(-20, 20, allow_nan=False)),
       scale=st.floats(min_value=1e-2, max_value=5.0))
@settings(max_examples=40, deadline=None)
def test_fake_quantize_idempotent(values, scale):
    once = fake_quantize(values, scale, 4)
    twice = fake_quantize(once, scale, 4)
    np.testing.assert_allclose(once, twice, atol=1e-12)


# --------------------------------------------------------------------- #
# tiling
# --------------------------------------------------------------------- #
@given(
    in_channels=st.integers(min_value=1, max_value=128),
    out_channels=st.integers(min_value=1, max_value=128),
    kernel=st.sampled_from([1, 3, 5]),
    array_rows=st.sampled_from([16, 32, 64, 128, 256]),
    weight_bits=st.integers(min_value=1, max_value=8),
    cell_bits=st.integers(min_value=1, max_value=4),
    strategy=st.sampled_from(["kernel_preserving", "im2col"]),
)
@settings(max_examples=80, deadline=None)
def test_tiling_partitions_all_rows_exactly_once(in_channels, out_channels, kernel,
                                                 array_rows, weight_bits, cell_bits,
                                                 strategy):
    cell_bits = min(cell_bits, weight_bits)
    cfg = CIMConfig(array_rows=array_rows, array_cols=array_rows, cell_bits=cell_bits)
    mapping = build_mapping(in_channels, out_channels, (kernel, kernel), weight_bits,
                            cfg, strategy=strategy)
    covered = []
    for tile in mapping.tiles:
        assert 0 < tile.rows <= mapping.rows_per_array <= array_rows
        covered.extend(range(tile.row_start, tile.row_stop))
    assert covered == list(range(in_channels * kernel * kernel))
    assert mapping.n_arrays >= mapping.n_arrays_row
    assert mapping.col_tiles >= 1


# --------------------------------------------------------------------- #
# dequantization overhead ordering (Fig. 8)
# --------------------------------------------------------------------- #
@given(n_arrays=st.integers(1, 64), noc=st.integers(1, 512), n_splits=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_dequant_overhead_monotone_in_granularity(n_arrays, noc, n_splits):
    layer = dequant_mults_per_layer(Granularity.LAYER, n_arrays, noc, n_splits)
    array = dequant_mults_per_layer(Granularity.ARRAY, n_arrays, noc, n_splits)
    column = dequant_mults_per_layer(Granularity.COLUMN, n_arrays, noc, n_splits)
    assert layer == 1
    assert layer <= array <= column
    assert column == n_splits * array


# --------------------------------------------------------------------- #
# scale-shape consistency
# --------------------------------------------------------------------- #
@given(n_arrays=st.integers(1, 16), oc=st.integers(1, 64),
       granularity=st.sampled_from(list(Granularity)))
@settings(max_examples=40, deadline=None)
def test_weight_scale_shape_broadcasts_over_tiled_weight(n_arrays, oc, granularity):
    shape = weight_scale_shape(granularity, n_arrays, oc)
    tiled = np.zeros((n_arrays, 7, oc))
    broadcast = np.broadcast_shapes(shape, tiled.shape)
    assert broadcast == tiled.shape


# --------------------------------------------------------------------- #
# unfold / fold adjointness
# --------------------------------------------------------------------- #
@given(
    batch=st.integers(1, 2), channels=st.integers(1, 3),
    size=st.integers(4, 8), kernel=st.sampled_from([2, 3]),
    stride=st.sampled_from([1, 2]), padding=st.sampled_from([0, 1]),
    seed=st.integers(0, 2 ** 16),
)
@settings(max_examples=40, deadline=None)
def test_unfold_backward_is_adjoint_of_forward(batch, channels, size, kernel, stride,
                                               padding, seed):
    """<unfold(x), y> == <x, unfold^T(y)> — the defining property of col2im."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(batch, channels, size, size)), requires_grad=True)
    cols = F.unfold(x, kernel, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols.data * y))
    cols.backward(y)
    rhs = float(np.sum(x.data * x.grad))
    assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


# --------------------------------------------------------------------- #
# LSQ scale positivity after initialisation
# --------------------------------------------------------------------- #
@given(values=hnp.arrays(np.float64, st.integers(4, 256),
                         elements=st.floats(-100, 100, allow_nan=False)),
       bits=st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_lsq_init_scale_always_positive(values, bits):
    from repro.quant import LSQQuantizer
    quant = LSQQuantizer(bits)
    quant.initialize_from(values)
    assert np.all(quant.scale.data > 0)
