"""End-to-end integration tests across the whole library.

These are the most expensive tests in the suite (a few seconds each): they
train tiny models end to end and check the cross-module contracts the paper's
experiments rely on.
"""

import numpy as np
import pytest

from repro.analysis import build_experiment_model, build_loaders
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import (apply_variation, cim_layers, get_scheme, model_overhead,
                        set_psum_quant_enabled)
from repro.data import SyntheticImageDataset, DatasetSpec
from repro.data import test_loader as make_test_loader
from repro.data import train_loader as make_train_loader
from repro.models import TinyCNN
from repro.training import (QATTrainer, TrainerConfig, evaluate, reduced_experiment,
                            train_two_stage)


@pytest.fixture(scope="module")
def easy_task():
    """A small, very separable task so tiny models reach high accuracy quickly."""
    dataset = SyntheticImageDataset(DatasetSpec(
        name="easy", num_classes=3, image_size=8, train_samples=120, test_samples=60,
        noise_std=0.15, seed=5))
    return (make_train_loader(dataset, batch_size=20, seed=0),
            make_test_loader(dataset, batch_size=60))


class TestEndToEndQAT:
    def test_quantized_model_learns_the_task(self, easy_task):
        train, test = easy_task
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        scheme = QuantScheme(weight_bits=4, act_bits=4, psum_bits=4)
        model = TinyCNN(num_classes=3, width=8, scheme=scheme, cim_config=cfg, seed=0)
        history = QATTrainer(model, train, test, TrainerConfig(epochs=6, lr=0.05)).fit()
        assert history.best_test_accuracy > 0.55      # well above 33% chance

    def test_one_stage_vs_two_stage_both_learn(self, easy_task):
        train, test = easy_task
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        one_stage = TinyCNN(num_classes=3, width=8, seed=0,
                            scheme=QuantScheme(weight_granularity="column",
                                               psum_granularity="column"),
                            cim_config=cfg)
        QATTrainer(one_stage, train, test, TrainerConfig(epochs=4, lr=0.05)).fit()
        two_stage = TinyCNN(num_classes=3, width=8, seed=0,
                            scheme=QuantScheme(weight_granularity="layer",
                                               psum_granularity="column"),
                            cim_config=cfg)
        train_two_stage(two_stage, train, test, stage1_epochs=3, stage2_epochs=1, lr=0.05)
        acc_one = evaluate(one_stage, test)["top1"]
        acc_two = evaluate(two_stage, test)["top1"]
        assert acc_one > 0.4 and acc_two > 0.4

    def test_variation_monotonically_degrades_trained_model(self, easy_task):
        train, test = easy_task
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = TinyCNN(num_classes=3, width=8, scheme=QuantScheme(), cim_config=cfg, seed=0)
        QATTrainer(model, train, test, TrainerConfig(epochs=5, lr=0.05)).fit()
        clean = evaluate(model, test)["top1"]
        apply_variation(model, VariationModel(sigma=1.5, seed=0))
        noisy = evaluate(model, test)["top1"]
        apply_variation(model, None)
        assert noisy <= clean + 0.05                   # extreme noise cannot help

    def test_psum_quant_toggle_affects_eval(self, easy_task):
        train, test = easy_task
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = TinyCNN(num_classes=3, width=8, seed=0,
                        scheme=QuantScheme(psum_bits=1), cim_config=cfg)
        QATTrainer(model, train, test, TrainerConfig(epochs=2, lr=0.05)).fit()
        with_psq = model(next(iter(test))[0] if False else None) if False else None
        x = np.abs(np.random.default_rng(0).normal(size=(4, 3, 8, 8)))
        from repro.nn import Tensor
        out_q = model(Tensor(x)).data.copy()
        set_psum_quant_enabled(model, False)
        out_fp = model(Tensor(x)).data
        assert not np.allclose(out_q, out_fp)


class TestExperimentPipeline:
    def test_reduced_experiment_end_to_end(self):
        config = reduced_experiment("cifar10", tiny=True)
        train, test = build_loaders(config, augment=False)
        scheme = config.scheme("column", "column")
        model = build_experiment_model(config, scheme)
        history = QATTrainer(model, train, test,
                             TrainerConfig(epochs=1, lr=config.lr)).fit()
        assert history.epochs == 1
        # every CIM layer saw data and initialised its quantizers
        for _name, layer in cim_layers(model):
            assert layer.weight_quant.is_initialized()
            assert layer.psum_quant.is_initialized()

    def test_overhead_report_consistent_with_paper_ordering(self):
        config = reduced_experiment("cifar10", tiny=True)
        model = build_experiment_model(config, config.scheme("column", "column"))
        overhead_column = sum(o.multiplications
                              for o in model_overhead(model, get_scheme("ours")).values())
        overhead_layer = sum(o.multiplications
                             for o in model_overhead(model, get_scheme("kim")).values())
        assert overhead_layer < overhead_column
