"""CIMConfig and QuantScheme validation."""

import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.quant import Granularity


class TestCIMConfig:
    def test_defaults(self):
        cfg = CIMConfig()
        assert cfg.array_rows == 128 and cfg.array_cols == 128
        assert cfg.tiling == "kernel_preserving"

    def test_n_splits(self):
        cfg = CIMConfig(cell_bits=2)
        assert cfg.n_splits(4) == 2
        assert cfg.n_splits(3) == 2
        assert cfg.n_splits(1) == 1          # cell wider than weight: one split

    def test_bitsplit_clamps_cell_bits_to_weight_bits(self):
        cfg = CIMConfig(cell_bits=4)
        bs = cfg.bitsplit(3)
        assert bs.cell_bits == 3 and bs.n_splits == 1

    def test_with_replaces_fields(self):
        cfg = CIMConfig().with_(array_rows=256)
        assert cfg.array_rows == 256 and cfg.array_cols == 128

    @pytest.mark.parametrize("kwargs", [
        {"array_rows": 0}, {"cell_bits": 0}, {"adc_bits": 0}, {"tiling": "diagonal"},
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            CIMConfig(**kwargs)


class TestQuantScheme:
    def test_defaults_are_ours(self):
        scheme = QuantScheme()
        assert scheme.weight_granularity is Granularity.COLUMN
        assert scheme.psum_granularity is Granularity.COLUMN
        assert scheme.granularity_aligned

    def test_string_granularities_parsed(self):
        scheme = QuantScheme(weight_granularity="layer", psum_granularity="array")
        assert scheme.weight_granularity is Granularity.LAYER
        assert not scheme.granularity_aligned

    def test_label(self):
        scheme = QuantScheme(weight_granularity="layer", psum_granularity="column")
        assert scheme.label() == "Layer/Column"
        assert QuantScheme(quantize_psum=False).label().endswith("/None")

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantScheme(weight_bits=0)

    def test_with_override(self):
        scheme = QuantScheme().with_(psum_bits=2)
        assert scheme.psum_bits == 2
        assert scheme.weight_bits == 4
