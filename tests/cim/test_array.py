"""Single-crossbar behavioural model."""

import numpy as np
import pytest

from repro.cim import ADCModel, CIMConfig, CrossbarArray, VariationModel


class TestProgramming:
    def test_program_and_read_back(self, rng):
        array = CrossbarArray(rows=16, cols=8, cell_bits=2)
        values = rng.integers(-2, 4, size=(10, 6)).astype(float)
        array.program(values)
        np.testing.assert_allclose(array.cells[:10, :6], values)
        np.testing.assert_allclose(array.cells[10:, :], 0.0)

    def test_program_rejects_out_of_range(self):
        array = CrossbarArray(rows=4, cols=4, cell_bits=1, signed_cells=False)
        with pytest.raises(ValueError):
            array.program(np.full((2, 2), 3.0))

    def test_program_rejects_oversize(self):
        array = CrossbarArray(rows=4, cols=4)
        with pytest.raises(ValueError):
            array.program(np.zeros((5, 4)))

    def test_unprogrammed_access_raises(self):
        with pytest.raises(RuntimeError):
            CrossbarArray(4, 4).cells

    def test_from_config(self):
        array = CrossbarArray.from_config(CIMConfig(array_rows=64, array_cols=32, cell_bits=2))
        assert array.rows == 64 and array.cols == 32 and array.cell_bits == 2

    def test_occupancy_and_column(self, rng):
        array = CrossbarArray(rows=8, cols=4, cell_bits=2)
        values = np.ones((4, 2))
        array.program(values)
        assert array.occupancy() == pytest.approx(8 / 32)
        np.testing.assert_allclose(array.column(0)[:4], 1.0)


class TestMAC:
    def test_matches_matrix_product(self, rng):
        array = CrossbarArray(rows=12, cols=6, cell_bits=3)
        weights = rng.integers(-4, 4, size=(12, 6)).astype(float)
        array.program(weights)
        inputs = rng.integers(0, 8, size=(5, 12)).astype(float)
        np.testing.assert_allclose(array.mac(inputs), inputs @ weights)

    def test_single_vector_input(self, rng):
        array = CrossbarArray(rows=6, cols=3, cell_bits=2)
        weights = rng.integers(-2, 2, size=(6, 3)).astype(float)
        array.program(weights)
        x = rng.integers(0, 4, size=6).astype(float)
        out = array.mac(x)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, x @ weights)

    def test_short_input_addresses_first_wordlines(self, rng):
        array = CrossbarArray(rows=8, cols=2, cell_bits=2)
        weights = rng.integers(-2, 2, size=(8, 2)).astype(float)
        array.program(weights)
        x = np.ones(4)
        np.testing.assert_allclose(array.mac(x), x @ weights[:4])

    def test_too_long_input_raises(self):
        array = CrossbarArray(rows=4, cols=2)
        array.program(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            array.mac(np.ones(5))

    def test_mac_digitized(self, rng):
        array = CrossbarArray(rows=8, cols=4, cell_bits=2)
        array.program(rng.integers(-2, 4, size=(8, 4)).astype(float))
        adc = ADCModel(bits=4)
        codes, recon = array.mac_digitized(np.ones(8), adc, scale=np.full(4, 2.0))
        assert codes.shape == (4,)
        np.testing.assert_allclose(recon, codes * 2.0)


class TestVariation:
    def test_apply_variation_changes_cells(self, rng):
        array = CrossbarArray(rows=8, cols=8, cell_bits=2)
        values = rng.integers(1, 4, size=(8, 8)).astype(float)
        array.program(values)
        array.apply_variation(VariationModel(sigma=0.2, seed=0))
        assert not np.allclose(array.cells, values)
        # multiplicative noise keeps zeros at zero and preserves sign
        assert np.all(np.sign(array.cells) == np.sign(values))
