"""Log-normal memory-cell variation model (Eq. 5)."""

import numpy as np
import pytest

from repro.cim import VariationModel, apply_lognormal_variation


class TestApplyVariation:
    def test_sigma_zero_is_identity(self, rng):
        values = rng.normal(size=100)
        out = apply_lognormal_variation(values, 0.0)
        np.testing.assert_allclose(out, values)
        assert out is not values  # returns a copy

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            apply_lognormal_variation(np.ones(3), -0.1)

    def test_multiplicative_structure(self, rng):
        values = rng.normal(size=1000) + 5.0
        out = apply_lognormal_variation(values, 0.1, np.random.default_rng(0))
        ratio = out / values
        assert np.all(ratio > 0)                        # e^theta is positive
        assert np.std(np.log(ratio)) == pytest.approx(0.1, rel=0.15)

    def test_zero_values_stay_zero(self):
        out = apply_lognormal_variation(np.zeros(10), 0.3, np.random.default_rng(0))
        np.testing.assert_allclose(out, 0.0)

    def test_mean_log_ratio_near_zero(self, rng):
        values = np.ones(20000)
        out = apply_lognormal_variation(values, 0.2, np.random.default_rng(1))
        assert abs(np.mean(np.log(out))) < 0.01


class TestVariationModel:
    def test_disabled_model(self, rng):
        model = VariationModel(sigma=0.0)
        assert not model.enabled
        values = rng.normal(size=10)
        np.testing.assert_allclose(model.perturb(values), values)

    def test_seeded_reproducibility(self, rng):
        values = rng.normal(size=50)
        a = VariationModel(sigma=0.2, seed=42).perturb(values)
        b = VariationModel(sigma=0.2, seed=42).perturb(values)
        np.testing.assert_allclose(a, b)

    def test_reseed(self, rng):
        values = rng.normal(size=50)
        model = VariationModel(sigma=0.2, seed=1)
        first = model.perturb(values)
        model.reseed(1)
        np.testing.assert_allclose(model.perturb(values), first)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            VariationModel(sigma=0.1, target="rows")

    def test_sweep_yields_models_with_given_sigmas(self):
        sigmas = [0.0, 0.1, 0.2]
        models = list(VariationModel(target="weights").sweep(sigmas))
        assert [m.sigma for m in models] == sigmas
        assert all(m.target == "weights" for m in models)

    def test_larger_sigma_larger_perturbation(self, rng):
        values = rng.normal(size=2000) + 3.0
        small = VariationModel(sigma=0.05, seed=0).perturb(values)
        large = VariationModel(sigma=0.25, seed=0).perturb(values)
        assert np.mean(np.abs(large - values)) > np.mean(np.abs(small - values))
