"""Dequantization-overhead and ADC cost models (Fig. 8 x-axis)."""

import pytest

from repro.cim import (ADCCostModel, CIMConfig, CostReport, DequantOverhead,
                       build_mapping, dequant_mults_per_layer, layer_adc_conversions,
                       model_dequant_overhead)
from repro.quant import Granularity


class TestDequantMults:
    def test_paper_formulas(self):
        n_arrays, noc, n_splits = 5, 64, 3
        assert dequant_mults_per_layer("layer", n_arrays, noc, n_splits) == 1
        assert dequant_mults_per_layer("array", n_arrays, noc, n_splits) == n_arrays * noc
        assert dequant_mults_per_layer("column", n_arrays, noc, n_splits) == \
            n_splits * n_arrays * noc

    def test_weight_granularity_does_not_change_overhead(self):
        """The paper's key claim: folding the weight scale is free."""
        overhead_layer_w = DequantOverhead("conv", Granularity.COLUMN, Granularity.LAYER,
                                           n_arrays=4, channels_per_array=16, n_splits=2)
        overhead_column_w = DequantOverhead("conv", Granularity.COLUMN, Granularity.COLUMN,
                                            n_arrays=4, channels_per_array=16, n_splits=2)
        assert overhead_layer_w.multiplications == overhead_column_w.multiplications
        assert overhead_layer_w.stored_scale_factors == overhead_column_w.stored_scale_factors

    def test_ordering_layer_lt_array_lt_column(self):
        args = (6, 32, 2)
        layer = dequant_mults_per_layer("layer", *args)
        array = dequant_mults_per_layer("array", *args)
        column = dequant_mults_per_layer("column", *args)
        assert layer < array < column


class TestModelOverhead:
    def test_per_layer_report(self):
        cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=2)
        mappings = {
            "conv1": build_mapping(16, 16, (3, 3), 4, cfg),
            "conv2": build_mapping(16, 32, (3, 3), 4, cfg),
        }
        report = model_dequant_overhead(mappings, Granularity.COLUMN, Granularity.COLUMN)
        assert set(report) == {"conv1", "conv2"}
        for name, mapping in mappings.items():
            expected = mapping.n_splits * mapping.n_arrays * mapping.channels_per_array
            assert report[name].multiplications == expected

    def test_cost_report_aggregation(self):
        cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=2)
        mappings = {"conv": build_mapping(8, 8, (3, 3), 4, cfg)}
        overheads = model_dequant_overhead(mappings, "column", "array")
        conversions = {"conv": layer_adc_conversions(mappings["conv"], n_outputs_spatial=64)}
        report = CostReport.aggregate(overheads, conversions, adc_bits=4)
        assert report.total_dequant_mults == overheads["conv"].multiplications
        assert report.total_adc_conversions == conversions["conv"]
        assert report.total_adc_energy_pj > 0
        assert report.total_arrays >= 1


class TestADCCostModel:
    def test_energy_grows_exponentially_with_bits(self):
        model = ADCCostModel()
        assert model.energy_per_conversion(8) == pytest.approx(
            16 * model.energy_per_conversion(4))
        assert model.area_per_adc(6) > model.area_per_adc(4)

    def test_layer_energy_scales_with_conversions(self):
        model = ADCCostModel()
        assert model.layer_energy(200, 4) == pytest.approx(2 * model.layer_energy(100, 4))

    def test_adc_conversions_formula(self):
        cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=2)
        mapping = build_mapping(16, 32, (3, 3), 4, cfg)
        conversions = layer_adc_conversions(mapping, n_outputs_spatial=100, batch=2)
        assert conversions == mapping.n_splits * mapping.n_arrays_row * 32 * 100 * 2
