"""Crossbar mapping / tiling strategies."""

import numpy as np
import pytest

from repro.cim import (CIMConfig, build_linear_mapping, build_mapping, rows_utilization,
                       tile_weight_matrix)


class TestKernelPreservingTiling:
    def test_whole_channels_per_array(self):
        cfg = CIMConfig(array_rows=128, array_cols=128, cell_bits=1)
        mapping = build_mapping(64, 64, (3, 3), weight_bits=3, config=cfg,
                                strategy="kernel_preserving")
        # 128 // 9 = 14 channels per array -> 5 arrays for 64 channels
        assert mapping.rows_per_array == 14 * 9
        assert mapping.n_arrays_row == 5
        # every tile boundary is a multiple of the receptive field
        for tile in mapping.tiles:
            assert tile.row_start % 9 == 0
            assert tile.rows % 9 == 0

    def test_covers_all_rows_without_overlap(self):
        cfg = CIMConfig(array_rows=32)
        mapping = build_mapping(16, 8, (3, 3), 4, cfg, strategy="kernel_preserving")
        covered = []
        for tile in mapping.tiles:
            covered.extend(range(tile.row_start, tile.row_stop))
        assert covered == list(range(16 * 9))

    def test_fallback_to_im2col_when_kernel_larger_than_array(self):
        cfg = CIMConfig(array_rows=8)
        mapping = build_mapping(4, 4, (3, 3), 4, cfg, strategy="kernel_preserving")
        # receptive field 9 > 8 rows -> falls back to plain row chunks
        assert mapping.rows_per_array == 8

    def test_utilization_less_or_equal_one(self):
        cfg = CIMConfig(array_rows=128)
        mapping = build_mapping(64, 64, (3, 3), 3, cfg)
        assert 0 < rows_utilization(mapping) <= 1.0

    def test_im2col_has_full_utilization_except_last(self):
        cfg = CIMConfig(array_rows=100)
        mapping = build_mapping(64, 64, (3, 3), 3, cfg, strategy="im2col")
        # 576 rows / 100 = 6 arrays; utilisation = 576/600
        assert mapping.n_arrays_row == 6
        assert rows_utilization(mapping) == pytest.approx(576 / 600)


class TestIm2colTiling:
    def test_chunks_of_array_rows(self):
        cfg = CIMConfig(array_rows=128)
        mapping = build_mapping(64, 64, (3, 3), 3, cfg, strategy="im2col")
        assert mapping.rows_per_array == 128
        assert mapping.n_arrays_row == int(np.ceil(64 * 9 / 128))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_mapping(4, 4, (3, 3), 4, CIMConfig(), strategy="zigzag")


class TestColumnTiling:
    def test_col_tiles_account_for_bit_splits(self):
        cfg = CIMConfig(array_rows=128, array_cols=128, cell_bits=1)
        # 64 output channels x 3 bit-splits = 192 columns -> 2 column tiles
        mapping = build_mapping(16, 64, (3, 3), weight_bits=3, config=cfg)
        assert mapping.n_splits == 3
        assert mapping.col_tiles == 2
        assert mapping.n_arrays == mapping.n_arrays_row * 2

    def test_channels_per_array(self):
        cfg = CIMConfig(array_rows=128, array_cols=64, cell_bits=4)
        mapping = build_mapping(16, 128, (1, 1), weight_bits=4, config=cfg)
        assert mapping.col_tiles == 2
        assert mapping.channels_per_array == 64


class TestLinearMapping:
    def test_rows_and_arrays(self):
        cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=2)
        mapping = build_linear_mapping(200, 10, weight_bits=4, config=cfg)
        assert mapping.n_arrays_row == 4
        assert mapping.rows_per_array == 64
        assert mapping.layer_type == "linear"
        assert mapping.used_rows == 200

    def test_small_layer_single_array(self):
        cfg = CIMConfig(array_rows=128, array_cols=128)
        mapping = build_linear_mapping(64, 10, 3, cfg)
        assert mapping.n_arrays == 1
        assert mapping.rows_per_array == 64


class TestTileWeightMatrix:
    def test_tiles_and_pads(self, rng):
        cfg = CIMConfig(array_rows=32)
        mapping = build_mapping(5, 7, (3, 3), 4, cfg, strategy="kernel_preserving")
        w = rng.normal(size=(5 * 9, 7))
        tiled = tile_weight_matrix(w, mapping)
        assert tiled.shape == (mapping.n_arrays_row, mapping.rows_per_array, 7)
        # concatenating used rows reproduces the original matrix
        rebuilt = np.concatenate([tiled[t.index, :t.rows] for t in mapping.tiles])
        np.testing.assert_allclose(rebuilt, w)

    def test_wrong_rows_raises(self, rng):
        cfg = CIMConfig(array_rows=32)
        mapping = build_mapping(5, 7, (3, 3), 4, cfg)
        with pytest.raises(ValueError):
            tile_weight_matrix(rng.normal(size=(10, 7)), mapping)

    def test_describe_mentions_strategy(self):
        mapping = build_mapping(8, 8, (3, 3), 4, CIMConfig(array_rows=32))
        assert "kernel_preserving" in mapping.describe()
