"""ADC / DAC behavioural models."""

import numpy as np
import pytest

from repro.cim import ADCModel, DACModel, bit_serial_slices, ideal_adc_codes


class TestADC:
    def test_convert_rounds_and_clips(self):
        adc = ADCModel(bits=3, signed=True)
        codes = adc.convert(np.array([0.4, 2.6, 100.0, -100.0]), scale=1.0)
        np.testing.assert_allclose(codes, [0.0, 3.0, 3.0, -4.0])

    def test_reconstruct(self):
        adc = ADCModel(bits=4)
        psum = np.array([3.0, -5.0])
        codes = adc.convert(psum, 1.0)
        np.testing.assert_allclose(adc.reconstruct(codes, 1.0), psum)

    def test_per_column_scale(self, rng):
        adc = ADCModel(bits=4)
        psum = rng.normal(size=(10, 4)) * np.array([1.0, 2.0, 4.0, 8.0])
        scale = np.array([1.0, 2.0, 4.0, 8.0]) / 7
        codes = adc.convert(psum, scale)
        assert codes.max() <= 7 and codes.min() >= -8

    def test_stats_report_clipping(self, rng):
        adc = ADCModel(bits=2)
        psum = rng.normal(size=1000) * 10
        _codes, stats = adc.convert_with_stats(psum, scale=1.0)
        assert stats.clipped_fraction > 0
        assert stats.mse > 0

    def test_no_clipping_with_generous_scale(self, rng):
        adc = ADCModel(bits=8)
        psum = rng.normal(size=100)
        _codes, stats = adc.convert_with_stats(psum, scale=1.0)
        assert stats.clipped_fraction == 0.0

    def test_saturation_value(self):
        adc = ADCModel(bits=4, signed=True)
        assert adc.saturation_value(np.array([2.0]))[0] == pytest.approx(16.0)

    def test_ideal_adc_codes(self):
        np.testing.assert_allclose(ideal_adc_codes(np.array([2.2, -3.7])), [2.0, -4.0])


class TestDAC:
    def test_encode_clips_to_unsigned_range(self):
        dac = DACModel(bits=3)
        np.testing.assert_allclose(dac.encode(np.array([-1.0, 3.0, 100.0])), [0.0, 3.0, 7.0])

    def test_parallel_drive_single_cycle(self):
        dac = DACModel(bits=4, bit_serial=False)
        pattern = dac.drive(np.array([5.0]))
        assert len(pattern) == 1
        assert dac.cycles_per_input == 1

    def test_bit_serial_reconstructs_input(self, rng):
        dac = DACModel(bits=4, bit_serial=True)
        codes = rng.integers(0, 16, size=20).astype(float)
        pattern = dac.drive(codes)
        assert len(pattern) == 4
        recon = sum(values * significance for values, significance in pattern)
        np.testing.assert_allclose(recon, codes)

    def test_bit_serial_slices_are_binary(self, rng):
        slices = bit_serial_slices(rng.integers(0, 8, size=50), bits=3)
        for s in slices:
            assert set(np.unique(s)).issubset({0.0, 1.0})

    def test_bit_serial_negative_raises(self):
        with pytest.raises(ValueError):
            bit_serial_slices(np.array([-1]), 3)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            DACModel(bits=0)
