"""Shared fixtures for the test-suite."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.data import SyntheticImageDataset, DatasetSpec
from repro.training import reduced_experiment


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_cim_config():
    """A small crossbar so tests exercise multi-array tiling cheaply."""
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2, adc_bits=4, dac_bits=4)


@pytest.fixture
def column_scheme():
    return QuantScheme(name="ours", weight_bits=4, act_bits=4, psum_bits=4,
                       weight_granularity="column", psum_granularity="column")


@pytest.fixture
def layer_scheme():
    return QuantScheme(name="layer", weight_bits=4, act_bits=4, psum_bits=4,
                       weight_granularity="layer", psum_granularity="layer")


@pytest.fixture
def tiny_experiment():
    return reduced_experiment("cifar10", tiny=True)


@pytest.fixture
def tiny_dataset():
    """A very small, fast synthetic dataset."""
    return SyntheticImageDataset(DatasetSpec(
        name="tiny", num_classes=4, image_size=8, channels=3,
        train_samples=64, test_samples=32, seed=0))
