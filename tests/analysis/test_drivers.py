"""Experiment drivers (tiny-scale smoke + semantics tests)."""

import numpy as np
import pytest

from repro.analysis import (build_dataset, build_experiment_model, build_loaders,
                            compare_psum_distributions, compute_overhead_table,
                            evaluate_under_variation, format_series, format_table,
                            markdown_table, relative_cost_to_reach, run_fp_baseline,
                            run_scheme, run_variation_sweep)
from repro.analysis.qat_schedules import QATScheduleResult
from repro.cim import CIMConfig, QuantScheme
from repro.core import get_scheme
from repro.models import TinyCNN
from repro.training import reduced_experiment
from repro.training.metrics import TrainingHistory


@pytest.fixture(scope="module")
def tiny_cfg():
    return reduced_experiment("cifar10", tiny=True)


@pytest.fixture(scope="module")
def tiny_loaders(tiny_cfg):
    return build_loaders(tiny_cfg, augment=False)


class TestCommon:
    def test_build_dataset_matches_config(self, tiny_cfg):
        dataset = build_dataset(tiny_cfg)
        assert dataset.num_classes == tiny_cfg.num_classes
        assert dataset.train_images.shape[0] == tiny_cfg.train_samples
        assert dataset.image_shape[-1] == tiny_cfg.image_size

    def test_build_loaders_batch_size(self, tiny_cfg):
        train, test = build_loaders(tiny_cfg)
        assert train.batch_size == tiny_cfg.batch_size

    def test_build_experiment_model_fp_and_quant(self, tiny_cfg):
        fp = build_experiment_model(tiny_cfg, scheme=None)
        quant = build_experiment_model(tiny_cfg, scheme=tiny_cfg.scheme())
        assert fp.num_parameters() > 0
        assert quant.num_parameters() >= fp.num_parameters()  # adds scale parameters


class TestSchemeRunners:
    def test_run_fp_baseline_and_qat_scheme(self, tiny_cfg, tiny_loaders):
        train, test = tiny_loaders
        fp_result, fp_model = run_fp_baseline(tiny_cfg, train, test, epochs=1)
        assert 0.0 <= fp_result.top1 <= 1.0
        assert fp_result.training == "fp32"

        scheme = tiny_cfg.scheme("column", "column")
        result = run_scheme(tiny_cfg, scheme, train, test, training="qat", epochs=1)
        assert result.weight_granularity == "column"
        assert result.epochs == 1
        assert result.history is not None
        assert "top1_accuracy" in result.row()

    def test_run_scheme_two_stage(self, tiny_cfg, tiny_loaders):
        train, test = tiny_loaders
        scheme = tiny_cfg.scheme("layer", "column")
        result = run_scheme(tiny_cfg, scheme, train, test, training="two-stage-qat",
                            epochs=2)
        assert result.training == "two-stage-qat"
        assert result.history.stage_boundaries  # two stages recorded

    def test_run_scheme_ptq_requires_pretrained(self, tiny_cfg, tiny_loaders):
        train, test = tiny_loaders
        with pytest.raises(ValueError):
            run_scheme(tiny_cfg, get_scheme("kim"), train, test, training="ptq")

    def test_run_scheme_ptq(self, tiny_cfg, tiny_loaders):
        train, test = tiny_loaders
        _fp_result, fp_model = run_fp_baseline(tiny_cfg, train, test, epochs=1)
        scheme = get_scheme("kim", weight_bits=tiny_cfg.weight_bits,
                            act_bits=tiny_cfg.act_bits, psum_bits=tiny_cfg.psum_bits)
        result = run_scheme(tiny_cfg, scheme, train, test, training="ptq",
                            pretrained_fp=fp_model)
        assert result.training == "ptq"
        assert result.epochs == 0


class TestDistribution:
    def test_fig6_column_wider_dynamic_range(self, tiny_cfg):
        results = compare_psum_distributions(tiny_cfg, layer_index=1, train_epochs=0)
        assert set(results) == {"layer", "column"}
        for dist in results.values():
            assert dist.num_columns > 0
            assert np.all(dist.dynamic_range >= 0)
            assert "mean_dynamic_range" in dist.summary()


class TestOverhead:
    def test_fig8_overhead_table_orderings(self, tiny_cfg):
        points = compute_overhead_table(tiny_cfg)
        assert len(points) == 9
        by_psum = {}
        for point in points:
            by_psum.setdefault(point.psum_granularity, set()).add(point.dequant_mults_total)
        # overhead depends only on the partial-sum granularity (paper's claim)
        assert all(len(values) == 1 for values in by_psum.values())
        assert min(by_psum["layer"]) < min(by_psum["array"]) <= min(by_psum["column"])
        assert all("dequant_mults_total" in p.row() for p in points)


class TestRobustness:
    def test_fig10_accuracy_degrades_with_sigma(self, tiny_cfg, tiny_loaders):
        train, test = tiny_loaders
        model = build_experiment_model(tiny_cfg, scheme=tiny_cfg.scheme())
        accs = evaluate_under_variation(model, test, sigma=0.0, trials=1)
        assert len(accs) == 1
        points = run_variation_sweep({"ours": model}, test, sigmas=(0.0, 0.4), trials=2)
        assert len(points) == 2
        assert points[0].trials == 1      # sigma=0 needs a single trial
        assert points[1].trials == 2
        assert {p.sigma for p in points} == {0.0, 0.4}


class TestQATScheduleHelpers:
    def _result(self, case, accs, seconds):
        history = TrainingHistory(test_accuracy=accs, epoch_seconds=seconds,
                                  train_loss=[0.0] * len(accs))
        return QATScheduleResult(case=case, weight_granularity="column",
                                 psum_granularity="column", training="qat",
                                 best_accuracy=max(accs), final_accuracy=accs[-1],
                                 total_seconds=sum(seconds), epochs=len(accs),
                                 history=history)

    def test_relative_cost_to_reach(self):
        results = {
            "slow": self._result("slow", [0.2, 0.4, 0.6], [10, 10, 10]),
            "fast": self._result("fast", [0.5, 0.7], [10, 10]),
        }
        # 'fast' reaches slow's best (0.6) after 2 epochs = 20s vs slow's 30s
        saving = relative_cost_to_reach(results, "slow", "fast")
        assert saving == pytest.approx(1 - 20 / 30)

    def test_relative_cost_none_when_unreached(self):
        results = {
            "good": self._result("good", [0.9], [10]),
            "bad": self._result("bad", [0.1, 0.2], [10, 10]),
        }
        assert relative_cost_to_reach(results, "good", "bad") is None


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": None}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "a" in text and "0.5000" in text and "-" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_markdown_table(self):
        md = markdown_table([{"x": 1}])
        assert md.startswith("| x |")
        assert "| 1 |" in md

    def test_format_series(self):
        text = format_series("acc", [0, 1], [0.5, 0.6], "sigma", "top1")
        assert "sigma=0" in text and "top1=0.6000" in text
