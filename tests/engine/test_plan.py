"""Compiled plans: compilation, serialization, cached im2col helpers."""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.cim.tiling import build_mapping, mapping_from_dict, mapping_to_dict
from repro.core import CIMConv2d, CIMLinear
from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


class TestCompile:
    def test_dispatch(self, rng, cfg):
        conv = CIMConv2d(4, 4, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        lin = CIMLinear(16, 4, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        conv.eval(); lin.eval()
        conv(Tensor(np.abs(rng.normal(size=(1, 4, 5, 5)))))
        lin(Tensor(np.abs(rng.normal(size=(2, 16)))))
        assert isinstance(engine.compile_plan(conv), engine.ConvPlan)
        assert isinstance(engine.compile_plan(lin), engine.LinearPlan)
        with pytest.raises(TypeError):
            engine.compile_plan(object())

    def test_uninitialized_quantizers_raise(self, rng, cfg):
        conv = CIMConv2d(4, 4, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        with pytest.raises(engine.PlanNotReadyError):
            engine.compile_conv_plan(conv)

    def test_plan_caches_detached_copies(self, rng, cfg):
        """Mutating the layer after compiling must not change the plan."""
        conv = CIMConv2d(4, 4, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        conv.eval()
        x = Tensor(np.abs(rng.normal(size=(1, 4, 5, 5))))
        conv(x)
        plan = engine.compile_conv_plan(conv)
        before = plan.execute(x.data).copy()
        conv.weight.data = conv.weight.data + 1.0
        np.testing.assert_allclose(plan.execute(x.data), before, atol=0)

    def test_valid_rows_mask_cached(self, rng):
        cfg = CIMConfig(array_rows=30, array_cols=32, cell_bits=2)
        conv = CIMConv2d(6, 8, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        conv.eval()
        conv(Tensor(np.abs(rng.normal(size=(1, 6, 5, 5)))))
        plan = engine.compile_conv_plan(conv)
        np.testing.assert_array_equal(plan.valid_mask, conv._valid_rows_mask())


class TestSerialization:
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_conv_plan_round_trip(self, rng, cfg, tmp_path, quantize_psum):
        conv = CIMConv2d(6, 8, 3, padding=1, bias=True,
                         scheme=QuantScheme(quantize_psum=quantize_psum),
                         cim_config=cfg, rng=np.random.default_rng(1))
        conv.eval()
        x = Tensor(np.abs(rng.normal(size=(2, 6, 6, 6))))
        conv(x)
        plan = engine.compile_conv_plan(conv)
        path = tmp_path / "conv_plan.npz"
        engine.save_plan(plan, path)
        loaded = engine.load_plan(path)
        assert isinstance(loaded, engine.ConvPlan)
        assert loaded.signature == plan.signature
        np.testing.assert_allclose(loaded.execute(x.data), plan.execute(x.data), atol=0)

    def test_linear_plan_round_trip(self, rng, cfg, tmp_path):
        lin = CIMLinear(40, 10, scheme=QuantScheme(), cim_config=cfg,
                        rng=np.random.default_rng(2))
        lin.eval()
        x = Tensor(np.abs(rng.normal(size=(4, 40))))
        lin(x)
        plan = engine.compile_linear_plan(lin)
        path = tmp_path / "linear_plan.npz"
        engine.save_plan(plan, path)
        loaded = engine.load_plan(path)
        assert isinstance(loaded, engine.LinearPlan)
        np.testing.assert_allclose(loaded.execute(x.data), plan.execute(x.data), atol=0)

    @pytest.mark.parametrize("strategy", ["kernel_preserving", "im2col"])
    def test_mapping_round_trip(self, strategy):
        cfg = CIMConfig(array_rows=30, array_cols=16, cell_bits=2, tiling=strategy)
        mapping = build_mapping(8, 12, (3, 3), weight_bits=4, config=cfg)
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping


class TestCachedIm2col:
    def test_unfold_array_matches_unfold(self, rng):
        x = rng.normal(size=(2, 3, 7, 7))
        ref = F.unfold(Tensor(x), (3, 3), stride=2, padding=1).data
        nkl = F.unfold_array(x, (3, 3), stride=2, padding=1, layout="nkl")
        nlk = F.unfold_array(x, (3, 3), stride=2, padding=1, layout="nlk")
        np.testing.assert_array_equal(nkl, ref)
        np.testing.assert_array_equal(nlk.transpose(0, 2, 1), ref)

    def test_unknown_layout_raises(self, rng):
        with pytest.raises(ValueError):
            F.unfold_array(rng.normal(size=(1, 1, 4, 4)), (2, 2), layout="bogus")

    def test_index_cache_reused(self):
        F._im2col_flat_index_cache.cache_clear()
        x = np.zeros((1, 2, 6, 6))
        F.unfold_array(x, (3, 3))
        F.unfold_array(x, (3, 3))
        info = F._im2col_flat_index_cache.cache_info()
        assert info.hits >= 1 and info.misses == 1
