"""Differential test harness pinning the integer execution route.

The float route is the bit-exact reference; the integer route must stay
within each plan's *declared* drift bound (``requant.drift_bound``, computed
at compile time — see :mod:`repro.core.requant`).  The fuzz matrix sweeps
seeded random layer geometries across both layer kinds, both psum modes and
several tile shapes; model-level tests add the end-to-end gate (max-abs
drift + top-1 agreement), serialization pins the requant constants
bit-exactly through the ``.npz`` round trip, and the error cases pin the
mode-switching contract.
"""

import io

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import CIMConv2d, CIMLinear
from repro.models import resnet8
from repro.nn import Tensor
from repro.nn.tensor import no_grad


def scheme(quantize_psum: bool, act_bits: int = 3,
           psum_bits: int = 3) -> QuantScheme:
    return QuantScheme(weight_bits=3, act_bits=act_bits, psum_bits=psum_bits,
                       weight_granularity="column", psum_granularity="column",
                       quantize_psum=quantize_psum)


# (array_rows, cell_bits): one array/one split, multi-array, multi-split
TILE_SHAPES = [(64, 1), (16, 1), (32, 2)]


def make_layer(kind: str, quantize_psum: bool, tile, seed: int):
    """A calibrated seeded layer plus a fresh eval batch."""
    rows, cell_bits = tile
    cfg = CIMConfig(array_rows=rows, array_cols=32, cell_bits=cell_bits,
                    adc_bits=3)
    rng = np.random.default_rng(seed)
    if kind == "conv":
        layer = CIMConv2d(3, 5, 3, padding=1, bias=True,
                          scheme=scheme(quantize_psum), cim_config=cfg,
                          rng=np.random.default_rng(seed + 1))
        calib = np.abs(rng.normal(size=(4, 3, 7, 7)))
        x = np.abs(rng.normal(size=(3, 3, 7, 7)))
    else:
        layer = CIMLinear(26, 6, bias=True, scheme=scheme(quantize_psum),
                          cim_config=cfg, rng=np.random.default_rng(seed + 1))
        calib = np.abs(rng.normal(size=(5, 26)))
        x = np.abs(rng.normal(size=(4, 26)))
    with no_grad():
        layer.eval()
        layer(Tensor(calib))
    return layer, x


def compile_layer(layer):
    if isinstance(layer, CIMConv2d):
        return engine.compile_conv_plan(layer)
    return engine.compile_linear_plan(layer)


def build_model_plan():
    """The fixture model of the model-level gate (seeded, deterministic)."""
    sch = scheme(True)
    cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)
    rng = np.random.default_rng(17)
    model = resnet8(num_classes=4, scheme=sch, cim_config=cfg,
                    width_multiplier=0.25, seed=3)
    calib = np.abs(rng.normal(size=(4, 3, 8, 8)))
    with no_grad():
        model(Tensor(calib))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=calib)
    x = np.abs(rng.normal(size=(32, 3, 8, 8)))
    return plan, x


class TestLayerDifferential:
    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    @pytest.mark.parametrize("tile", TILE_SHAPES,
                             ids=[f"r{r}b{b}" for r, b in TILE_SHAPES])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_drift_within_declared_bound(self, kind, quantize_psum, tile,
                                         seed):
        layer, x = make_layer(kind, quantize_psum, tile, seed)
        plan = compile_layer(layer)
        assert plan.requant is not None
        ref = plan.execute(x)
        plan.set_mode("int")
        out = plan.execute(x)
        drift = float(np.abs(out - ref).max())
        assert drift <= plan.requant.drift_bound, \
            f"drift {drift} exceeds declared {plan.requant.drift_bound}"
        # the declared bound is itself meaningful: far below the output scale
        assert np.isfinite(plan.requant.drift_bound)

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_zero_row_and_single_sample_edges(self, kind, quantize_psum):
        layer, x = make_layer(kind, quantize_psum, (32, 1), 3)
        plan = compile_layer(layer)
        plan.set_mode("int")
        empty = np.empty((0,) + x.shape[1:], dtype=np.float64)
        out_empty = plan.execute(empty)
        assert out_empty.shape[0] == 0
        one = plan.execute(x[:1])
        full = plan.execute(x)
        np.testing.assert_array_equal(one, full[:1])

    def test_int_output_lies_on_the_output_grid(self):
        """Integer-route outputs are exact multiples of s_out per channel —
        the structural signature of integer accumulation + one dequant."""
        layer, x = make_layer("linear", False, (32, 1), 5)
        plan = compile_layer(layer)
        plan.set_mode("int")
        # bias is folded onto the grid too (bias_q), so the raw output is
        # code * s_out with integer codes
        codes = plan.execute(x) / plan.requant.s_out
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)


class TestSerialization:
    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_requant_constants_round_trip_bit_exact(self, tmp_path, kind,
                                                    quantize_psum):
        layer, x = make_layer(kind, quantize_psum, (32, 2), 9)
        plan = compile_layer(layer)
        path = tmp_path / "plan.npz"
        engine.save_plan(plan, path)
        loaded = engine.load_plan(path)
        rq, rq2 = plan.requant, loaded.requant
        assert rq2 is not None
        assert rq2.shift == rq.shift
        assert rq2.gemm_dtype == rq.gemm_dtype
        assert rq2.acc_bound == rq.acc_bound
        assert rq2.drift_bound == rq.drift_bound
        assert (rq2.z_in, rq2.z_w, rq2.z_out) == (rq.z_in, rq.z_w, rq.z_out)
        for name in type(rq)._ARRAYS:
            a, b = getattr(rq, name), getattr(rq2, name)
            if a is None:
                assert b is None
            else:
                assert b.dtype == a.dtype, name
                np.testing.assert_array_equal(a, b, err_msg=name)

    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_loaded_int_route_matches_in_process(self, tmp_path,
                                                 quantize_psum):
        layer, x = make_layer("conv", quantize_psum, (16, 1), 2)
        plan = compile_layer(layer)
        plan.set_mode("int")
        out = plan.execute(x)
        path = tmp_path / "plan.npz"
        engine.save_plan(plan, path)
        loaded = engine.load_plan(path)
        assert loaded.mode == "float"          # mode is runtime state
        loaded.set_mode("int")
        np.testing.assert_array_equal(loaded.execute(x), out)
        np.testing.assert_array_equal(
            engine.load_plan(path, mode="int").execute(x), out)


class TestModelLevelGate:
    def test_model_drift_and_top1_agreement(self):
        plan, x = build_model_plan()
        ref = plan.execute(x)
        plan.set_mode("int")
        out = plan.execute(x)
        drift = float(np.abs(out - ref).max())
        assert drift <= plan.int_drift_bound()
        agree = float((out.argmax(axis=1) == ref.argmax(axis=1)).mean())
        assert agree == 1.0
        # and back: float mode restores the bit-exact reference
        plan.set_mode("float")
        np.testing.assert_array_equal(plan.execute(x), ref)

    def test_model_round_trip_int_equality(self, tmp_path):
        plan, x = build_model_plan()
        plan.set_mode("int")
        out = plan.execute(x)
        path = tmp_path / "model.npz"
        engine.save_model_plan(plan, path)
        loaded = engine.load_plan(path, mode="int")
        assert loaded.mode == "int"
        np.testing.assert_array_equal(loaded.execute(x), out)
        # default load is the float reference
        ref_plan = engine.load_plan(path)
        assert ref_plan.mode == "float"

    def test_runner_and_server_int_mode(self, tmp_path):
        plan, x = build_model_plan()
        ref = plan.execute(x)
        plan.set_mode("int")
        expected = plan.execute(x)
        path = tmp_path / "model.npz"
        engine.save_model_plan(plan, path)

        runner = engine.InferenceRunner(engine.load_plan(path),
                                        batch_size=8, mode="int")
        np.testing.assert_array_equal(runner.predict(x), expected)

        with engine.PlanServer(engine.load_plan(path), n_shards=2,
                               mode="int", max_batch=8) as server:
            got = server.predict(x)
        np.testing.assert_array_equal(got, expected)
        assert np.abs(expected - ref).max() <= plan.int_drift_bound()

    def test_load_plan_cached_is_mode_keyed(self, tmp_path):
        plan, x = build_model_plan()
        path = tmp_path / "model.npz"
        engine.save_model_plan(plan, path)
        engine.clear_plan_cache()
        as_float = engine.load_plan_cached(str(path))
        as_int = engine.load_plan_cached(str(path), mode="int")
        assert as_float is not as_int
        assert as_float.mode == "float" and as_int.mode == "int"
        assert engine.load_plan_cached(str(path), mode="int") is as_int
        engine.clear_plan_cache()


class TestModeContract:
    def test_unknown_mode_raises(self):
        layer, _ = make_layer("linear", False, (32, 1), 1)
        plan = compile_layer(layer)
        with pytest.raises(ValueError, match="unknown execution mode"):
            plan.set_mode("int8")

    def test_variation_on_int_route_raises(self):
        layer, x = make_layer("conv", True, (32, 1), 1)
        plan = compile_layer(layer)
        plan.set_mode("int")
        with pytest.raises(ValueError, match="variation"):
            plan.execute(x, variation=VariationModel(sigma=0.1, seed=0))
        # float mode still accepts variation
        plan.set_mode("float")
        plan.execute(x, variation=VariationModel(sigma=0.1, seed=0))

    def test_plan_without_requant_refuses_int(self):
        layer, _ = make_layer("linear", False, (32, 1), 1)
        plan = compile_layer(layer)
        plan.requant = None          # simulate a pre-v2 (float-only) artifact
        with pytest.raises(ValueError, match="requant"):
            plan.set_mode("int")

    def test_raw_input_layer_accepts_int_as_noop(self):
        """The first conv of every model takes unquantized input — int mode
        is an accepted no-op there, not an error."""
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)
        layer = CIMConv2d(3, 4, 3, scheme=scheme(True), cim_config=cfg,
                          rng=np.random.default_rng(0),
                          quantize_input=False)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        with no_grad():
            layer.eval()
            layer(Tensor(np.abs(x)))
        plan = engine.compile_conv_plan(layer)
        assert plan.requant is None and plan.act_scale is None
        ref = plan.execute(x)
        plan.set_mode("int")
        np.testing.assert_array_equal(plan.execute(x), ref)

    def test_int_mode_float32_plan_executes(self):
        """Requant constants survive the narrowing cast: a float32 plan
        still carries full-precision multipliers and runs the int route."""
        layer, x = make_layer("conv", True, (32, 1), 4)
        state = layer.pipeline.compile_state(dtype=np.float32)
        assert state["requant"] is not None
        plan = compile_layer(layer)
        f32 = engine.compile_conv_plan(layer, dtype="float32")
        f32.set_mode("int")
        plan.set_mode("int")
        out32, out64 = f32.execute(x), plan.execute(x)
        assert out32.dtype == np.float32
        assert np.abs(out32.astype(np.float64) - out64).max() <= 1e-4
