"""Batched inference runner: micro-batching semantics, buffers, timing stats."""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad


@pytest.fixture(scope="module")
def plan_and_data():
    rng = np.random.default_rng(7)
    model = TinyCNN(num_classes=4, width=6,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=3),
                    seed=2)
    x = np.abs(rng.normal(size=(11, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    return model, plan, x


class TestMicroBatching:
    @pytest.mark.parametrize("batch_size", [1, 3, 11, 16])
    def test_stream_matches_single_batch(self, plan_and_data, batch_size):
        """Any micro-batch size (including partial final batches) reproduces
        the single-big-batch output, row for row and in order."""
        _, plan, x = plan_and_data
        reference = plan.execute(x)
        runner = engine.InferenceRunner(plan, batch_size=batch_size)
        outs = np.stack(list(runner.run(iter(x))))
        np.testing.assert_array_equal(outs, reference)

    def test_predict_matches_stream(self, plan_and_data):
        _, plan, x = plan_and_data
        reference = plan.execute(x)
        pred = engine.InferenceRunner(plan, batch_size=4).predict(x)
        np.testing.assert_array_equal(pred, reference)

    def test_outputs_survive_buffer_reuse(self, plan_and_data):
        """Yielded rows are copies: later batches must not mutate them."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=2)
        rows = []
        snapshots = []
        for row in runner.run(iter(x)):
            rows.append(row)
            snapshots.append(row.copy())
        for row, snap in zip(rows, snapshots):
            np.testing.assert_array_equal(row, snap)

    def test_multiple_streams_reuse_one_runner(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        first = np.stack(list(runner.run(iter(x[:5]))))
        second = np.stack(list(runner.run(iter(x[5:]))))
        np.testing.assert_array_equal(np.concatenate([first, second]),
                                      plan.execute(x))

    def test_no_reuse_mode_matches(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4, reuse_buffers=False,
                                        collect_timings=False)
        np.testing.assert_array_equal(runner.predict(x), plan.execute(x))

    def test_invalid_batch_size(self, plan_and_data):
        _, plan, _ = plan_and_data
        with pytest.raises(ValueError):
            engine.InferenceRunner(plan, batch_size=0)

    def test_empty_predict_raises(self, plan_and_data):
        _, plan, x = plan_and_data
        with pytest.raises(ValueError):
            engine.InferenceRunner(plan).predict(x[:0])

    def test_shape_change_mid_batch_raises(self, plan_and_data):
        """A shape change with samples already staged must fail loudly, not
        silently serve uninitialized staging rows."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        stream = [x[0], x[1], np.zeros((3, 10, 10))]
        with pytest.raises(ValueError, match="shape changed mid-batch"):
            list(runner.run(iter(stream)))


class TestStats:
    def test_counters_and_per_layer_timings(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        list(runner.run(iter(x)))
        stats = runner.stats
        assert stats.samples == x.shape[0]
        assert stats.batches == 3          # 4 + 4 + 3
        assert stats.seconds > 0
        assert stats.throughput > 0
        per_layer = stats.per_layer()
        assert per_layer, "per-layer timings should be populated"
        names = {name for name, _, _ in per_layer}
        assert any("fc" in name for name in names)
        calls = stats.layer_calls[per_layer[0][0]]
        assert calls == stats.batches
        payload = stats.to_dict()
        assert payload["samples"] == x.shape[0]
        assert payload["per_layer"][0]["seconds"] >= payload["per_layer"][-1]["seconds"]

    def test_reset(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        list(runner.run(iter(x)))
        runner.stats.reset()
        assert runner.stats.samples == 0
        assert runner.stats.throughput == 0.0
        assert not runner.stats.layer_seconds

    def test_float32_plan_runs(self, plan_and_data, tmp_path):
        """The runner serves half-width artifacts end to end (save/load/run)."""
        model, plan, x = plan_and_data
        path = tmp_path / "f32.npz"
        engine.save_model_plan(engine.compile_model_plan(model, dtype="float32"),
                               path)
        loaded = engine.load_plan(path)
        out = engine.InferenceRunner(loaded, batch_size=4).predict(x)
        assert out.dtype == np.float32
        assert np.abs(out - plan.execute(x)).max() <= 1e-2
