"""Batched inference runner: micro-batching semantics, buffers, timing stats."""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad


@pytest.fixture(scope="module")
def plan_and_data():
    rng = np.random.default_rng(7)
    model = TinyCNN(num_classes=4, width=6,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=3),
                    seed=2)
    x = np.abs(rng.normal(size=(11, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    return model, plan, x


class TestMicroBatching:
    @pytest.mark.parametrize("batch_size", [1, 3, 11, 16])
    def test_stream_matches_single_batch(self, plan_and_data, batch_size):
        """Any micro-batch size (including partial final batches) reproduces
        the single-big-batch output, row for row and in order."""
        _, plan, x = plan_and_data
        reference = plan.execute(x)
        runner = engine.InferenceRunner(plan, batch_size=batch_size)
        outs = np.stack(list(runner.run(iter(x))))
        np.testing.assert_array_equal(outs, reference)

    def test_predict_matches_stream(self, plan_and_data):
        _, plan, x = plan_and_data
        reference = plan.execute(x)
        pred = engine.InferenceRunner(plan, batch_size=4).predict(x)
        np.testing.assert_array_equal(pred, reference)

    def test_outputs_survive_buffer_reuse(self, plan_and_data):
        """Yielded rows are copies: later batches must not mutate them."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=2)
        rows = []
        snapshots = []
        for row in runner.run(iter(x)):
            rows.append(row)
            snapshots.append(row.copy())
        for row, snap in zip(rows, snapshots):
            np.testing.assert_array_equal(row, snap)

    def test_multiple_streams_reuse_one_runner(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        first = np.stack(list(runner.run(iter(x[:5]))))
        second = np.stack(list(runner.run(iter(x[5:]))))
        np.testing.assert_array_equal(np.concatenate([first, second]),
                                      plan.execute(x))

    def test_no_reuse_mode_matches(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4, reuse_buffers=False,
                                        collect_timings=False)
        np.testing.assert_array_equal(runner.predict(x), plan.execute(x))

    def test_invalid_batch_size(self, plan_and_data):
        _, plan, _ = plan_and_data
        with pytest.raises(ValueError):
            engine.InferenceRunner(plan, batch_size=0)

    def test_empty_predict_returns_typed_empty(self, plan_and_data):
        """Regression: an empty iterable yields an empty array of the plan's
        output shape and dtype, not an error from the staging loop."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan)
        out = runner.predict(x[:0])
        assert out.shape == (0, 4)
        assert out.dtype == plan.np_dtype
        assert runner.stats.samples == 0 and runner.stats.batches == 0

    def test_empty_predict_without_sample_axes_raises(self, plan_and_data):
        """A bare (0,) array carries no geometry — that stays a loud error."""
        _, plan, _ = plan_and_data
        with pytest.raises(ValueError, match="sample axes"):
            engine.InferenceRunner(plan).predict(np.empty((0,)))

    def test_shape_change_mid_batch_raises(self, plan_and_data):
        """A shape change with samples already staged must fail loudly, not
        silently serve uninitialized staging rows."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        stream = [x[0], x[1], np.zeros((3, 10, 10))]
        with pytest.raises(ValueError, match="shape changed mid-batch"):
            list(runner.run(iter(stream)))


class TestStats:
    def test_counters_and_per_layer_timings(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        list(runner.run(iter(x)))
        stats = runner.stats
        assert stats.samples == x.shape[0]
        assert stats.batches == 3          # 4 + 4 + 3
        assert stats.seconds > 0
        assert stats.throughput > 0
        per_layer = stats.per_layer()
        assert per_layer, "per-layer timings should be populated"
        names = {name for name, _, _ in per_layer}
        assert any("fc" in name for name in names)
        calls = stats.layer_calls[per_layer[0][0]]
        assert calls == stats.batches
        payload = stats.to_dict()
        assert payload["samples"] == x.shape[0]
        assert payload["per_layer"][0]["seconds"] >= payload["per_layer"][-1]["seconds"]

    def test_reset(self, plan_and_data):
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        list(runner.run(iter(x)))
        runner.stats.reset()
        assert runner.stats.samples == 0
        assert runner.stats.throughput == 0.0
        assert not runner.stats.layer_seconds

    def test_empty_stream_leaves_stats_zeroed(self, plan_and_data):
        """Edge case: an empty stream is a no-op for every counter."""
        _, plan, _ = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        assert list(runner.run(iter([]))) == []
        stats = runner.stats
        assert stats.samples == 0 and stats.batches == 0
        assert stats.seconds == 0.0 and stats.throughput == 0.0
        assert not stats.layer_seconds and not stats.layer_calls
        assert stats.per_layer() == []
        assert stats.to_dict()["per_layer"] == []

    def test_single_sample_stream(self, plan_and_data):
        """Edge case: one sample = one partial batch, one row out."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        rows = list(runner.run(iter(x[:1])))
        assert len(rows) == 1
        np.testing.assert_array_equal(rows[0], plan.execute(x[:1])[0])
        assert runner.stats.samples == 1 and runner.stats.batches == 1
        assert runner.stats.throughput > 0

    def test_reset_between_runs_isolates_counters(self, plan_and_data):
        """Edge case: without reset stats accumulate across run() calls;
        with reset the second run's counters stand alone."""
        _, plan, x = plan_and_data
        runner = engine.InferenceRunner(plan, batch_size=4)
        list(runner.run(iter(x[:6])))
        assert runner.stats.samples == 6
        list(runner.run(iter(x[6:])))       # no reset: accumulates
        assert runner.stats.samples == x.shape[0]
        runner.stats.reset()
        list(runner.run(iter(x[:3])))       # after reset: fresh counters
        assert runner.stats.samples == 3 and runner.stats.batches == 1
        calls = set(runner.stats.layer_calls.values())
        assert calls == {1}

    def test_plan_executor_is_the_shared_core(self, plan_and_data):
        """PlanExecutor.execute_batch is the same path the runner flushes
        through: direct use gives identical outputs and equivalent stats."""
        _, plan, x = plan_and_data
        executor = engine.PlanExecutor(plan)
        direct = executor.execute_batch(np.asarray(x[:4], dtype=plan.np_dtype))
        runner = engine.InferenceRunner(plan, batch_size=4)
        np.testing.assert_array_equal(np.array(direct, copy=True),
                                      runner.predict(x[:4]))
        assert executor.stats.samples == 4 and executor.stats.batches == 1
        assert runner.executor.stats.samples == 4
        assert set(executor.stats.layer_calls) == \
            set(runner.stats.layer_calls)

    def test_float32_plan_runs(self, plan_and_data, tmp_path):
        """The runner serves half-width artifacts end to end (save/load/run)."""
        model, plan, x = plan_and_data
        path = tmp_path / "f32.npz"
        engine.save_model_plan(engine.compile_model_plan(model, dtype="float32"),
                               path)
        loaded = engine.load_plan(path)
        out = engine.InferenceRunner(loaded, batch_size=4).predict(x)
        assert out.dtype == np.float32
        assert np.abs(out - plan.execute(x)).max() <= 1e-2
