"""Golden-artifact regression suite: frozen fixtures pin the format + math.

Each fixture under ``fixtures/`` (built by ``tools/make_golden_fixtures.py``)
carries the raw bytes of a saved engine artifact plus an input batch and the
output recorded at generation time.  These tests reload the artifact through
the public ``engine.load_plan`` entry point and demand **bit-exact** outputs,
so any future PR that silently changes the on-disk schema, the load path, or
the execution math fails here first.

A legitimate format change must bump the artifact version, regenerate the
fixtures, and say so in the PR.
"""

import os

import numpy as np
import pytest

from repro import engine

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")
CASES = ["conv", "linear", "resnet_tiny"]
INT_CASES = ["conv_int", "linear_int", "resnet_tiny_int"]
EXPECTED_KINDS = {"conv": engine.ConvPlan, "linear": engine.LinearPlan,
                  "resnet_tiny": engine.ModelPlan,
                  "conv_int": engine.ConvPlan, "linear_int": engine.LinearPlan,
                  "resnet_tiny_int": engine.ModelPlan}


def _load_fixture(name, tmp_path, mode="float"):
    """Materialize a fixture's embedded artifact to disk; return (plan, x, golden)."""
    with np.load(os.path.join(FIXTURE_DIR, f"{name}.npz")) as fixture:
        artifact = fixture["artifact"]
        x = fixture["input"]
        golden = fixture["golden"]
    path = tmp_path / f"{name}_artifact.npz"
    path.write_bytes(artifact.tobytes())
    return engine.load_plan(path, mode=mode), x, golden


@pytest.mark.parametrize("name", CASES + INT_CASES)
def test_fixture_files_exist(name):
    assert os.path.exists(os.path.join(FIXTURE_DIR, f"{name}.npz")), (
        f"missing golden fixture {name}.npz — run tools/make_golden_fixtures.py")


@pytest.mark.parametrize("name", CASES)
def test_golden_bit_exact(name, tmp_path):
    """Stored artifact bytes load and reproduce the stored activations exactly."""
    plan, x, golden = _load_fixture(name, tmp_path)
    assert isinstance(plan, EXPECTED_KINDS[name])
    assert x.dtype == np.float64 and golden.dtype == np.float64
    out = plan.execute(x)
    assert out.dtype == golden.dtype
    assert out.shape == golden.shape
    np.testing.assert_array_equal(
        out, golden,
        err_msg=f"golden fixture {name!r} drifted: artifact execution is no "
                "longer bit-identical to the frozen reference — if the "
                "format changed intentionally, bump the artifact version and "
                "regenerate with tools/make_golden_fixtures.py")


@pytest.mark.parametrize("name", INT_CASES)
def test_golden_int_route_bit_exact(name, tmp_path):
    """The integer-requantized route is pinned bit-for-bit too: loading the
    artifact with ``mode="int"`` must reproduce the frozen fixed-point
    output exactly (requant constants are part of the artifact format)."""
    plan, x, golden = _load_fixture(name, tmp_path, mode="int")
    assert isinstance(plan, EXPECTED_KINDS[name])
    assert plan.mode == "int"
    out = plan.execute(x)
    assert out.dtype == golden.dtype and out.shape == golden.shape
    np.testing.assert_array_equal(
        out, golden,
        err_msg=f"golden int fixture {name!r} drifted: the integer "
                "requantization math is no longer bit-identical to the "
                "frozen reference")


def test_int_fixture_artifact_also_executes_float(tmp_path):
    """An int fixture's artifact is an ordinary v2 artifact — the default
    (float) load must still work and produce outputs within the declared
    drift bound of the int golden."""
    plan, x, golden = _load_fixture("resnet_tiny_int", tmp_path)
    assert plan.mode == "float"
    out = plan.execute(x)
    assert np.abs(out - golden).max() <= plan.int_drift_bound()


def test_resnet_tiny_served_bit_exact(tmp_path):
    """The serving stack (runner + server) preserves golden bit-exactness."""
    plan, x, golden = _load_fixture("resnet_tiny", tmp_path)
    runner_out = engine.InferenceRunner(plan, batch_size=2).predict(x)
    np.testing.assert_array_equal(runner_out, golden)
    with engine.PlanServer(plan, n_shards=2, max_batch=2) as server:
        np.testing.assert_array_equal(server.predict(x), golden)


def test_generator_is_deterministic(tmp_path):
    """Regenerating the conv case today reproduces the committed golden output.

    (Guards the generator script itself: fixtures must be rebuildable, and a
    rebuild on an unchanged engine must be a no-op diff for the numerics.)
    """
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "make_golden_fixtures",
        os.path.join(FIXTURE_DIR, os.pardir, os.pardir, os.pardir,
                     "tools", "make_golden_fixtures.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _, x_new, golden_new = module.make_conv()
    with np.load(os.path.join(FIXTURE_DIR, "conv.npz")) as fixture:
        np.testing.assert_array_equal(x_new, fixture["input"])
        np.testing.assert_array_equal(golden_new, fixture["golden"])
