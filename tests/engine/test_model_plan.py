"""Model-level artifacts: capture, save/load round-trip, QAT-free loading.

Acceptance criteria pinned here:

* a saved model plan reloads through the unified ``engine.load_plan`` and
  reproduces the frozen in-process model to <= 1e-10 (float64 plans are
  bit-exact by construction: every graph op mirrors its Tensor counterpart's
  NumPy operations in the same order);
* loading and running the artifact constructs **no** QAT objects — no CIM
  layers, no quantizers;
* corrupted archives fail loudly with :class:`engine.ModelPlanError`.
"""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import MLP, TinyCNN, resnet8
from repro.nn import Tensor
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.tensor import no_grad


def scheme(quantize_psum: bool) -> QuantScheme:
    return QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                       weight_granularity="column", psum_granularity="column",
                       quantize_psum=quantize_psum)


CFG = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)


def build_calibrated(kind: str, quantize_psum: bool):
    """A small eval-mode model with exercised BN stats, plus an eval batch."""
    rng = np.random.default_rng(3)
    if kind == "conv":
        model = TinyCNN(num_classes=4, width=6, scheme=scheme(quantize_psum),
                        cim_config=CFG, seed=1)
        x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    else:
        model = MLP(in_features=24, num_classes=5, hidden=(16,),
                    scheme=scheme(quantize_psum), cim_config=CFG, seed=1)
        x = np.abs(rng.normal(size=(4, 24)))
    with no_grad():
        model(Tensor(x))          # one training-mode pass: BN stats move
    model.eval()
    with no_grad():
        model(Tensor(x))          # calibrate lazy LSQ scales
    return model, x


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_save_load_parity(self, tmp_path, kind, quantize_psum, dtype):
        """Saved-then-loaded plans match the frozen in-process model <= 1e-10
        (float64) and their own pre-save execution exactly (both dtypes)."""
        model, x = build_calibrated(kind, quantize_psum)
        engine.freeze(model)
        reference = model(Tensor(x)).data.copy()
        plan = engine.compile_model_plan(model, dtype=dtype)
        path = tmp_path / f"{kind}.npz"
        engine.save_model_plan(plan, path)
        loaded = engine.load_plan(path)
        assert isinstance(loaded, engine.ModelPlan)
        assert loaded.dtype == dtype
        out = loaded.execute(x)
        np.testing.assert_array_equal(out, plan.execute(x))
        if dtype == "float64":
            assert np.abs(out - reference).max() <= 1e-10
        else:
            assert out.dtype == np.float32
            assert np.abs(out - reference).max() <= 1e-2

    def test_non_power_of_two_pooling_stays_exact(self):
        """Global pooling over a 3x3 map divides by 9; the executor must use
        the Tensor path's sum * (1/count) formulation to stay bit-exact."""
        from repro.models import SimpleCNN
        rng = np.random.default_rng(11)
        model = SimpleCNN(num_classes=4, channels=(4, 6, 8),
                          scheme=scheme(True), cim_config=CFG, seed=3)
        x = np.abs(rng.normal(size=(2, 3, 12, 12)))   # 12 -> 12 -> 6 -> 3
        with no_grad():
            model(Tensor(x))
        model.eval()
        engine.freeze(model, calibrate=Tensor(x))
        reference = model(Tensor(x)).data
        plan = engine.compile_model_plan(model)
        np.testing.assert_array_equal(plan.execute(x), reference)

    def test_compile_from_unfrozen_calibrated_model(self, tmp_path):
        """Freezing is not required: a calibrated QAT model captures too."""
        model, x = build_calibrated("conv", True)
        reference = model(Tensor(x)).data.copy()
        plan = engine.compile_model_plan(model)
        assert np.abs(plan.execute(x) - reference).max() <= 1e-10

    def test_calibrate_argument_initializes_lazy_scales(self):
        model = MLP(in_features=10, num_classes=3, hidden=(8,),
                    scheme=scheme(True), cim_config=CFG, seed=0)
        x = np.abs(np.random.default_rng(0).normal(size=(4, 10)))
        with pytest.raises(engine.PlanNotReadyError):
            engine.compile_model_plan(model)
        plan = engine.compile_model_plan(model, calibrate=x)
        assert plan.n_cim_layers == 2

    def test_resnet8_acceptance(self, tmp_path):
        """The PR acceptance case: a saved ResNet-8 classifier reloads via
        ``engine.load_plan`` and matches the frozen in-process logits."""
        rng = np.random.default_rng(5)
        model = resnet8(num_classes=8, scheme=scheme(True), cim_config=CFG,
                        width_multiplier=0.25, seed=0)
        x = np.abs(rng.normal(size=(2, 3, 12, 12)))
        with no_grad():
            model(Tensor(x))
        model.eval()
        engine.freeze(model, calibrate=Tensor(x))
        reference = model(Tensor(x)).data.copy()
        path = tmp_path / "resnet8.npz"
        engine.save_model_plan(engine.compile_model_plan(model), path)
        logits = engine.load_plan(path).execute(x)
        assert np.abs(logits - reference).max() <= 1e-10

    def test_unified_load_plan_still_loads_layer_archives(self, tmp_path):
        from repro.core import CIMConv2d
        conv = CIMConv2d(4, 4, 3, scheme=scheme(True), cim_config=CFG,
                         rng=np.random.default_rng(0))
        conv.eval()
        x = Tensor(np.abs(np.random.default_rng(1).normal(size=(1, 4, 6, 6))))
        conv(x)
        path = tmp_path / "layer.npz"
        plan = engine.compile_conv_plan(conv)
        engine.save_plan(plan, path)
        loaded = engine.load_plan(path)
        assert isinstance(loaded, engine.ConvPlan)
        np.testing.assert_array_equal(loaded.execute(x.data), plan.execute(x.data))


class TestNoQATObjects:
    def test_load_and_run_constructs_no_qat_objects(self, tmp_path, monkeypatch):
        """The whole point of the artifact: deployment never touches QAT code."""
        model, x = build_calibrated("conv", True)
        path = tmp_path / "plan.npz"
        engine.save_model_plan(engine.compile_model_plan(model), path)
        expected = engine.load_plan(path).execute(x)

        def forbidden(self, *args, **kwargs):
            raise AssertionError(f"{type(self).__name__} constructed at load time")

        import repro.core.cim_conv
        import repro.core.cim_linear
        import repro.quant.lsq
        monkeypatch.setattr(repro.core.cim_conv.CIMConv2d, "__init__", forbidden)
        monkeypatch.setattr(repro.core.cim_linear.CIMLinear, "__init__", forbidden)
        monkeypatch.setattr(repro.quant.lsq.LSQQuantizer, "__init__", forbidden)
        loaded = engine.load_plan(path)
        np.testing.assert_array_equal(loaded.execute(x), expected)


class TestErrorPaths:
    def test_corrupted_manifest_raises(self, tmp_path):
        model, _ = build_calibrated("linear", False)
        path = tmp_path / "plan.npz"
        engine.save_model_plan(engine.compile_model_plan(model), path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files if k != "__manifest__"}
        np.savez(path, __manifest__=np.frombuffer(b"{not json", dtype=np.uint8),
                 **arrays)
        with pytest.raises(engine.ModelPlanError, match="corrupted manifest"):
            engine.load_plan(path)

    def test_missing_layer_arrays_raise(self, tmp_path):
        model, _ = build_calibrated("linear", False)
        path = tmp_path / "plan.npz"
        engine.save_model_plan(engine.compile_model_plan(model), path)
        with np.load(path) as archive:
            entries = {k: archive[k] for k in archive.files
                       if not k.startswith("layer0.")}
        np.savez(path, **entries)
        with pytest.raises(engine.ModelPlanError):
            engine.load_plan(path)

    def test_unsupported_version_raises(self, tmp_path):
        import json
        model, _ = build_calibrated("linear", False)
        path = tmp_path / "plan.npz"
        engine.save_model_plan(engine.compile_model_plan(model), path)
        with np.load(path) as archive:
            manifest = json.loads(bytes(archive["__manifest__"]).decode())
            arrays = {k: archive[k] for k in archive.files if k != "__manifest__"}
        manifest["version"] = 999
        np.savez(path, __manifest__=np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8), **arrays)
        with pytest.raises(engine.ModelPlanError, match="version"):
            engine.load_plan(path)

    def test_version_1_artifacts_still_load_in_float_mode(self):
        """The manifest version bump (1 -> 2, requant constants added) must
        not orphan old artifacts: the committed golden fixtures are version-1
        bytes and have to keep loading — and executing bit-exactly — on the
        default float route.  Only mode='int' is out of reach for them."""
        import io
        import json
        import os
        from repro.engine.model_plan import (MODEL_PLAN_VERSION,
                                             SUPPORTED_MODEL_PLAN_VERSIONS)
        assert MODEL_PLAN_VERSION == 2
        assert SUPPORTED_MODEL_PLAN_VERSIONS == {1, 2}
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "resnet_tiny.npz")
        with np.load(fixture) as archive:
            artifact = bytes(archive["artifact"].tobytes())
            x, golden = archive["input"], archive["golden"]
        manifest = json.loads(bytes(
            np.load(io.BytesIO(artifact))["__manifest__"]).decode())
        assert manifest["version"] == 1          # the fixture IS a v1 artifact
        plan = engine.load_plan(io.BytesIO(artifact))
        np.testing.assert_array_equal(plan.execute(x), golden)
        with pytest.raises(engine.ModelPlanError,
                           match="no requant constants"):
            plan.set_mode("int")
        with pytest.raises(engine.ModelPlanError,
                           match="no requant constants"):
            engine.load_plan(io.BytesIO(artifact), mode="int")

    def test_non_artifact_archive_raises(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(engine.ModelPlanError, match="not an engine artifact"):
            engine.load_plan(path)

    def test_unexportable_module_raises(self):
        class Weird(Module):
            def forward(self, x):
                return x

        with pytest.raises(engine.ModelPlanError, match="graph-capture hook"):
            engine.compile_model_plan(Weird())

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported plan dtype"):
            engine.normalize_dtype("float16")

    def test_enabled_variation_model_rejected(self):
        """Model plans are deterministic artifacts: an enabled variation
        model must fail the export loudly, not be silently dropped."""
        from repro.cim import VariationModel
        model, _ = build_calibrated("conv", True)
        for _, layer in model.named_modules():
            if hasattr(layer, "set_variation") and not hasattr(layer, "layer"):
                layer.set_variation(VariationModel(sigma=0.2, target="cells",
                                                   seed=0))
        with pytest.raises(engine.ModelPlanError, match="variation"):
            engine.compile_model_plan(model)


class TestReluSemantics:
    @pytest.mark.parametrize("use_workspace", [False, True])
    def test_interpreted_relu_maps_nan_to_zero(self, use_workspace):
        """The single-pass ``np.fmax`` ReLU keeps the documented NaN -> 0
        semantics on both the fresh-array and workspace-buffer paths."""
        builder = engine.GraphBuilder("float64")
        relu = builder.add_op("relu", [0], name="relu")
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=relu)
        x = np.array([[np.nan, -np.nan], [-1.0, 2.5], [-0.0, np.inf]])
        ws = {} if use_workspace else None
        out = plan.execute(x, workspace=ws)
        np.testing.assert_array_equal(
            out, np.array([[0.0, 0.0], [0.0, 2.5], [0.0, np.inf]]))
        # -0.0 normalizes to +0.0, matching np.where(x > 0, x, 0.0)
        assert not np.signbit(out[2, 0])


class TestBatchNormFolding:
    def test_frozen_stats_match_eval_forward(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm2d(5)
        x = rng.normal(size=(4, 5, 3, 3))
        bn(Tensor(x))                      # training pass updates stats
        bn.eval()
        ref = bn(Tensor(x)).data
        mean, denom = bn.frozen_stats()
        out = ((x - mean.reshape(1, -1, 1, 1)) / denom.reshape(1, -1, 1, 1)
               * bn.weight.data.reshape(1, -1, 1, 1)
               + bn.bias.data.reshape(1, -1, 1, 1))
        np.testing.assert_array_equal(out, ref)

    def test_fold_to_affine_close(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm2d(4)
        bn(Tensor(rng.normal(size=(6, 4, 2, 2))))
        bn.eval()
        x = rng.normal(size=(2, 4, 2, 2))
        scale, shift = bn.fold_to_affine()
        out = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out, bn(Tensor(x)).data, atol=1e-12)

    def test_untracked_stats_cannot_freeze(self):
        bn = BatchNorm2d(3, track_running_stats=False)
        with pytest.raises(ValueError, match="track_running_stats"):
            bn.frozen_stats()
