"""Serving-lifecycle tests: rolling reloads, autoscaling, and their races.

The serving stack's lifecycle contract has three legs, each pinned here:

* **rolling reload** — ``POST /v1/models/{name}/reload`` swaps in a fresh
  probe-validated pool atomically; no accepted request is dropped, every
  answered row is bit-identical across the swap, a corrupt replacement is
  refused with 409 while the old pool keeps serving, and the probe-shape
  cache plus the ``/metrics`` version block roll over with the artifact;
* **shard-pool scaling** — ``add_shard``/``retire_shard`` grow and shrink a
  live pool without dropping requests or losing stats, and the
  :class:`~repro.engine.netserver.Autoscaler` drives them from queue
  pressure (grow) and sustained idle (shrink);
* **request-lifetime correctness** — the regressions fixed alongside:
  one *shared* deadline per request (not one per queued sample), an
  all-or-nothing ``submit_many`` (sample counters conserve through partial
  failures), single-flight artifact cache misses, serialized shape probes,
  and torn-free scheduler stats snapshots.
"""

import json
import threading
import time

import numpy as np
import pytest

from netutil import predict, request

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.engine import server as server_mod
from repro.engine import wire
from repro.engine.scheduler import DynamicBatcher, Request
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad
from concurrent.futures import Future


class ToyPlan:
    """``2x + 1`` over arbitrary trailing shape — fast structural target."""

    np_dtype = np.dtype(np.float64)

    def execute(self, x, timings=None, workspace=None):
        return np.asarray(x) * 2.0 + 1.0


class SlowPlan(ToyPlan):
    """Deliberately slow on non-empty batches (zero-row probes stay free)."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def execute(self, x, timings=None, workspace=None):
        if np.asarray(x).shape[0]:
            time.sleep(self.delay_s)
        return super().execute(x)


class ProbeTrackingPlan(ToyPlan):
    """Counts concurrent zero-row (probe) executions — must never exceed 1."""

    def __init__(self):
        self._lock = threading.Lock()
        self._active_probes = 0
        self.max_active_probes = 0
        self.probes = 0

    def execute(self, x, timings=None, workspace=None):
        if np.asarray(x).shape[0] == 0:
            with self._lock:
                self._active_probes += 1
                self.probes += 1
                self.max_active_probes = max(self.max_active_probes,
                                             self._active_probes)
            time.sleep(0.005)   # widen the window a racing probe would hit
            with self._lock:
                self._active_probes -= 1
        return super().execute(x)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A real saved model-plan artifact plus one calibration input."""
    rng = np.random.default_rng(11)
    model = TinyCNN(num_classes=4, width=6,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=3),
                    seed=3)
    x = np.abs(rng.normal(size=(16, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    path = tmp_path_factory.mktemp("lifecycle") / "plan.npz"
    engine.save_model_plan(plan, path)
    return plan, str(path), x


def _assert_conserves(counters):
    assert counters["accepted"] + counters["rejected"] == counters["offered"]
    assert (counters["samples_accepted"] + counters["samples_rejected"]
            == counters["samples_offered"])


# --------------------------------------------------------------------------- #
# rolling reload
# --------------------------------------------------------------------------- #
def test_reload_under_load_drops_nothing_and_stays_bit_identical():
    """Swaps mid-traffic: every accepted request completes, rows bit-exact."""
    with engine.NetServer() as net:
        net.add_model("toy", SlowPlan(0.002), n_shards=2, max_batch=4,
                      max_wait_ms=0.5, queue_size=64)
        endpoint = net.endpoint("toy")
        stop = threading.Event()
        outcomes = []
        outcomes_lock = threading.Lock()

        def hammer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                batch = rng.normal(size=(2, 3)).tolist()
                status, _, body = predict(net, "toy", batch)
                with outcomes_lock:
                    outcomes.append((status, batch, body))

        threads = [threading.Thread(target=hammer, args=(seed,))
                   for seed in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        for _ in range(3):                      # three rolling swaps
            status, _, body = request(net, "POST", "/v1/models/toy/reload")
            assert status == 200 and body["reloaded"] is True
            time.sleep(0.1)
        stop.set()
        for thread in threads:
            thread.join()

        assert len(outcomes) > 20
        for status, batch, body in outcomes:
            assert status in (200, 503)         # never 5xx, never dropped
            if status == 200:
                expected = np.asarray(batch) * 2.0 + 1.0
                assert np.asarray(body["outputs"]).tolist() \
                    == expected.tolist()        # bit-identical across swaps
        counters = endpoint.counters.to_dict()
        _assert_conserves(counters)
        assert counters["failed"] == 0          # zero accepted requests lost
        assert counters["completed"] == counters["accepted"]
        assert counters["reloads"] == 3


def test_reload_empty_body_restats_artifact_and_versions_metrics(artifact):
    plan, path, x = artifact
    with engine.NetServer() as net:
        net.add_model("cnn", path, n_shards=1, max_batch=8, max_wait_ms=0.5,
                      queue_size=32)
        status, _, before = predict(net, "cnn", x[:2].tolist(), timeout=30.0)
        assert status == 200
        version0 = net.metrics()["models"]["cnn"]["plan"]["version"]
        assert version0["reloads"] == 0
        assert version0["artifact"]["path"].endswith("plan.npz")

        time.sleep(0.01)                        # guarantee a fresh mtime_ns
        engine.save_model_plan(plan, path)      # the operator's cp step
        status, _, body = request(net, "POST", "/v1/models/cnn/reload")
        assert status == 200
        assert body == {"model": "cnn", "reloaded": True, "reloads": 1,
                        "n_shards": 1, "artifact": body["artifact"]}

        version1 = net.metrics()["models"]["cnn"]["plan"]["version"]
        assert version1["reloads"] == 1
        assert version1["artifact"]["mtime_ns"] \
            != version0["artifact"]["mtime_ns"]   # new bytes are visible
        status, _, after = predict(net, "cnn", x[:2].tolist(), timeout=30.0)
        assert status == 200
        assert after["outputs"] == before["outputs"]   # same weights, bit-exact


def test_reload_with_path_switches_artifact(artifact, tmp_path):
    plan, path, x = artifact
    other = tmp_path / "other.npz"
    engine.save_model_plan(plan, other)
    with engine.NetServer() as net:
        net.add_model("cnn", path, n_shards=1, queue_size=32)
        status, _, body = request(net, "POST", "/v1/models/cnn/reload",
                                  payload={"path": str(other)})
        assert status == 200
        assert body["artifact"]["path"].endswith("other.npz")
        metrics = net.metrics()["models"]["cnn"]
        assert metrics["plan"]["version"]["artifact"]["path"] \
            .endswith("other.npz")
        assert predict(net, "cnn", x[:2].tolist(), timeout=30.0)[0] == 200


def test_compiled_path_mount_keeps_artifact_identity_across_reload(artifact):
    """``compile=True`` must not strip the path source: reloads re-resolve
    the artifact and the rebuilt pool comes up compiled again."""
    plan, path, x = artifact
    with engine.NetServer() as net:
        net.add_model("cnn", path, compile=True, n_shards=1, queue_size=32)
        metrics = net.metrics()["models"]["cnn"]["plan"]
        assert metrics["compiled"] is True
        assert metrics["version"]["artifact"]["path"].endswith("plan.npz")
        status, _, before = predict(net, "cnn", x[:2].tolist(), timeout=30.0)
        assert status == 200
        assert request(net, "POST", "/v1/models/cnn/reload")[0] == 200
        metrics = net.metrics()["models"]["cnn"]["plan"]
        assert metrics["compiled"] is True       # rebuild re-compiled
        assert metrics["version"]["reloads"] == 1
        status, _, after = predict(net, "cnn", x[:2].tolist(), timeout=30.0)
        assert status == 200
        assert after["outputs"] == before["outputs"]


def test_reload_corrupt_artifact_rejected_409_old_pool_serves(artifact,
                                                              tmp_path):
    _, path, x = artifact
    corrupt = tmp_path / "corrupt.npz"
    corrupt.write_bytes(b"this is not an npz archive")
    with engine.NetServer() as net:
        net.add_model("cnn", path, n_shards=1, queue_size=32)
        status, _, body = request(net, "POST", "/v1/models/cnn/reload",
                                  payload={"path": str(corrupt)})
        assert status == 409
        assert body["error"]["reason"] == "reload rejected"
        assert "keeps serving" in body["error"]["detail"]
        metrics = net.metrics()["models"]["cnn"]
        assert metrics["requests"]["reloads"] == 0       # nothing swapped
        assert metrics["plan"]["version"]["artifact"]["path"].endswith(
            "plan.npz")
        assert predict(net, "cnn", x[:2].tolist(), timeout=30.0)[0] == 200


def test_reload_probe_rejects_shape_incompatible_artifact(artifact):
    """A replacement that cannot serve the live traffic's shapes is refused."""
    _, path, _ = artifact
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=1, queue_size=32)
        assert predict(net, "toy", [[1.0, 2.0]])[0] == 200   # shape (2,) live
        endpoint = net.endpoint("toy")
        with pytest.raises(wire.ReloadRejected, match="probe validation"):
            endpoint.reload(path)           # the CNN cannot execute (0, 2)
        assert endpoint.counters.to_dict()["reloads"] == 0
        assert predict(net, "toy", [[1.0, 2.0]])[0] == 200   # untouched


def test_reload_clears_probe_shape_cache_and_restart_does_too():
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=1, queue_size=32)
        endpoint = net.endpoint("toy")
        assert predict(net, "toy", [[1.0, 2.0, 3.0]])[0] == 200
        assert (3,) in endpoint._known_shapes
        endpoint.reload()
        assert endpoint._known_shapes == set()   # new plan revalidates
        assert predict(net, "toy", [[1.0, 2.0, 3.0]])[0] == 200
        assert (3,) in endpoint._known_shapes
        endpoint.restart()
        assert endpoint._known_shapes == set()


def test_reload_route_rejects_bad_bodies_and_unknown_models():
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=1, queue_size=32)
        status, _, body = request(net, "POST", "/v1/models/toy/reload",
                                  payload={"paths": "typo"})
        assert status == 400 and "unknown reload field" in \
            body["error"]["detail"]
        status, _, body = request(net, "POST", "/v1/models/toy/reload",
                                  payload={"path": ""})
        assert status == 400
        status, _, _ = request(net, "POST", "/v1/models/ghost/reload")
        assert status == 404
        assert predict(net, "toy", [[1.0]])[0] == 200


def test_decode_reload_request_contract():
    assert wire.decode_reload_request(b"") is None
    assert wire.decode_reload_request(b"{}") is None
    assert wire.decode_reload_request(b'{"path": "p.npz"}') == "p.npz"
    for bad in (b"[1]", b"nonsense", b'{"path": 3}', b'{"path": ""}',
                b'{"path": "x", "extra": 1}'):
        with pytest.raises(wire.BadRequest):
            wire.decode_reload_request(bad)


# --------------------------------------------------------------------------- #
# shard-pool scaling
# --------------------------------------------------------------------------- #
def test_add_and_retire_shard_preserve_service_and_stats():
    server = engine.PlanServer(ToyPlan(), n_shards=1, max_batch=4,
                               max_wait_ms=0.5, queue_size=32)
    try:
        batch = np.arange(8.0).reshape(4, 2)
        np.testing.assert_array_equal(server.predict(batch),
                                      batch * 2.0 + 1.0)
        assert server.add_shard() == 2
        np.testing.assert_array_equal(server.predict(batch),
                                      batch * 2.0 + 1.0)
        served = server.stats_report()["total"]["samples"]
        assert served == 8
        assert server.retire_shard(wait=True, timeout=5.0) == 1
        report = server.stats_report()
        # the retired shard's work moved to the drained accumulator: totals
        # stay monotonic across pool scaling ("added" counts lifetime
        # spawns, mount included)
        assert report["total"]["samples"] == served
        assert report["pool"] == {"added": 2, "retired": 1, "died": 0}
        np.testing.assert_array_equal(server.predict(batch),
                                      batch * 2.0 + 1.0)
    finally:
        server.close()


def test_retire_refuses_to_empty_the_pool():
    server = engine.PlanServer(ToyPlan(), n_shards=1, queue_size=32)
    try:
        with pytest.raises(ValueError, match="last shard"):
            server.retire_shard()
        assert server.n_shards == 1
    finally:
        server.close()


def test_add_shard_on_closed_server_raises():
    server = engine.PlanServer(ToyPlan(), n_shards=1, queue_size=32)
    server.close()
    with pytest.raises(engine.ServerClosed):
        server.add_shard()


def test_autoscaler_grows_under_pressure_and_shrinks_when_idle():
    with engine.NetServer() as net:
        net.add_model("slow", SlowPlan(0.02), n_shards=1, max_batch=1,
                      max_wait_ms=0.0, queue_size=16, max_shards=3,
                      autoscale=dict(interval_s=0.01, up_queue_frac=0.25,
                                     idle_s=0.25, cooldown_s=0.05))
        endpoint = net.endpoint("slow")
        assert endpoint.autoscaler is not None
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                predict(net, "slow", [[1.0, 2.0]])

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        try:
            while endpoint.server.n_shards < 2:
                assert time.monotonic() < deadline, "autoscaler never grew"
                time.sleep(0.01)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert endpoint.counters.to_dict()["scale_ups"] >= 1

        deadline = time.monotonic() + 10.0      # idle now: must shrink back
        while endpoint.server.n_shards > 1:
            assert time.monotonic() < deadline, "autoscaler never shrank"
            time.sleep(0.01)
        counters = endpoint.counters.to_dict()
        assert counters["scale_downs"] >= 1
        _assert_conserves(counters)
        block = net.metrics()["models"]["slow"]["autoscaler"]
        assert block["enabled"] and block["alive"]
        assert block["min_shards"] == 1 and block["max_shards"] == 3
        assert predict(net, "slow", [[1.0, 2.0]])[0] == 200


def test_autoscaler_metrics_block_reports_disabled_without_max_shards():
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=1, queue_size=32)
        assert net.metrics()["models"]["toy"]["autoscaler"] \
            == {"enabled": False}


def test_autoscaler_rejects_max_shards_below_pool_size():
    with engine.NetServer() as net:
        with pytest.raises(ValueError, match="below the mounted pool"):
            net.add_model("toy", ToyPlan(), n_shards=3, max_shards=2,
                          queue_size=32)


# --------------------------------------------------------------------------- #
# request-lifetime regressions
# --------------------------------------------------------------------------- #
def test_predict_timeout_is_one_shared_deadline():
    """10 queued samples at 50ms each must fail a 150ms budget *once*, not
    stretch it tenfold (the per-future accumulation this regression pins)."""
    server = engine.PlanServer(SlowPlan(0.05), n_shards=1, max_batch=1,
                               max_wait_ms=0.0, queue_size=64)
    try:
        batch = np.ones((10, 2))
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            server.predict(batch, timeout=0.15)
        elapsed = time.monotonic() - t0
        assert elapsed < 0.8, (
            f"predict overstayed its shared deadline: {elapsed:.2f}s "
            "(per-future timeouts would accumulate to ~1.5s)")
    finally:
        server.close()


def test_endpoint_timeout_is_one_shared_deadline_over_http():
    with engine.NetServer() as net:
        net.add_model("slow", SlowPlan(0.05), n_shards=1, max_batch=1,
                      max_wait_ms=0.0, queue_size=64, request_timeout_s=0.2)
        t0 = time.monotonic()
        status, _, body = predict(net, "slow",
                                  np.ones((10, 2)).tolist(), timeout=15.0)
        elapsed = time.monotonic() - t0
        assert status == 504
        assert body["error"]["reason"] == "deadline exceeded"
        assert elapsed < 1.5, (
            f"504 took {elapsed:.2f}s; per-sample timeouts would take >2s")
        counters = net.endpoint("slow").counters.to_dict()
        _assert_conserves(counters)
        assert counters["failed"] == 1


def test_submit_many_is_all_or_nothing_and_conserves_samples():
    plan = SlowPlan(0.05)
    server = engine.PlanServer(plan, n_shards=1, max_batch=1,
                               max_wait_ms=0.0, queue_size=4)
    try:
        held = [server.submit(np.array([float(i), 0.0]), timeout=1.0)
                for i in range(5)]          # 1 executing + 4 filling the queue
        with pytest.raises(TimeoutError):
            # one slot may free mid-call; a 3-sample request cannot fit, and
            # any enqueued prefix must be withdrawn with it
            server.submit_many(np.ones((8, 2)), timeout=0.0)
        rows = [future.result(timeout=10.0) for future in held]
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(row, [2.0 * i + 1.0, 1.0])
        # drain fully, then check nothing from the failed request executed
        deadline = time.monotonic() + 5.0
        while server.batcher.pending and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.stats_report()["total"]["samples"] == 5
    finally:
        server.close()


def test_load_plan_cached_is_single_flight(artifact, monkeypatch):
    _, path, _ = artifact
    engine.clear_plan_cache()
    parses = []
    real_load_plan = server_mod.load_plan

    def counting_load_plan(*args, **kwargs):
        parses.append(threading.get_ident())
        time.sleep(0.05)        # hold the miss open so every thread piles in
        return real_load_plan(*args, **kwargs)

    monkeypatch.setattr(server_mod, "load_plan", counting_load_plan)
    barrier = threading.Barrier(8)
    results = [None] * 8

    def hit(i):
        barrier.wait()
        results[i] = engine.load_plan_cached(path)

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(parses) == 1, f"artifact parsed {len(parses)}x under one miss"
    assert all(result is results[0] for result in results)
    engine.clear_plan_cache()


def test_shape_probes_are_serialized():
    plan = ProbeTrackingPlan()
    with engine.NetServer() as net:
        net.add_model("toy", plan, n_shards=1, max_batch=8, max_wait_ms=0.5,
                      queue_size=64)
        statuses = [None] * 8
        barrier = threading.Barrier(8)

        def hit(i):
            barrier.wait()      # 8 distinct never-seen shapes, all at once
            statuses[i] = predict(net, "toy", [[1.0] * (i + 1)])[0]

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses == [200] * 8
        assert plan.probes == 8
        assert plan.max_active_probes == 1, \
            "two shape probes ran the shared plan concurrently"


def test_scheduler_snapshot_is_never_torn():
    batcher = DynamicBatcher(max_batch=4, max_wait_ms=0.0, queue_size=64)
    stop = threading.Event()
    violations = []

    def produce():
        seq = 0
        while not stop.is_set():
            try:
                batcher.put(Request(seq=seq, payload=np.zeros(1),
                                    future=Future()), timeout=0.1)
                seq += 1
            except (TimeoutError, engine.SchedulerClosed):
                pass            # racing shutdown is part of the test

    def consume():
        while not stop.is_set():
            batcher.next_batch(stop=stop)

    def read():
        while not stop.is_set():
            stats = batcher.stats_snapshot()
            if not (stats.batched_samples <= stats.requests
                    and stats.batches <= stats.batched_samples
                    and stats.mean_batch <= batcher.max_batch):
                violations.append(stats.to_dict())

    threads = ([threading.Thread(target=produce) for _ in range(2)]
               + [threading.Thread(target=consume) for _ in range(2)]
               + [threading.Thread(target=read) for _ in range(2)])
    for thread in threads:
        thread.start()
    time.sleep(0.3)
    stop.set()
    batcher.kick()
    batcher.close()
    for thread in threads:
        thread.join()
    assert violations == []


def test_next_batch_stop_event_interrupts_a_blocked_consumer():
    batcher = DynamicBatcher(max_batch=4, max_wait_ms=5.0, queue_size=8)
    stop = threading.Event()
    result = []
    consumer = threading.Thread(
        target=lambda: result.append(batcher.next_batch(stop=stop)))
    consumer.start()
    time.sleep(0.05)            # let it block on the empty queue
    stop.set()
    batcher.kick()
    consumer.join(timeout=2.0)
    assert not consumer.is_alive()
    assert result == [[]]       # interrupted: no batch claimed, not closed
