"""Plan-graph compiler: fusion, buffer arena, and the scheduled executor.

The contract pinned here is **bit-exactness**: ``CompiledPlan.execute`` must
reproduce ``ModelPlan.execute`` bit for bit on every golden fixture (float
and int routes) and on randomized models, because interpretation is the
reference path and the compiler is pure scheduling — same NumPy ops, same
order, different buffers.  The rest of the suite covers the schedule
structure (what fuses, what must not), the liveness-planned arena (blocks
allocated, recycled, never handed out as results), and the integration
surface (runner, server, ``load_plan(compile=True)``).
"""

import os

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.engine.compiler import _ARENA_KEY, _MAX_ARENAS
from repro.models import MLP, TinyCNN, resnet8
from repro.nn import Tensor
from repro.nn.tensor import no_grad

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")
CFG = CIMConfig(array_rows=32, array_cols=32, cell_bits=1, adc_bits=3)


def scheme(quantize_psum: bool = True) -> QuantScheme:
    return QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                       weight_granularity="column", psum_granularity="column",
                       quantize_psum=quantize_psum)


def build_plan(kind: str, quantize_psum: bool = True, dtype: str = "float64"):
    """A calibrated small model captured as a ModelPlan, plus an eval batch."""
    rng = np.random.default_rng(7)
    if kind == "conv":
        model = TinyCNN(num_classes=4, width=6, scheme=scheme(quantize_psum),
                        cim_config=CFG, seed=1)
        x = np.abs(rng.normal(size=(3, 3, 8, 8)))
    elif kind == "resnet":
        model = resnet8(num_classes=5, scheme=scheme(quantize_psum),
                        cim_config=CFG, width_multiplier=0.25, seed=2)
        x = np.abs(rng.normal(size=(2, 3, 12, 12)))
    else:
        model = MLP(in_features=24, num_classes=5, hidden=(16,),
                    scheme=scheme(quantize_psum), cim_config=CFG, seed=1)
        x = np.abs(rng.normal(size=(4, 24)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    with no_grad():
        model(Tensor(x))
    plan = engine.compile_model_plan(model, dtype=dtype)
    return plan, x.astype(plan.np_dtype)


def ew_graph_plan(output: str = "gap"):
    """A hand-built plan of pure graph ops (no CIM layers).

    ``input -> batchnorm -> relu -> <output op>`` — the bn+relu chain fuses,
    and the output op selects which structural edge case is under test.
    """
    builder = engine.GraphBuilder("float64")
    bn = builder.add_op("batchnorm", [0], name="bn",
                        arrays={"mean": np.array([0.5, -0.25]),
                                "denom": np.array([2.0, 0.5])})
    relu = builder.add_op("relu", [bn], name="relu")
    if output == "gap":
        out = builder.add_op("global_avg_pool", [relu], name="gap")
    elif output == "flatten":
        out = builder.add_op("flatten", [relu], name="flat")
    else:
        out = relu
    return engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                            output_id=out)


# --------------------------------------------------------------------------- #
# golden differentials — the acceptance criterion
# --------------------------------------------------------------------------- #
class TestGoldenDifferential:
    def _load(self, name, tmp_path, mode="float", compile=False):
        with np.load(os.path.join(FIXTURE_DIR, f"{name}.npz")) as fixture:
            artifact, x = fixture["artifact"], fixture["input"]
            golden = fixture["golden"]
        path = tmp_path / f"{name}.npz"
        path.write_bytes(artifact.tobytes())
        return engine.load_plan(path, mode=mode, compile=compile), x, golden

    def test_compiled_matches_golden_float(self, tmp_path):
        """Parity 0.0 vs both the interpreter and the frozen golden bytes."""
        plan, x, golden = self._load("resnet_tiny", tmp_path)
        compiled = plan.compile()
        out = compiled.execute(x)
        np.testing.assert_array_equal(out, plan.execute(x))
        np.testing.assert_array_equal(out, golden)

    def test_int_fixture_in_float_mode_matches_interpreter(self, tmp_path):
        """The int fixture's golden is the *int-route* output; in float mode
        the contract is bit-exactness vs the interpreter (and the documented
        drift bound vs the golden)."""
        plan, x, golden = self._load("resnet_tiny_int", tmp_path)
        compiled = plan.compile()
        out = compiled.execute(x)
        np.testing.assert_array_equal(out, plan.execute(x))
        assert np.abs(out - golden).max() <= plan.int_drift_bound()

    def test_compiled_matches_golden_int_route(self, tmp_path):
        plan, x, golden = self._load("resnet_tiny_int", tmp_path, mode="int")
        compiled = plan.compile()
        assert compiled.mode == "int"
        out = compiled.execute(x)
        np.testing.assert_array_equal(out, plan.execute(x))
        np.testing.assert_array_equal(out, golden)

    def test_load_plan_compile_flag_returns_compiled(self, tmp_path):
        plan, x, golden = self._load("resnet_tiny", tmp_path, compile=True)
        assert isinstance(plan, engine.CompiledPlan)
        np.testing.assert_array_equal(plan.execute(x), golden)

    @pytest.mark.parametrize("name", ["conv", "linear"])
    def test_layer_archives_ignore_compile_flag(self, name, tmp_path):
        """Layer plans have no op graph; ``compile=True`` is a documented no-op."""
        plan, x, golden = self._load(name, tmp_path, compile=True)
        assert isinstance(plan, (engine.ConvPlan, engine.LinearPlan))
        np.testing.assert_array_equal(plan.execute(x), golden)


# --------------------------------------------------------------------------- #
# randomized differentials
# --------------------------------------------------------------------------- #
class TestRandomizedDifferential:
    @pytest.mark.parametrize("kind", ["conv", "linear", "resnet"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_compiled_equals_interpreted(self, kind, quantize_psum, dtype):
        plan, x = build_plan(kind, quantize_psum, dtype)
        compiled = plan.compile()
        ws = {}
        expected = plan.execute(x)
        np.testing.assert_array_equal(compiled.execute(x), expected)
        # workspace-backed arena run, twice: steady state stays exact
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      expected)
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      expected)

    @pytest.mark.parametrize("kind", ["conv", "linear", "resnet"])
    def test_int_mode_equals_interpreted(self, kind):
        plan, x = build_plan(kind)
        compiled = plan.compile()
        plan.set_mode("int")
        assert compiled.mode == "int"
        np.testing.assert_array_equal(compiled.execute(x), plan.execute(x))
        # and back: mode switching needs no recompilation
        compiled.set_mode("float")
        assert plan.mode == "float"
        np.testing.assert_array_equal(compiled.execute(x), plan.execute(x))

    def test_varying_batch_sizes_one_compiled_plan(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        ws = {}
        rng = np.random.default_rng(11)
        for n in (1, 2, 5):
            xb = np.abs(rng.normal(size=(n,) + x.shape[1:]))
            np.testing.assert_array_equal(compiled.execute(xb, workspace=ws),
                                          plan.execute(xb))


# --------------------------------------------------------------------------- #
# schedule structure
# --------------------------------------------------------------------------- #
class TestFusion:
    def test_resnet_fuses_cim_bn_relu_chains(self):
        plan, _ = build_plan("resnet")
        compiled = plan.compile()
        ops = [step.ops for step in compiled.steps]
        assert "cim+batchnorm+relu" in ops          # stem / block conv1
        assert "cim+batchnorm" in ops               # conv2 (relu after add)
        assert "add+relu" in ops                    # residual joins
        assert compiled.n_fused > 0
        assert compiled.n_steps + compiled.n_fused == len(plan.nodes) - 1

    def test_multi_consumer_value_does_not_fuse(self):
        """A value read by two nodes keeps its own step (dataflow unchanged)."""
        builder = engine.GraphBuilder("float64")
        bn = builder.add_op("batchnorm", [0], name="bn",
                            arrays={"mean": np.zeros(2), "denom": np.ones(2)})
        relu = builder.add_op("relu", [bn], name="relu")
        add = builder.add_op("add", [bn, relu], name="add")
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=add)
        compiled = engine.compile_plan_graph(plan)
        assert [s.ops for s in compiled.steps] == ["batchnorm", "relu", "add"]
        x = np.random.default_rng(0).normal(size=(2, 2, 3, 3))
        np.testing.assert_array_equal(compiled.execute(x), plan.execute(x))

    def test_graph_output_never_fused_away(self):
        """The output value must stay addressable even when solely consumed —
        here the bn output *is* the graph output, so relu (a later op reading
        it) cannot absorb it."""
        builder = engine.GraphBuilder("float64")
        bn = builder.add_op("batchnorm", [0], name="bn",
                            arrays={"mean": np.zeros(2), "denom": np.ones(2)})
        builder.add_op("relu", [bn], name="relu")
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=bn)
        compiled = engine.compile_plan_graph(plan)
        assert [s.ops for s in compiled.steps] == ["batchnorm", "relu"]

    def test_raw_graph_ops_compile_and_fuse(self):
        """Graph-level ``conv2d``/``linear`` nodes (weights as node arrays,
        no CIM layer plan) schedule, fuse with gamma-less batchnorm and
        relu6 tails, and stay bit-exact."""
        rng = np.random.default_rng(5)
        builder = engine.GraphBuilder("float64")
        conv = builder.add_op(
            "conv2d", [0], name="conv",
            arrays={"weight": rng.normal(size=(4, 3, 3, 3)),
                    "bias": rng.normal(size=4)},
            stride=(1, 1), padding=(1, 1))
        bn = builder.add_op("batchnorm", [conv], name="bn",
                            arrays={"mean": rng.normal(size=4),
                                    "denom": np.abs(rng.normal(size=4)) + 0.5})
        act = builder.add_op("relu6", [bn], name="relu6")
        flat = builder.add_op("flatten", [act], name="flat")
        fc = builder.add_op(
            "linear", [flat], name="fc",
            arrays={"weight": rng.normal(size=(5, 4 * 6 * 6)),
                    "bias": rng.normal(size=5)})
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=fc)
        compiled = plan.compile()
        assert "conv2d+batchnorm+relu6" in [s.ops for s in compiled.steps]
        x = rng.normal(size=(2, 3, 6, 6))
        ws = {}
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      plan.execute(x))
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      plan.execute(x))

    def test_standalone_ew_ops_as_graph_output(self):
        """Each element-wise op scheduled as the *output* step takes the
        fresh-array path (no arena destination)."""
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 2, 3, 3))
        for op, arrays in [("relu6", None), ("add", None),
                           ("batchnorm", {"mean": np.zeros(2),
                                          "denom": np.ones(2)})]:
            builder = engine.GraphBuilder("float64")
            if op == "add":
                relu6 = builder.add_op("relu6", [0], name="pre")
                out = builder.add_op("add", [relu6, 0], name="add")
            else:
                out = builder.add_op(op, [0], name=op, arrays=arrays)
            plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                    output_id=out)
            compiled = plan.compile()
            np.testing.assert_array_equal(compiled.execute(x),
                                          plan.execute(x))
        assert repr(compiled.steps[0]).startswith("FusedStep(")

    def test_unknown_op_raises(self):
        builder = engine.GraphBuilder("float64")
        bad = builder.add_op("fft", [0], name="bad")
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=bad)
        with pytest.raises(engine.ModelPlanError, match="fft"):
            engine.compile_plan_graph(plan)


class TestScheduleSemantics:
    def test_nan_relu_through_fused_tail(self):
        """The fused in-place ReLU keeps the documented NaN -> 0 semantics."""
        plan = ew_graph_plan("gap")
        compiled = plan.compile()
        x = np.full((2, 2, 3, 3), np.nan)
        x[0, 0, 0, 0] = -1.0
        out = compiled.execute(x)
        np.testing.assert_array_equal(out, plan.execute(x))
        assert np.isfinite(out).all()

    def test_output_stays_valid_across_calls(self):
        """Returned arrays are never arena-backed: a later call with the same
        workspace must not mutate an earlier result."""
        plan, x = build_plan("conv")
        compiled = plan.compile()
        ws = {}
        first = compiled.execute(x, workspace=ws)
        kept = first.copy()
        compiled.execute(x + 1.0, workspace=ws)
        np.testing.assert_array_equal(first, kept)

    def test_flatten_output_copies_out_of_the_arena(self):
        plan = ew_graph_plan("flatten")
        compiled = plan.compile()
        ws = {}
        x = np.random.default_rng(0).normal(size=(2, 2, 3, 3))
        first = compiled.execute(x, workspace=ws)
        np.testing.assert_array_equal(first, plan.execute(x))
        kept = first.copy()
        compiled.execute(x * -2.0, workspace=ws)
        np.testing.assert_array_equal(first, kept)

    def test_timings_keyed_by_fused_step_name(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        timings = {}
        compiled.execute(x, timings=timings)
        assert set(timings) == {step.name for step in compiled.steps}
        assert all(t >= 0.0 for t in timings.values())


# --------------------------------------------------------------------------- #
# pooling + zero-batch edge cases through the compiled path
# --------------------------------------------------------------------------- #
class TestPoolingAndEdgeCases:
    @pytest.mark.parametrize("op", ["max_pool", "avg_pool"])
    @pytest.mark.parametrize("kernel,stride,padding",
                             [((2, 2), (2, 2), (0, 0)),
                              ((3, 3), (2, 2), (1, 1)),   # padding
                              ((3, 3), (1, 1), (0, 0))])  # stride != kernel
    def test_pool_geometries(self, op, kernel, stride, padding):
        builder = engine.GraphBuilder("float64")
        pool = builder.add_op(op, [0], name="pool", kernel=kernel,
                              stride=stride, padding=padding)
        gap = builder.add_op("global_avg_pool", [pool], name="gap")
        plan = engine.ModelPlan(nodes=builder.nodes, layer_plans=[],
                                output_id=gap)
        compiled = plan.compile()
        x = np.random.default_rng(3).normal(size=(2, 3, 7, 7))
        ws = {}
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      plan.execute(x))

    @pytest.mark.parametrize("kind", ["conv", "linear", "resnet"])
    def test_zero_batch(self, kind):
        plan, x = build_plan(kind)
        compiled = plan.compile()
        empty = np.empty((0,) + x.shape[1:], dtype=plan.np_dtype)
        out = compiled.execute(empty, workspace={})
        ref = plan.execute(empty)
        assert out.shape == ref.shape and out.dtype == ref.dtype
        np.testing.assert_array_equal(out, ref)


# --------------------------------------------------------------------------- #
# the liveness-planned arena
# --------------------------------------------------------------------------- #
class TestArena:
    def test_blocks_planned_and_recycled(self):
        """A deep model reuses a handful of blocks across the whole schedule
        instead of one buffer per node."""
        plan, x = build_plan("resnet")
        compiled = plan.compile()
        ws = {}
        compiled.execute(x, workspace=ws)
        nbytes, nblocks = compiled.workspace_footprint(ws)
        assert nblocks > 0
        # far fewer physical blocks than scheduled values
        assert nblocks < compiled.n_steps
        assert nbytes > 0

    def test_arena_smaller_than_interpreter_workspace(self):
        """The acceptance criterion: liveness-shared blocks beat the
        interpreter's one-buffer-per-node workspace dict."""
        plan, x = build_plan("resnet")
        compiled = plan.compile()
        ws_interp, ws_comp = {}, {}
        plan.execute(x, workspace=ws_interp)
        compiled.execute(x, workspace=ws_comp)
        interp_bytes, _ = plan.workspace_footprint(ws_interp)
        comp_bytes, _ = compiled.workspace_footprint(ws_comp)
        assert 0 < comp_bytes < interp_bytes

    def test_in_place_reuse_into_dying_inputs(self):
        plan, x = build_plan("resnet")
        compiled = plan.compile()
        compiled.execute(x)
        sp = compiled._shape_plans[x.shape]
        assert sp.inplace_reuses > 0   # residual add+relu steps write in place

    def test_arena_lru_eviction_caps_resident_shapes(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        ws = {}
        for n in range(1, _MAX_ARENAS + 3):
            compiled.execute(np.zeros((n,) + x.shape[1:]), workspace=ws)
        assert len(ws[_ARENA_KEY]) == _MAX_ARENAS

    def test_no_workspace_allocates_transiently(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        np.testing.assert_array_equal(compiled.execute(x), plan.execute(x))
        assert compiled.workspace_footprint(None) == (0, 0)
        assert compiled.workspace_footprint({}) == (0, 0)

    def test_channel_mismatch_raises_on_first_execute(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        bad = np.zeros((2, x.shape[1] + 1) + x.shape[2:])
        with pytest.raises(ValueError, match="channels"):
            compiled.execute(bad)

    def test_linear_feature_mismatch_raises(self):
        plan, x = build_plan("linear")
        compiled = plan.compile()
        with pytest.raises(ValueError, match=str(x.shape[1])):
            compiled.execute(np.zeros((2, x.shape[1] + 1)))

    def test_single_fused_step_needs_no_arena(self):
        """bn+relu fusing into the output step leaves nothing to plan: the
        arena is empty and the workspace stays untouched."""
        plan = ew_graph_plan("relu")
        compiled = plan.compile()
        ws = {}
        x = np.random.default_rng(1).normal(size=(2, 2, 3, 3))
        np.testing.assert_array_equal(compiled.execute(x, workspace=ws),
                                      plan.execute(x))
        assert compiled.workspace_footprint(ws) == (0, 0)
        # a workspace holding only interpreter buffers reports no arena
        assert compiled.workspace_footprint({"other": object()}) == (0, 0)


# --------------------------------------------------------------------------- #
# integration: summary, runner, server, plan cache
# --------------------------------------------------------------------------- #
class TestIntegration:
    def test_summary_reports_schedule_and_arena(self):
        plan, x = build_plan("resnet")
        compiled = plan.compile()
        pre = compiled.summary()
        assert "arena: planned per batch shape on first execute" in pre
        compiled.execute(x)
        post = compiled.summary()
        assert f"{compiled.n_steps} steps" in post
        assert f"{compiled.n_fused} fused" in post
        assert "cim+batchnorm+relu" in post
        assert f"arena{list(x.shape)}:" in post
        assert "in-place reuses" in post

    def test_model_plan_summary_appends_compiled_schedule(self):
        plan, _ = build_plan("conv")
        base = plan.summary()
        assert "CompiledPlan" not in base
        plan.compile()
        assert "CompiledPlan" in plan.summary()
        assert plan.summary().startswith(base)

    def test_runner_executes_compiled_plan_with_arena_stats(self):
        plan, x = build_plan("resnet")
        compiled = plan.compile()
        batch = np.concatenate([x] * 3)
        runner_i = engine.InferenceRunner(plan, batch_size=2)
        runner_c = engine.InferenceRunner(compiled, batch_size=2)
        np.testing.assert_array_equal(runner_c.predict(batch),
                                      runner_i.predict(batch))
        stats_i, stats_c = runner_i.stats, runner_c.stats
        assert 0 < stats_c.arena_bytes < stats_i.arena_bytes
        assert 0 < stats_c.arena_blocks < stats_i.arena_blocks
        assert stats_c.to_dict()["arena_bytes"] == stats_c.arena_bytes

    def test_server_serves_compiled_plan(self):
        plan, x = build_plan("conv")
        compiled = plan.compile()
        expected = plan.execute(x)
        with engine.PlanServer(compiled, n_shards=2, max_batch=2) as server:
            np.testing.assert_array_equal(server.predict(x), expected)

    def test_plan_cache_keys_on_compile_flag(self, tmp_path):
        plan, _ = build_plan("conv")
        path = tmp_path / "model.npz"
        engine.save_model_plan(plan, path)
        engine.clear_plan_cache()
        interp = engine.load_plan_cached(str(path))
        compiled = engine.load_plan_cached(str(path), compile=True)
        assert isinstance(interp, engine.ModelPlan)
        assert isinstance(compiled, engine.CompiledPlan)
        assert engine.load_plan_cached(str(path)) is interp
        assert engine.load_plan_cached(str(path), compile=True) is compiled
        engine.clear_plan_cache()

    def test_compile_is_cached_on_the_plan(self):
        plan, _ = build_plan("linear")
        assert plan.compiled is None
        compiled = plan.compile()
        assert plan.compile() is compiled and plan.compiled is compiled

    def test_delegated_surface(self):
        plan, _ = build_plan("conv")
        compiled = plan.compile()
        assert compiled.dtype == plan.dtype
        assert compiled.np_dtype == plan.np_dtype
        assert compiled.name == plan.name
        assert compiled.output_id == plan.output_id
        assert compiled.layer_plans is plan.layer_plans
        assert compiled.int_drift_bound() == plan.int_drift_bound()
        with pytest.raises(ValueError):
            compiled.set_mode("bogus")

    def test_call_aliases_execute(self):
        plan, x = build_plan("linear")
        compiled = plan.compile()
        np.testing.assert_array_equal(compiled(x), plan.execute(x))
