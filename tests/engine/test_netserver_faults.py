"""Fault injection against the network serving front end.

Every test here injects one failure — a hostile body, a vanishing client, a
poisoned batch, a killed shard process — and then proves the server
**survived** it by completing an ordinary request on the same instance.
That follow-up request is the point: the failure surface of a socket front
end rots silently unless each path is pinned to "reject correctly, keep
serving".

The wire-level decode classification (400 vs 413 vs 422) is additionally
unit-tested without a socket, so a misrouted status points at exactly one
layer.
"""

import json
import time

import numpy as np
import pytest

from netutil import predict, raw_socket, request

from repro import engine
from repro.engine import wire


class ToyPlan:
    """``2x + 1`` over arbitrary trailing shape — fast structural target."""

    np_dtype = np.dtype(np.float64)

    def execute(self, x, timings=None, workspace=None):
        x = np.asarray(x)
        if x.ndim < 2:
            raise ValueError(f"toy plan needs a batch axis, got {x.shape}")
        return x * 2.0 + 1.0


class PoisonPlan(ToyPlan):
    """Raises on any sample containing the magic value 666.0."""

    def execute(self, x, timings=None, workspace=None):
        if np.any(np.asarray(x) == 666.0):
            raise RuntimeError("poisoned batch")
        return super().execute(x, timings=timings, workspace=workspace)


class FixedShapePlan(ToyPlan):
    """Accepts only ``(N, 3)`` samples — exercises the 422 probe path."""

    def execute(self, x, timings=None, workspace=None):
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != 3:
            raise ValueError(f"expected (N, 3) input, got {x.shape}")
        return x * 2.0 + 1.0


@pytest.fixture()
def net():
    """A running front end with a toy model mounted (fresh per test)."""
    server = engine.NetServer()
    server.add_model("toy", ToyPlan(), n_shards=1, max_batch=4,
                     max_wait_ms=1.0, queue_size=32)
    server.start()
    yield server
    server.close()


def assert_serving(net, model="toy", sample=(1.0, 2.0)):
    """The survival probe: a normal request on ``net`` must succeed now."""
    status, _headers, body = predict(net, model, [list(sample)])
    assert status == 200, body
    assert body["outputs"] == [[2.0 * value + 1.0 for value in sample]]


# --------------------------------------------------------------------------- #
# wire-level classification (no socket)
# --------------------------------------------------------------------------- #
def test_wire_rejects_broken_json_as_400():
    for body in (b"", b"not json", b"[1, 2", b"\xff\xfe", b"123",
                 b'{"no_inputs": 1}', b'{"inputs": "strings"}',
                 b'{"inputs": [[1], [2, 3]]}'):   # ragged
        with pytest.raises(wire.BadRequest):
            wire.decode_predict_request(body, np.float64)


def test_wire_rejects_unrunnable_shapes_as_422():
    with pytest.raises(wire.UnprocessableInput):
        wire.decode_predict_request(b'{"inputs": [1.0, 2.0]}', np.float64)
    with pytest.raises(wire.UnprocessableInput):
        wire.decode_predict_request(b'{"inputs": []}', np.float64)


def test_wire_rejects_oversized_batches_as_413():
    body = json.dumps({"inputs": [[1.0]] * 9}).encode()
    with pytest.raises(wire.PayloadTooLarge):
        wire.decode_predict_request(body, np.float64, max_samples=8)
    batch = wire.decode_predict_request(body, np.float64, max_samples=9)
    assert batch.shape == (9, 1)


def test_wire_error_body_shape():
    payload = json.loads(wire.encode_error(503, "saturated", "queue full"))
    assert payload == {"error": {"status": 503, "reason": "saturated",
                                 "detail": "queue full"}}


# --------------------------------------------------------------------------- #
# hostile bodies over the socket
# --------------------------------------------------------------------------- #
def test_malformed_json_gets_400_and_server_survives(net):
    status, _headers, body = request(
        net, "POST", "/v1/models/toy/predict", raw_body=b"{broken")
    assert status == 400
    assert "JSON" in body["error"]["detail"]
    assert_serving(net)


def test_oversized_body_gets_413_without_reading_it(net):
    net.max_body_bytes = 1024
    status, headers, body = request(
        net, "POST", "/v1/models/toy/predict",
        raw_body=b"x" * 4096)
    assert status == 413
    assert "1024" in body["error"]["detail"]
    assert headers.get("Connection", "").lower() == "close"
    assert_serving(net)


def test_oversized_batch_gets_413(net):
    endpoint = net.endpoint("toy")
    assert endpoint.max_request_samples == 32      # clamped to queue_size
    status, _headers, body = predict(net, "toy", [[1.0, 2.0]] * 33)
    assert status == 413
    assert "33 samples" in body["error"]["detail"]
    assert_serving(net)


def test_missing_content_length_gets_411(net):
    sock = raw_socket(net)
    try:
        sock.sendall(b"POST /v1/models/toy/predict HTTP/1.1\r\n"
                     b"Host: test\r\n\r\n")
        response = sock.recv(4096)
        assert b"411" in response.split(b"\r\n", 1)[0]
    finally:
        sock.close()
    assert_serving(net)


def test_wrong_shape_gets_422_with_detail():
    with engine.NetServer() as net:
        net.add_model("fixed", FixedShapePlan(), n_shards=1, max_batch=4,
                      queue_size=16)
        status, _headers, body = predict(net, "fixed", [[1.0, 2.0]])   # (N,2)
        assert status == 422
        detail = body["error"]["detail"]
        assert "fixed" in detail and "(2,)" in detail and "(N, 3)" in detail
        # correct shape works on the same instance, and the probe is cached
        assert_serving(net, model="fixed", sample=(1.0, 2.0, 3.0))
        assert (3,) in net.endpoint("fixed")._known_shapes
        # counters: the 422 was never offered to admission
        counters = net.endpoint("fixed").counters.to_dict()
        assert counters["bad_requests"] == 1
        assert counters["offered"] == counters["accepted"] == 1


def test_unknown_model_and_route_get_404(net):
    status, _headers, body = predict(net, "nope", [[1.0]])
    assert status == 404
    assert "toy" in body["error"]["detail"]        # lists what IS mounted
    assert request(net, "GET", "/nope")[0] == 404
    assert request(net, "POST", "/v1/models/toy/explode")[0] == 404
    assert_serving(net)


# --------------------------------------------------------------------------- #
# vanishing clients
# --------------------------------------------------------------------------- #
def test_client_disconnect_mid_request_counted_and_survived(net):
    # promise 4096 body bytes, send 10, hang up
    sock = raw_socket(net)
    sock.sendall(b"POST /v1/models/toy/predict HTTP/1.1\r\n"
                 b"Host: test\r\nContent-Length: 4096\r\n\r\n"
                 b'{"inputs":')
    sock.close()
    deadline = time.monotonic() + 5.0
    while net.client_disconnects == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert net.client_disconnects >= 1
    assert_serving(net)


def test_client_disconnect_before_reading_response_survived(net):
    body = json.dumps({"inputs": [[1.0, 2.0]] * 8}).encode()
    head = (f"POST /v1/models/toy/predict HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode()
    for _ in range(3):
        sock = raw_socket(net)
        sock.sendall(head + body)
        sock.close()           # never read the response
    time.sleep(0.2)            # let handler threads hit the dead sockets
    assert_serving(net)


# --------------------------------------------------------------------------- #
# shard faults
# --------------------------------------------------------------------------- #
def test_shard_exception_fails_exactly_the_affected_requests():
    with engine.NetServer() as net:
        # max_batch=1: each sample is its own shard batch, so poison cannot
        # splash onto neighbors even under concurrent load
        net.add_model("poison", PoisonPlan(), n_shards=2, max_batch=1,
                      max_wait_ms=0.0, queue_size=64)
        results = {}
        import threading

        def client(key, value):
            results[key] = predict(net, "poison", [[value, value]])

        threads = [threading.Thread(target=client, args=(i, 666.0 if i % 3 == 0
                                                         else float(i)))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for i, (status, _headers, body) in results.items():
            if i % 3 == 0:
                assert status == 500
                assert "poisoned batch" in body["error"]["detail"]
            else:
                assert status == 200
                assert body["outputs"] == [[2.0 * i + 1.0] * 2]
        counters = net.endpoint("poison").counters.to_dict()
        assert counters["accepted"] == 12
        assert counters["failed"] == 4 and counters["completed"] == 8
        assert_serving(net, model="poison")


def test_process_shard_kill_one_of_two_keeps_serving():
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=2, backend="process",
                      max_batch=2, max_wait_ms=0.5, queue_size=32)
        assert_serving(net)
        shard = net.endpoint("toy").server._shards[0]
        shard._proc.kill()
        shard._proc.join()
        # some in-flight requests may land on the corpse (500); the pool
        # must retire it and keep answering from the survivor
        statuses = [predict(net, "toy", [[float(i), 0.0]])[0]
                    for i in range(8)]
        assert set(statuses) <= {200, 500}
        assert 200 in statuses
        assert_serving(net)
        assert net.endpoint("toy").server.n_shards >= 1


def test_process_shard_total_death_then_restart_recovers():
    with engine.NetServer() as net:
        net.add_model("toy", ToyPlan(), n_shards=1, backend="process",
                      max_batch=2, max_wait_ms=0.5, queue_size=16)
        assert_serving(net)
        shard = net.endpoint("toy").server._shards[0]
        shard._proc.kill()
        shard._proc.join()
        # last shard died: requests fail as 500 (ShardDied in-flight) or
        # 503 (pool closed itself afterwards) — but the front end stays up
        statuses = {predict(net, "toy", [[1.0, 1.0]])[0] for _ in range(4)}
        assert statuses <= {500, 503} and statuses
        status, _headers, body = request(net, "POST",
                                         "/v1/models/toy/restart")
        assert status == 200 and body["restarted"] is True
        assert_serving(net)
        counters = net.endpoint("toy").counters.to_dict()
        assert counters["restarts"] == 1
        # metrics still render after the whole episode
        status, _headers, metrics = request(net, "GET", "/metrics")
        assert status == 200
        assert metrics["models"]["toy"]["serving"]["backend"] == "process"


def test_close_drains_then_refuses():
    net = engine.NetServer()
    net.add_model("toy", ToyPlan(), n_shards=1, max_batch=4, queue_size=16)
    net.start()
    assert_serving(net)
    net.close()
    with pytest.raises(OSError):
        predict(net, "toy", [[1.0, 1.0]], timeout=2.0)
    net.close()   # idempotent
