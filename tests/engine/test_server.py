"""Concurrent plan server: parity with the single-runner path, caches, stats.

Two kinds of plans are used here:

* a *toy* plan (pure arithmetic, records batch sizes) for fast structural
  properties — ordering, backpressure, error propagation;
* a real TinyCNN :class:`~repro.engine.model_plan.ModelPlan` for the
  numerical contract: server outputs must be **bit-identical** to the
  single-:class:`~repro.engine.runner.InferenceRunner` outputs, for every
  random schedule the property tests draw.
"""

import threading
import time

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad


class ToyPlan:
    """Minimal executor: ``2x + 1`` with recorded batch sizes and a delay knob."""

    np_dtype = np.dtype(np.float64)

    def __init__(self, delay: float = 0.0):
        self.batch_sizes = []
        self.delay = delay

    def execute(self, x, timings=None, workspace=None):
        self.batch_sizes.append(int(np.asarray(x).shape[0]))
        if self.delay:
            time.sleep(self.delay)
        return np.asarray(x) * 2.0 + 1.0


class FailingPlan(ToyPlan):
    def execute(self, x, timings=None, workspace=None):
        raise RuntimeError("boom")


@pytest.fixture(scope="module")
def model_plan_and_data():
    rng = np.random.default_rng(5)
    model = TinyCNN(num_classes=4, width=6,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=3),
                    seed=2)
    x = np.abs(rng.normal(size=(24, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    return plan, x


class TestOrderingAndParity:
    def test_futures_resolve_in_request_order(self):
        """Per-request ordering survives multi-shard execution with jittered
        completion times: future i always carries the row for input i."""
        plan = ToyPlan(delay=0.002)
        samples = [np.array([float(i), -float(i)]) for i in range(40)]
        with engine.PlanServer(plan, n_shards=3, max_batch=4,
                               max_wait_ms=1.0) as server:
            futures = server.submit_many(samples)
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(future.result(timeout=10.0),
                                              samples[i] * 2.0 + 1.0)
        assert all(size <= 4 for size in plan.batch_sizes)
        assert sum(plan.batch_sizes) == len(samples)     # nothing dropped

    @pytest.mark.parametrize("seed", range(3))
    def test_random_schedules_match_single_runner(self, model_plan_and_data,
                                                  seed):
        """Property: for random shard counts, batching knobs and submission
        patterns, server outputs are bit-identical to a single runner."""
        plan, x = model_plan_and_data
        rng = np.random.default_rng(200 + seed)
        reference = engine.InferenceRunner(
            plan, batch_size=int(rng.integers(1, 9))).predict(x)
        server = engine.PlanServer(
            plan,
            n_shards=int(rng.integers(1, 4)),
            max_batch=int(rng.integers(1, 9)),
            max_wait_ms=float(rng.choice([0.0, 0.5, 2.0])),
            result_cache_entries=int(rng.choice([0, 64])))
        try:
            futures = []
            start = 0
            while start < x.shape[0]:                   # random-size bursts
                stop = start + int(rng.integers(1, 7))
                futures.extend(server.submit_many(x[start:stop]))
                start = stop
                if rng.random() < 0.5:
                    time.sleep(float(rng.random()) * 2e-3)
            out = np.stack([future.result(timeout=10.0) for future in futures])
        finally:
            server.close()
        np.testing.assert_array_equal(out, reference)

    def test_process_backend_matches_thread_backend(self, model_plan_and_data):
        plan, x = model_plan_and_data
        reference = plan.execute(x[:8])
        with engine.PlanServer(plan, n_shards=2, backend="process",
                               max_batch=4) as server:
            np.testing.assert_array_equal(server.predict(x[:8]), reference)
            report = server.stats_report()
        assert report["backend"] == "process"
        assert report["total"]["samples"] == 8

    def test_predict_empty_batch(self, model_plan_and_data):
        plan, x = model_plan_and_data
        with engine.PlanServer(plan, n_shards=1) as server:
            out = server.predict(x[:0])
        assert out.shape == (0, 4)
        assert out.dtype == plan.np_dtype


class TestResultCache:
    def test_repeated_requests_hit_cache(self):
        plan = ToyPlan()
        with engine.PlanServer(plan, n_shards=1, max_batch=4, max_wait_ms=0.0,
                               result_cache_entries=32) as server:
            sample = np.array([3.0, 4.0])
            first = server.submit(sample).result(timeout=10.0)
            executed = sum(plan.batch_sizes)
            second = server.submit(sample).result(timeout=10.0)
            assert sum(plan.batch_sizes) == executed     # no re-execution
            np.testing.assert_array_equal(first, second)
            assert server.result_cache.hits == 1
            assert not second.flags.writeable            # cached rows read-only

    def test_cache_distinguishes_contents_and_dtype_shape(self):
        plan = ToyPlan()
        with engine.PlanServer(plan, n_shards=1, max_wait_ms=0.0,
                               result_cache_entries=32) as server:
            a = server.submit(np.array([1.0, 2.0])).result(timeout=10.0)
            b = server.submit(np.array([2.0, 1.0])).result(timeout=10.0)
            assert server.result_cache.hits == 0
            np.testing.assert_array_equal(a, np.array([3.0, 5.0]))
            np.testing.assert_array_equal(b, np.array([5.0, 3.0]))

    def test_clear_resets_entries_and_counters(self):
        cache = engine.LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.to_dict() == {"entries": 0, "max_entries": 4,
                                   "hits": 0, "misses": 0}

    def test_lru_eviction_bounds_entries(self):
        cache = engine.LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None       # evicted
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2
        with pytest.raises(ValueError):
            engine.LRUCache(max_entries=0)


class TestPlanCache:
    def test_hot_reload_shares_and_rewrite_invalidates(self, model_plan_and_data,
                                                       tmp_path):
        plan, x = model_plan_and_data
        path = tmp_path / "plan.npz"
        engine.save_model_plan(plan, path)
        engine.clear_plan_cache()
        first = engine.load_plan_cached(path)
        assert engine.load_plan_cached(path) is first    # hot reload: cached
        time.sleep(0.01)                                 # ensure mtime moves
        engine.save_model_plan(plan, path)
        reloaded = engine.load_plan_cached(path)
        assert reloaded is not first                     # rewrite: fresh parse
        np.testing.assert_array_equal(reloaded.execute(x[:2]),
                                      first.execute(x[:2]))

    def test_server_accepts_artifact_path(self, model_plan_and_data, tmp_path):
        plan, x = model_plan_and_data
        path = tmp_path / "plan.npz"
        engine.save_model_plan(plan, path)
        with engine.PlanServer(path, n_shards=1) as server:
            np.testing.assert_array_equal(server.predict(x[:3]),
                                          plan.execute(x[:3]))


class TestLifecycleAndFailure:
    def test_close_drains_queued_requests(self):
        plan = ToyPlan(delay=0.005)
        server = engine.PlanServer(plan, n_shards=1, max_batch=2,
                                   max_wait_ms=50.0)
        futures = server.submit_many([np.array([float(i)]) for i in range(9)])
        server.close()
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(future.result(timeout=10.0),
                                          np.array([2.0 * i + 1.0]))

    def test_cancelled_future_does_not_poison_its_batch(self):
        """Regression: cancelling one queued request must not corrupt the
        results of the other requests batched with it."""
        plan = ToyPlan(delay=0.2)
        with engine.PlanServer(plan, n_shards=1, max_batch=4,
                               max_wait_ms=0.0) as server:
            blocker = server.submit(np.array([99.0]))
            while server.batcher.pending:               # until the shard is
                time.sleep(0.001)                       # busy with `blocker`
            futures = [server.submit(np.array([float(i)])) for i in range(3)]
            assert futures[1].cancel()                  # still queued: cancels
            blocker.result(timeout=10.0)
            for i in (0, 2):
                np.testing.assert_array_equal(futures[i].result(timeout=10.0),
                                              np.array([2.0 * i + 1.0]))
            assert futures[1].cancelled()

    def test_close_timeout_raises_and_second_close_finishes(self):
        """A bounded close that expires mid-drain reports it loudly, keeps
        the shards alive, and a follow-up close completes the drain."""
        plan = ToyPlan(delay=0.05)
        server = engine.PlanServer(plan, n_shards=1, max_batch=1,
                                   max_wait_ms=0.0)
        futures = server.submit_many([np.array([float(i)]) for i in range(6)])
        with pytest.raises(TimeoutError, match="still draining"):
            server.close(timeout=0.01)
        server.close()                                  # finish the drain
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(future.result(timeout=10.0),
                                          np.array([2.0 * i + 1.0]))

    def test_predict_empty_without_sample_axes_raises(self):
        with engine.PlanServer(ToyPlan(), n_shards=1) as server:
            with pytest.raises(ValueError, match="sample axes"):
                server.predict(np.empty((0,)))

    def test_submit_after_close_raises(self):
        server = engine.PlanServer(ToyPlan(), n_shards=1)
        server.close()
        with pytest.raises(engine.ServerClosed):
            server.submit(np.array([1.0]))
        server.close()                      # idempotent

    def test_backpressure_timeout_raises(self):
        plan = ToyPlan(delay=0.2)
        with engine.PlanServer(plan, n_shards=1, max_batch=1, max_wait_ms=0.0,
                               queue_size=1) as server:
            futures = [server.submit(np.array([1.0]))]
            with pytest.raises(TimeoutError):
                for i in range(20):         # the queue must jam well before 20
                    futures.append(server.submit(np.array([float(i)]),
                                                 timeout=0.01))
            for future in futures:          # jammed, but nothing was dropped
                future.result(timeout=10.0)

    def test_execution_error_propagates_to_futures(self):
        with engine.PlanServer(FailingPlan(), n_shards=1,
                               max_wait_ms=0.0) as server:
            future = server.submit(np.array([1.0]))
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10.0)

    def test_dead_process_shard_is_retired_survivor_keeps_serving(self):
        """Regression: a killed shard process must not keep claiming batches
        and failing them forever — it retires, the live shard serves on."""
        with engine.PlanServer(ToyPlan(), n_shards=2, backend="process",
                               max_batch=1, max_wait_ms=0.0) as server:
            server._shards[0]._proc.kill()
            server._shards[0]._proc.join()
            failures = 0
            for i in range(6):              # sequential: retire happens early
                try:
                    out = server.submit(np.array([float(i)])).result(timeout=10.0)
                    np.testing.assert_array_equal(out,
                                                  np.array([2.0 * i + 1.0]))
                except engine.ShardDied:
                    failures += 1
            assert failures <= 1            # only the batch caught mid-death
            out = server.submit(np.array([7.0])).result(timeout=10.0)
            np.testing.assert_array_equal(out, np.array([15.0]))

    def test_last_dead_shard_fails_queue_instead_of_hanging(self):
        server = engine.PlanServer(ToyPlan(), n_shards=1, backend="process",
                                   max_batch=1, max_wait_ms=0.0)
        try:
            server._shards[0]._proc.kill()
            server._shards[0]._proc.join()
            futures = [server.submit(np.array([float(i)])) for i in range(4)]
        except engine.ServerClosed:
            futures = []                    # self-closed before all submits
        for future in futures:
            with pytest.raises(engine.ShardDied):
                future.result(timeout=10.0)
        with pytest.raises(engine.ServerClosed):
            for _ in range(50):             # self-close may race the submit
                server.submit(np.array([0.0]))
                time.sleep(0.01)
        server.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            engine.PlanServer(ToyPlan(), n_shards=0)
        with pytest.raises(ValueError):
            engine.PlanServer(ToyPlan(), backend="coroutine")


class TestStatsReport:
    def test_rollup_sums_shards_and_scheduler(self, model_plan_and_data):
        plan, x = model_plan_and_data
        with engine.PlanServer(plan, n_shards=2, max_batch=4,
                               result_cache_entries=8) as server:
            server.predict(x[:10])
            report = server.stats_report()
        assert report["n_shards"] == 2 and report["backend"] == "thread"
        assert report["total"]["samples"] == 10
        assert sum(shard["samples"] for shard in report["shards"]) == 10
        assert report["scheduler"]["requests"] == 10
        assert report["scheduler"]["batches"] >= 3
        assert report["cache"]["misses"] == 10
        per_layer = report["total"]["per_layer"]
        assert per_layer and any("fc" in row["name"] for row in per_layer)

    def test_runner_stats_merge(self):
        a = engine.RunnerStats(samples=4, batches=2, seconds=1.0,
                               layer_seconds={"conv": 0.5},
                               layer_calls={"conv": 2})
        b = engine.RunnerStats(samples=6, batches=3, seconds=2.0,
                               layer_seconds={"conv": 0.25, "fc": 0.75},
                               layer_calls={"conv": 3, "fc": 3})
        a.merge(b)
        assert a.samples == 10 and a.batches == 5 and a.seconds == 3.0
        assert a.layer_seconds == {"conv": 0.75, "fc": 0.75}
        assert a.layer_calls == {"conv": 5, "fc": 3}
