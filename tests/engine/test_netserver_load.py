"""Load and SLO contracts of the network front end, over a live socket.

Three contracts:

* **end-to-end parity** — outputs served over HTTP are bit-identical
  (drift exactly 0.0) to the in-process :class:`InferenceRunner` on the
  same artifact, in every route combination ``mode in {float, int}`` x
  ``{interpreted, compiled}``, including under concurrent clients (float64
  survives the JSON round-trip exactly — Python emits the shortest string
  that reparses to the same double);
* **admission control** — a saturated model answers 503 + ``Retry-After``
  *fast* while the requests it accepted still complete correctly; the
  accept loop never blocks behind a full queue;
* **counter conservation** — ``accepted + rejected == offered`` on
  ``/metrics``, and the latency histograms count exactly the completed
  requests, split into queue-wait vs compute.
"""

import threading
import time

import numpy as np
import pytest

from netutil import predict, request

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models import TinyCNN
from repro.nn import Tensor
from repro.nn.tensor import no_grad


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A calibrated TinyCNN model-plan artifact on disk + its input pool."""
    rng = np.random.default_rng(5)
    model = TinyCNN(num_classes=4, width=6,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3),
                    cim_config=CIMConfig(array_rows=32, array_cols=32,
                                         cell_bits=1, adc_bits=3),
                    seed=2)
    x = np.abs(rng.normal(size=(16, 3, 8, 8)))
    with no_grad():
        model(Tensor(x))
    model.eval()
    plan = engine.compile_model_plan(model, calibrate=x)
    path = tmp_path_factory.mktemp("netserver") / "tiny_plan.npz"
    engine.save_model_plan(plan, path)
    return str(path), x


ROUTES = [("float", False), ("float", True), ("int", False), ("int", True)]


@pytest.mark.parametrize("mode,compiled", ROUTES,
                         ids=[f"{m}-{'comp' if c else 'interp'}"
                              for m, c in ROUTES])
def test_socket_outputs_bit_identical_to_runner(artifact, mode, compiled):
    path, x = artifact
    reference = engine.InferenceRunner(
        engine.load_plan(path, mode=mode, compile=compiled), batch_size=8)
    expected = reference.predict(x)
    with engine.NetServer() as net:
        net.add_model("tiny", path, mode=mode, compile=compiled,
                      n_shards=2, max_batch=4, max_wait_ms=1.0,
                      queue_size=64)
        status, _headers, body = predict(net, "tiny", x.tolist(), timeout=60.0)
        assert status == 200
        served = np.asarray(body["outputs"], dtype=np.float64)
    drift = float(np.abs(served - expected).max())
    assert drift == 0.0
    assert body["batch"] == x.shape[0]


def test_concurrent_clients_bit_identical(artifact):
    path, x = artifact
    reference = engine.InferenceRunner(engine.load_plan(path), batch_size=8)
    expected = reference.predict(x)
    n_clients, per_client = 6, 8
    rng = np.random.default_rng(9)
    schedule = rng.integers(0, x.shape[0], size=(n_clients, per_client))
    with engine.NetServer() as net:
        net.add_model("tiny", path, n_shards=2, max_batch=8,
                      max_wait_ms=2.0, queue_size=128)
        results = {}

        def client(cid):
            rows = []
            for index in schedule[cid]:
                status, _headers, body = predict(
                    net, "tiny", [x[index].tolist()], timeout=60.0)
                rows.append((status, index, body))
            results[cid] = rows

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = request(net, "GET", "/metrics")[2]["models"]["tiny"]

    total = 0
    for rows in results.values():
        for status, index, body in rows:
            assert status == 200
            row = np.asarray(body["outputs"][0], dtype=np.float64)
            assert np.array_equal(row, expected[index])
            total += 1
    assert total == n_clients * per_client
    # conservation over the whole run
    counters = metrics["requests"]
    assert counters["offered"] == total
    assert counters["accepted"] + counters["rejected"] == counters["offered"]
    assert counters["rejected"] == 0                 # queue was ample
    assert counters["completed"] == counters["accepted"]
    assert counters["failed"] == 0
    # the histograms counted exactly the completed requests, split in two
    for kind in ("total", "queue", "compute"):
        assert metrics["latency"][kind]["count"] == total
    assert metrics["latency"]["total"]["p50_ms"] > 0.0
    assert metrics["latency"]["compute"]["p99_ms"] > 0.0


class SlowPlan:
    """A deliberately slow toy plan to force saturation deterministically."""

    np_dtype = np.dtype(np.float64)

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def execute(self, x, timings=None, workspace=None):
        x = np.asarray(x)
        if x.shape[0]:                   # the zero-row probe stays free
            time.sleep(self.delay_s)
        return x * 2.0 + 1.0


def test_saturation_emits_503_fast_while_accepted_complete():
    with engine.NetServer() as net:
        net.add_model("slow", SlowPlan(0.05), n_shards=1, max_batch=2,
                      max_wait_ms=0.0, queue_size=4)
        n_offered = 24
        outcomes = {}

        def client(cid):
            start = time.monotonic()
            status, headers, body = predict(net, "slow",
                                            [[float(cid), 1.0]], timeout=60.0)
            outcomes[cid] = (status, headers, body, time.monotonic() - start)

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(n_offered)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = request(net, "GET", "/metrics")[2]["models"]["slow"]

    statuses = [status for status, _h, _b, _t in outcomes.values()]
    n_ok = statuses.count(200)
    n_rejected = statuses.count(503)
    assert n_ok + n_rejected == n_offered      # nothing fell through
    assert n_rejected > 0                      # admission control did fire
    assert n_ok > 0                            # ... without starving everyone
    for cid, (status, headers, body, elapsed) in outcomes.items():
        if status == 503:
            # reject-fast contract: no queueing, and a Retry-After hint
            assert int(headers["Retry-After"]) >= 1
            assert "queue is full" in body["error"]["detail"]
            assert elapsed < 5.0
        else:
            assert body["outputs"] == [[2.0 * cid + 1.0, 3.0]]
    counters = metrics["requests"]
    assert counters["offered"] == n_offered
    assert counters["accepted"] + counters["rejected"] == n_offered
    assert counters["rejected"] == n_rejected
    assert counters["completed"] == counters["accepted"] == n_ok
    assert metrics["latency"]["total"]["count"] == n_ok
    # accepted requests saw bounded queueing: at most queue_size/max_batch
    # batches ahead of any admitted request, ~2 batch-times of wait + own
    # compute; generous headroom for scheduling noise
    assert metrics["latency"]["total"]["max_ms"] < 5000.0


def test_queue_and_compute_split_reported(artifact):
    path, x = artifact
    with engine.NetServer() as net:
        net.add_model("tiny", path, n_shards=1, max_batch=4,
                      max_wait_ms=1.0, queue_size=32)
        status, _headers, body = predict(net, "tiny", x[:4].tolist(),
                                         timeout=60.0)
        assert status == 200
        timing = body["timing_ms"]
        assert set(timing) == {"total", "queue", "compute"}
        assert timing["compute"] > 0.0
        assert timing["total"] >= timing["compute"]
        metrics = request(net, "GET", "/metrics")[2]["models"]["tiny"]
        assert metrics["latency"]["queue"]["count"] == 1
        assert metrics["latency"]["compute"]["p50_ms"] == \
            pytest.approx(timing["compute"], rel=0.5)


def test_result_cache_hits_counted_over_socket():
    class CountingPlan:
        np_dtype = np.dtype(np.float64)
        calls = 0

        def execute(self, x, timings=None, workspace=None):
            x = np.asarray(x)
            if x.shape[0]:
                CountingPlan.calls += 1
            return x + 1.0

    with engine.NetServer() as net:
        net.add_model("memo", CountingPlan(), n_shards=1, max_batch=4,
                      queue_size=16, result_cache_entries=32)
        first = predict(net, "memo", [[5.0, 5.0]])
        again = predict(net, "memo", [[5.0, 5.0]])
        assert first[0] == again[0] == 200
        assert first[2]["outputs"] == again[2]["outputs"] == [[6.0, 6.0]]
        counters = net.endpoint("memo").counters.to_dict()
        assert counters["cache_hits"] == 1
        assert counters["completed"] == 2
        # cached responses report zero queue/compute
        assert again[2]["timing_ms"]["compute"] == 0.0
