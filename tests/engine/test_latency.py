"""Property tests for the latency histogram and percentile helpers.

The histogram's contract is *bounded relative error*: a percentile estimate
is the geometric midpoint of the bucket holding the nearest-rank order
statistic, so it must lie within a multiplicative ``sqrt(growth)`` of the
true sample percentile.  The nearest-rank statistic itself always lies
between ``numpy.percentile(..., method="lower")`` and ``method="higher"``,
which gives the oracle band checked here on seeded random samples.  Merging
is plain counter addition, so it must be exactly associative and
commutative — checked structurally (bucket counts) and behaviorally
(percentiles).
"""

import math
import threading

import numpy as np
import pytest

from repro.engine.latency import LatencyHistogram, percentiles


def _filled(samples, **kwargs):
    histogram = LatencyHistogram(**kwargs)
    histogram.record_many(samples)
    return histogram


# --------------------------------------------------------------------------- #
# percentile estimates vs the numpy oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("distribution", ["lognormal", "uniform", "bimodal"])
def test_percentiles_within_growth_band_of_numpy(seed, distribution):
    rng = np.random.default_rng(seed)
    if distribution == "lognormal":
        samples = rng.lognormal(mean=-4.0, sigma=1.2, size=700)
    elif distribution == "uniform":
        samples = rng.uniform(1e-4, 0.5, size=700)
    else:   # bimodal: fast cache hits + slow compute, the serving shape
        samples = np.concatenate([rng.normal(2e-3, 2e-4, size=350),
                                  rng.normal(8e-2, 5e-3, size=350)])
    samples = np.abs(samples)
    histogram = _filled(samples)
    slack = math.sqrt(histogram.growth)
    for q in (1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9):
        estimate = histogram.percentile(q)
        low = float(np.percentile(samples, q, method="lower"))
        high = float(np.percentile(samples, q, method="higher"))
        assert low / slack * (1 - 1e-9) <= estimate <= high * slack * (1 + 1e-9), \
            f"q={q}: {estimate} outside [{low}, {high}] x sqrt(growth)"


@pytest.mark.parametrize("seed", range(3))
def test_nearest_rank_oracle_tight(seed):
    """Against the exact nearest-rank statistic the estimate is sqrt(growth)-tight."""
    rng = np.random.default_rng(100 + seed)
    samples = np.sort(np.abs(rng.lognormal(-5.0, 1.5, size=513)))
    histogram = _filled(samples)
    slack = math.sqrt(histogram.growth)
    for q in (5.0, 50.0, 95.0, 99.0):
        rank = max(1, math.ceil(q / 100.0 * samples.size))
        oracle = samples[rank - 1]
        estimate = histogram.percentile(q)
        assert oracle / slack * (1 - 1e-9) <= estimate \
            <= oracle * slack * (1 + 1e-9)


def test_extremes_are_exact():
    rng = np.random.default_rng(7)
    samples = np.abs(rng.normal(0.01, 0.005, size=100))
    histogram = _filled(samples)
    assert histogram.percentile(0.0) == samples.min()
    assert histogram.percentile(100.0) == samples.max()
    assert histogram.min == samples.min()
    assert histogram.max == samples.max()


def test_single_sample_every_percentile_exact():
    histogram = _filled([0.0321])
    for q in (0.0, 1.0, 50.0, 99.0, 100.0):
        assert histogram.percentile(q) == pytest.approx(0.0321, rel=0, abs=0)


def test_out_of_range_values_still_counted_and_clamped():
    histogram = LatencyHistogram(min_value=1e-6, max_value=1.0)
    histogram.record(1e-9)     # below min_value -> first bucket
    histogram.record(50.0)     # above max_value -> last bucket
    assert histogram.count == 2
    assert histogram.max == 50.0                  # exact despite bucketing
    assert histogram.percentile(100.0) == 50.0
    assert histogram.percentile(1.0) <= histogram.percentile(99.0) <= 50.0


def test_negative_record_clamps_to_zero():
    histogram = LatencyHistogram()
    histogram.record(-0.5)
    assert histogram.min == 0.0
    assert histogram.percentile(50.0) >= 0.0


def test_bad_quantile_raises():
    histogram = _filled([0.1])
    with pytest.raises(ValueError):
        histogram.percentile(-1.0)
    with pytest.raises(ValueError):
        histogram.percentile(100.5)
    with pytest.raises(ValueError):
        percentiles([0.1], qs=[101.0])


def test_bad_config_raises():
    with pytest.raises(ValueError):
        LatencyHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(min_value=1.0, max_value=0.5)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)


# --------------------------------------------------------------------------- #
# empty-window behavior
# --------------------------------------------------------------------------- #
def test_empty_window():
    histogram = LatencyHistogram()
    assert histogram.count == 0
    assert histogram.mean == 0.0
    for q in (0.0, 50.0, 99.0, 100.0):
        assert histogram.percentile(q) == 0.0
    report = histogram.to_dict()
    assert report["count"] == 0
    assert report["p50_ms"] == 0.0 and report["p99_ms"] == 0.0
    assert report["min_ms"] == 0.0 and report["max_ms"] == 0.0


def test_reset_returns_to_empty():
    histogram = _filled([0.1, 0.2, 0.3])
    histogram.reset()
    assert histogram.count == 0
    assert histogram.percentile(50.0) == 0.0
    assert histogram.min is None and histogram.max is None


# --------------------------------------------------------------------------- #
# merge algebra
# --------------------------------------------------------------------------- #
def _three_windows():
    rng = np.random.default_rng(11)
    return [np.abs(rng.lognormal(-4.5, 1.0, size=size))
            for size in (97, 211, 53)]


def test_merge_associative_and_commutative():
    window_a, window_b, window_c = _three_windows()
    a, b, c = (_filled(window) for window in (window_a, window_b, window_c))

    left = a.copy().merge(b).merge(c)                 # (a + b) + c
    right = a.copy().merge(b.copy().merge(c))         # a + (b + c)
    swapped = c.copy().merge(b).merge(a)              # order-independent

    for merged in (right, swapped):
        assert merged._counts == left._counts
        assert merged.count == left.count
        assert merged.min == left.min and merged.max == left.max
        for q in (1.0, 50.0, 95.0, 99.0, 100.0):
            assert merged.percentile(q) == left.percentile(q)
        assert merged.mean == pytest.approx(left.mean, rel=1e-12)


def test_merge_equals_recording_concatenation():
    window_a, window_b, window_c = _three_windows()
    merged = (_filled(window_a).merge(_filled(window_b))
              .merge(_filled(window_c)))
    direct = _filled(np.concatenate([window_a, window_b, window_c]))
    assert merged._counts == direct._counts
    assert merged.count == direct.count
    for q in (0.0, 50.0, 99.0, 100.0):
        assert merged.percentile(q) == direct.percentile(q)


def test_merge_empty_windows_is_identity():
    window = np.abs(np.random.default_rng(3).normal(0.01, 0.002, 40))
    histogram = _filled(window)
    before = (list(histogram._counts), histogram.count,
              histogram.min, histogram.max)
    histogram.merge(LatencyHistogram())               # right identity
    empty = LatencyHistogram()
    empty.merge(histogram)                            # left identity
    assert (list(histogram._counts), histogram.count,
            histogram.min, histogram.max) == before
    assert empty._counts == histogram._counts
    assert empty.percentile(50.0) == histogram.percentile(50.0)


def test_merge_mismatched_config_raises():
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.05).merge(LatencyHistogram(growth=1.1))
    with pytest.raises(ValueError):
        LatencyHistogram(max_value=10.0).merge(LatencyHistogram(max_value=20.0))


# --------------------------------------------------------------------------- #
# the exact helper + report plumbing
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(3))
def test_exact_percentiles_helper_matches_nearest_rank(seed):
    rng = np.random.default_rng(seed)
    values = list(rng.uniform(0.001, 1.0, size=101))
    ordered = sorted(values)
    result = percentiles(values, qs=(0.0, 50.0, 95.0, 99.0, 100.0))
    assert result[0.0] == ordered[0]
    assert result[100.0] == ordered[-1]
    for q in (50.0, 95.0, 99.0):
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        assert result[q] == ordered[rank - 1]
    assert percentiles([]) == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}


def test_to_dict_reports_milliseconds():
    histogram = _filled([0.010] * 10)     # 10 samples of exactly 10ms
    report = histogram.to_dict()
    assert report["count"] == 10
    assert report["mean_ms"] == pytest.approx(10.0)
    assert report["min_ms"] == pytest.approx(10.0)
    assert report["max_ms"] == pytest.approx(10.0)
    # single-valued window: clamping makes every percentile exact
    assert report["p50_ms"] == pytest.approx(10.0)
    assert report["p99_ms"] == pytest.approx(10.0)
    assert set(report) == {"count", "mean_ms", "min_ms", "max_ms",
                           "p50_ms", "p95_ms", "p99_ms"}


# --------------------------------------------------------------------------- #
# concurrent cross-merge: ordered() two-lock acquisition must not deadlock
# --------------------------------------------------------------------------- #
def test_concurrent_cross_merge_does_not_deadlock():
    """Two threads cross-merging peer histograms must both finish.

    Before merge() took both peer locks through ordered(), this exact
    interleaving could deadlock: one thread holds a's lock waiting on
    b's while the other holds b's waiting on a's.  With id()-ordered
    acquisition both threads always take the same histogram's lock
    first, so the race is benign and both loops terminate.
    """
    a = _filled([0.010])
    b = _filled([0.020])
    rounds = 40          # counts grow Fibonacci-fast; stay far below int64
    barrier = threading.Barrier(2)

    def cross(dst, src):
        barrier.wait()
        for _ in range(rounds):
            dst.merge(src)

    threads = [threading.Thread(target=cross, args=(a, b), daemon=True),
               threading.Thread(target=cross, args=(b, a), daemon=True)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "cross-merge deadlocked"
    # merging only ever adds counts: both histograms grew past their seed
    # sample and their bucket totals stayed internally consistent
    for histogram in (a, b):
        report = histogram.to_dict()
        assert report["count"] == histogram.count
        assert histogram.count > 1
    assert a.percentile(50.0) > 0.0 and b.percentile(50.0) > 0.0
