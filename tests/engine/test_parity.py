"""Acceptance parity: QAT forward vs frozen engine, compiled from one stage list.

The frozen plans are compiled from the same
:class:`~repro.core.pipeline.CIMPipeline` stage list that executes the QAT
forward, so agreement is structural — these tests pin the acceptance bound
(<= 1e-10 max abs diff) for both layer kinds across both partial-sum
quantization modes, plus the variation and recorder behaviours riding on it.
"""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import CIMConv2d, CIMLinear, PartialSumRecorder
from repro.nn import Tensor


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


def build_layer(kind, cfg, quantize_psum):
    scheme = QuantScheme(weight_granularity="column", psum_granularity="column",
                         quantize_psum=quantize_psum)
    if kind == "conv":
        return CIMConv2d(6, 8, 3, padding=1, bias=True, scheme=scheme,
                         cim_config=cfg, rng=np.random.default_rng(1))
    return CIMLinear(40, 10, bias=True, scheme=scheme, cim_config=cfg,
                     rng=np.random.default_rng(1))


def eval_batch(rng, kind):
    shape = (2, 6, 6, 6) if kind == "conv" else (4, 40)
    return Tensor(np.abs(rng.normal(size=shape)))


class TestQATvsFrozenParity:
    """Acceptance criterion: QAT forward and frozen engine agree <= 1e-10
    for both layer types, with partial-sum quantization on and off."""

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_parity(self, rng, cfg, kind, quantize_psum):
        layer = build_layer(kind, cfg, quantize_psum)
        layer.eval()
        x = eval_batch(rng, kind)
        qat_out = layer(x).data.copy()
        frozen = engine.freeze(layer)
        frozen_out = frozen(x).data
        assert np.abs(frozen_out - qat_out).max() <= 1e-10

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    def test_parity_survives_psum_toggle(self, rng, cfg, kind):
        """Toggling the ADC between compiles keeps both modes in parity."""
        layer = build_layer(kind, cfg, quantize_psum=True)
        layer.eval()
        x = eval_batch(rng, kind)
        with_psum = layer(x).data.copy()
        layer.set_psum_quant_enabled(False)
        without_psum = layer(x).data.copy()
        frozen = engine.freeze(layer)
        assert np.abs(frozen(x).data - without_psum).max() <= 1e-10
        frozen.set_psum_quant_enabled(True)
        assert np.abs(frozen(x).data - with_psum).max() <= 1e-10


class TestVariationParity:
    """target="weights" vs target="cells" behave consistently across the two
    layer kinds, and the frozen engine matches (same RNG state) or falls back
    (recorder attached) when a variation model rides along."""

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("target", ["cells", "weights"])
    def test_variation_perturbs_both_layer_kinds(self, rng, cfg, kind, target):
        layer = build_layer(kind, cfg, quantize_psum=True)
        layer.eval()
        x = eval_batch(rng, kind)
        clean = layer(x).data.copy()
        layer.set_variation(VariationModel(sigma=0.2, target=target, seed=0))
        assert not np.allclose(layer(x).data, clean)

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    def test_targets_coincide_for_single_cell_weights(self, rng, kind):
        """With one cell per weight (n_splits == 1) the two targets are the
        same physical perturbation, so identical RNG states must give
        identical outputs — for conv and linear alike."""
        cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=4)
        scheme_kwargs = dict(weight_bits=4, quantize_psum=False)
        outs = {}
        for target in ("cells", "weights"):
            if kind == "conv":
                layer = CIMConv2d(4, 5, 3, scheme=QuantScheme(**scheme_kwargs),
                                  cim_config=cfg, rng=np.random.default_rng(3))
                x = Tensor(np.abs(np.random.default_rng(0).normal(size=(1, 4, 5, 5))))
            else:
                layer = CIMLinear(30, 5, scheme=QuantScheme(**scheme_kwargs),
                                  cim_config=cfg, rng=np.random.default_rng(3))
                x = Tensor(np.abs(np.random.default_rng(0).normal(size=(2, 30))))
            assert layer.n_splits == 1
            layer.eval()
            layer(x)  # initialize quantizers before attaching variation
            layer.set_variation(VariationModel(sigma=0.15, target=target, seed=11))
            outs[target] = layer(x).data.copy()
        np.testing.assert_allclose(outs["cells"], outs["weights"], atol=1e-12)

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    @pytest.mark.parametrize("target", ["cells", "weights"])
    def test_frozen_matches_seed_under_variation(self, rng, cfg, kind, target):
        layer = build_layer(kind, cfg, quantize_psum=True)
        layer.eval()
        x = eval_batch(rng, kind)
        layer(x)  # initialize quantizers
        layer.set_variation(VariationModel(sigma=0.1, target=target, seed=7))
        ref = layer(x).data.copy()
        layer.set_variation(VariationModel(sigma=0.1, target=target, seed=7))
        frozen = engine.freeze(layer)
        assert np.abs(frozen(x).data - ref).max() <= 1e-10

    def test_frozen_with_variation_and_recorder_falls_back(self, rng, cfg):
        """A recorder forces the seed path even with variation attached, and
        the recorder still sees the raw (S, A, N, L, OC) partial sums."""
        layer = build_layer("conv", cfg, quantize_psum=True)
        layer.eval()
        x = eval_batch(rng, "conv")
        layer(x)
        frozen = engine.freeze(layer)
        frozen.set_variation(VariationModel(sigma=0.1, target="cells", seed=5))
        recorder = PartialSumRecorder()
        frozen.attach_recorder(recorder, "varied")
        frozen(x)
        assert "varied" in recorder.layers()
        assert len(recorder.column_values("varied")) == \
            layer.n_splits * layer.n_arrays * 8
