"""Tiny HTTP client helpers shared by the netserver test modules.

Deliberately built on ``http.client`` (not ``urllib``) so tests control the
socket precisely — needed for the disconnect-mid-request fault injections —
and on plain ``(status, headers, body_json)`` tuples so assertions stay
one-liners.
"""

import http.client
import json
import socket


def request(net, method, path, payload=None, timeout=15.0, headers=None,
            raw_body=None):
    """One HTTP exchange against a NetServer; returns (status, headers, json).

    ``payload`` (any JSON-serializable object) and ``raw_body`` (bytes sent
    verbatim) are mutually exclusive; a body of ``None`` sends no body.
    The response body is JSON-decoded when non-empty.
    """
    assert payload is None or raw_body is None
    body = raw_body if raw_body is not None else (
        None if payload is None else json.dumps(payload).encode())
    conn = http.client.HTTPConnection(net.host, net.port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        parsed = json.loads(data) if data else None
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


def predict(net, model, inputs, timeout=15.0):
    """POST a predict request; returns (status, headers, body_json)."""
    return request(net, "POST", f"/v1/models/{model}/predict",
                   payload={"inputs": inputs}, timeout=timeout)


def raw_socket(net, timeout=5.0):
    """A connected raw TCP socket to the server (for disconnect injections)."""
    sock = socket.create_connection((net.host, net.port), timeout=timeout)
    return sock
