"""Property-based tests of the dynamic batching scheduler (seeded, no deps).

The :class:`~repro.engine.scheduler.DynamicBatcher` is plain plumbing, so it
is tested the way plumbing should be: random request streams (sizes, arrival
patterns, knob settings drawn from a seeded RNG) against the invariants that
must hold for *every* draw —

* FIFO: requests leave in submission order;
* conservation: nothing is dropped, nothing duplicated;
* bounds: every formed batch has ``1 <= size <= max_batch``;
* drain: after ``close()`` the queue empties through final batches.

The server-level counterparts (shard outputs equal to the single-runner
outputs under random schedules) live in ``test_server.py``.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.engine.scheduler import (DynamicBatcher, Request, SchedulerClosed,
                                    SchedulerStats)


def _request(seq):
    return Request(seq=seq, payload=np.array([float(seq)]), future=Future())


def _drain(batcher):
    """Consume until the batcher reports drained; return the batches."""
    batches = []
    while True:
        batch = batcher.next_batch()
        if batch is None:
            return batches
        batches.append(batch)


class TestValidation:
    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait_ms=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=8, queue_size=4)

    def test_put_after_close_raises(self):
        batcher = DynamicBatcher()
        batcher.close()
        with pytest.raises(SchedulerClosed):
            batcher.put(_request(0))


class TestProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_streams_preserve_invariants(self, seed):
        """Random (max_batch, queue_size, burst pattern) draws: FIFO,
        conservation, and the batch-size bound all hold."""
        rng = np.random.default_rng(seed)
        max_batch = int(rng.integers(1, 9))
        queue_size = int(max_batch * rng.integers(1, 5))
        n_requests = int(rng.integers(1, 60))
        batcher = DynamicBatcher(max_batch=max_batch, max_wait_ms=0.0,
                                 queue_size=queue_size)

        dispatched = []
        consumer = threading.Thread(
            target=lambda: dispatched.extend(_drain(batcher)), daemon=True)
        consumer.start()

        seq = 0
        while seq < n_requests:
            burst = int(rng.integers(1, max(2, queue_size)))
            for _ in range(min(burst, n_requests - seq)):
                batcher.put(_request(seq), timeout=5.0)
                seq += 1
            if rng.random() < 0.3:
                time.sleep(float(rng.random()) * 1e-3)   # arrival jitter
        batcher.close()
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()

        sizes = [len(batch) for batch in dispatched]
        assert all(1 <= size <= max_batch for size in sizes)
        order = [request.seq for batch in dispatched for request in batch]
        assert order == list(range(n_requests))     # FIFO + conservation
        stats = batcher.stats
        assert stats.requests == n_requests
        assert stats.batched_samples == n_requests
        assert stats.batches == len(dispatched)
        assert stats.max_batch_seen == (max(sizes) if sizes else 0)
        assert stats.queue_high_water <= queue_size

    @pytest.mark.parametrize("seed", range(3))
    def test_concurrent_consumers_conserve_requests(self, seed):
        """With several consumers racing, every request is dispatched exactly
        once and each individual batch is still FIFO-contiguous."""
        rng = np.random.default_rng(100 + seed)
        max_batch = int(rng.integers(2, 6))
        n_requests = int(rng.integers(20, 80))
        batcher = DynamicBatcher(max_batch=max_batch, max_wait_ms=0.5,
                                 queue_size=max_batch * 4)
        collected = []
        lock = threading.Lock()

        def consume():
            for batch in iter(batcher.next_batch, None):
                with lock:
                    collected.append([request.seq for request in batch])

        consumers = [threading.Thread(target=consume, daemon=True)
                     for _ in range(3)]
        for consumer in consumers:
            consumer.start()
        for seq in range(n_requests):
            batcher.put(_request(seq), timeout=5.0)
        batcher.close()
        for consumer in consumers:
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()

        assert sorted(seq for batch in collected for seq in batch) == \
            list(range(n_requests))                  # exactly-once dispatch
        for batch in collected:
            assert len(batch) <= max_batch
            assert batch == list(range(batch[0], batch[0] + len(batch)))


class TestTriggers:
    def test_full_batch_leaves_without_waiting(self):
        batcher = DynamicBatcher(max_batch=4, max_wait_ms=10_000.0,
                                 queue_size=16)
        for seq in range(4):
            batcher.put(_request(seq))
        start = time.monotonic()
        batch = batcher.next_batch()
        assert len(batch) == 4
        assert time.monotonic() - start < 1.0        # size trigger, not wait
        assert batcher.stats.timeout_flushes == 0

    def test_partial_batch_flushes_on_deadline(self):
        batcher = DynamicBatcher(max_batch=64, max_wait_ms=20.0,
                                 queue_size=128)
        for seq in range(3):
            batcher.put(_request(seq))
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert [request.seq for request in batch] == [0, 1, 2]
        assert elapsed < 5.0                          # bounded by max_wait
        assert batcher.stats.timeout_flushes == 1

    def test_close_flushes_partial_batch(self):
        batcher = DynamicBatcher(max_batch=64, max_wait_ms=10_000.0,
                                 queue_size=128)
        batcher.put(_request(0))
        batcher.close()
        batch = batcher.next_batch()
        assert [request.seq for request in batch] == [0]
        assert batcher.next_batch() is None


class TestBackpressure:
    def test_put_times_out_when_full(self):
        batcher = DynamicBatcher(max_batch=2, max_wait_ms=1.0, queue_size=2)
        batcher.put(_request(0))
        batcher.put(_request(1))
        with pytest.raises(TimeoutError):
            batcher.put(_request(2), timeout=0.05)
        assert batcher.pending == 2

    def test_put_unblocks_when_consumer_drains(self):
        batcher = DynamicBatcher(max_batch=2, max_wait_ms=1.0, queue_size=2)
        batcher.put(_request(0))
        batcher.put(_request(1))
        released = threading.Event()

        def slow_consumer():
            time.sleep(0.02)
            batcher.next_batch()
            released.set()

        threading.Thread(target=slow_consumer, daemon=True).start()
        batcher.put(_request(2), timeout=5.0)         # blocks, then succeeds
        assert released.is_set()


def test_stats_to_dict_roundtrip():
    stats = SchedulerStats(requests=10, batches=4, batched_samples=10,
                           max_batch_seen=4, timeout_flushes=1,
                           queue_high_water=6)
    payload = stats.to_dict()
    assert payload["mean_batch"] == 2.5
    assert payload["requests"] == 10
    assert SchedulerStats().to_dict()["mean_batch"] == 0.0
