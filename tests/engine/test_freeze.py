"""Engine freeze/thaw: round-trips, fast-path equivalence, fallbacks."""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import CIMConv2d, CIMLinear, PartialSumRecorder, set_psum_quant_enabled
from repro.models import TinyCNN
from repro.nn import Tensor


def eval_input(rng, shape):
    """Post-ReLU-like activations without gradient tracking (inference batch)."""
    return Tensor(np.abs(rng.normal(size=shape)))


def make_conv(cfg, scheme, seed=1):
    return CIMConv2d(6, 8, 3, padding=1, bias=True, scheme=scheme, cim_config=cfg,
                     rng=np.random.default_rng(seed))


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


class TestEquivalence:
    """The frozen fast path must reproduce the seed forward bit-for-bit (well
    below the 1e-10 acceptance threshold) in every configuration."""

    @pytest.mark.parametrize("psum_granularity", ["layer", "array", "column"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_conv_matches_seed(self, rng, cfg, psum_granularity, quantize_psum):
        scheme = QuantScheme(weight_granularity="column",
                             psum_granularity=psum_granularity,
                             quantize_psum=quantize_psum)
        layer = make_conv(cfg, scheme)
        layer.eval()
        x = eval_input(rng, (2, 6, 6, 6))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    @pytest.mark.parametrize("strategy", ["kernel_preserving", "im2col"])
    def test_conv_across_tilings(self, rng, strategy):
        cfg = CIMConfig(array_rows=30, array_cols=32, cell_bits=2, tiling=strategy)
        layer = make_conv(cfg, QuantScheme())
        layer.eval()
        x = eval_input(rng, (2, 6, 5, 5))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_conv_stride_padding(self, rng, cfg, stride, padding):
        layer = CIMConv2d(4, 6, 3, stride=stride, padding=padding,
                          scheme=QuantScheme(), cim_config=cfg,
                          rng=np.random.default_rng(2))
        layer.eval()
        x = eval_input(rng, (1, 4, 7, 7))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_linear_matches_seed(self, rng, cfg, quantize_psum):
        layer = CIMLinear(40, 10, scheme=QuantScheme(quantize_psum=quantize_psum),
                          cim_config=cfg, rng=np.random.default_rng(3))
        layer.eval()
        x = eval_input(rng, (4, 40))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    def test_conv_without_input_quant(self, rng, cfg):
        layer = CIMConv2d(3, 4, 3, scheme=QuantScheme(), cim_config=cfg,
                          quantize_input=False, rng=np.random.default_rng(4))
        layer.eval()
        x = eval_input(rng, (1, 3, 5, 5))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    @pytest.mark.parametrize("target", ["cells", "weights"])
    @pytest.mark.parametrize("quantize_psum", [True, False])
    def test_variation_same_rng(self, rng, cfg, target, quantize_psum):
        """Frozen output equals seed output with variation on, given the same
        variation-model RNG state."""
        layer = make_conv(cfg, QuantScheme(quantize_psum=quantize_psum))
        layer.eval()
        x = eval_input(rng, (1, 6, 6, 6))
        layer(x)  # initialize quantizers before attaching variation
        layer.set_variation(VariationModel(sigma=0.1, target=target, seed=7))
        ref = layer(x).data.copy()
        layer.set_variation(VariationModel(sigma=0.1, target=target, seed=7))
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    def test_model_level_freeze(self, rng):
        model = TinyCNN(num_classes=4, scheme=QuantScheme(),
                        cim_config=CIMConfig(array_rows=32, array_cols=32, cell_bits=2))
        x = eval_input(rng, (2, 3, 8, 8))
        model.eval()
        ref = model(x).data.copy()
        engine.freeze(model, calibrate=x)
        assert engine.is_frozen(model)
        assert len(list(engine.frozen_layers(model))) == 3  # 2 convs + 1 linear
        np.testing.assert_allclose(model(x).data, ref, atol=1e-10)


class TestFreezeThaw:
    def test_round_trip_restores_layers_and_outputs(self, rng, cfg):
        model = TinyCNN(num_classes=4, scheme=QuantScheme(), cim_config=cfg)
        x = eval_input(rng, (2, 3, 8, 8))
        model.eval()
        ref = model(x).data.copy()
        original_types = [type(m).__name__ for m in model.modules()]
        engine.freeze(model, calibrate=x)
        engine.thaw(model)
        assert not engine.is_frozen(model)
        assert [type(m).__name__ for m in model.modules()] == original_types
        np.testing.assert_allclose(model(x).data, ref, atol=0)

    def test_thaw_restores_requires_grad(self, rng, cfg):
        layer = make_conv(cfg, QuantScheme())
        layer.eval()
        x = eval_input(rng, (1, 6, 6, 6))
        layer(x)
        frozen = engine.freeze(layer)
        assert all(not p.requires_grad for p in frozen.parameters())
        thawed = engine.thaw(frozen)
        assert thawed is layer
        assert layer.weight.requires_grad

    def test_freeze_is_idempotent(self, rng, cfg):
        model = TinyCNN(num_classes=4, scheme=QuantScheme(), cim_config=cfg)
        x = eval_input(rng, (1, 3, 8, 8))
        engine.freeze(model, calibrate=x)
        first = [m for _, m in engine.frozen_layers(model)]
        engine.freeze(model)
        second = [m for _, m in engine.frozen_layers(model)]
        assert len(first) == len(second) == 3
        assert all(a is b for a, b in zip(first, second))
        # regression: the second freeze must not clobber the recorded
        # requires_grad flags with the already-disabled state
        engine.thaw(model)
        assert any(p.requires_grad for p in model.parameters())

    def test_frozen_wrapper_delegates_config(self, rng, cfg):
        layer = make_conv(cfg, QuantScheme())
        layer.eval()
        layer(eval_input(rng, (1, 6, 6, 6)))
        frozen = engine.freeze(layer)
        assert frozen.scheme is layer.scheme
        assert frozen.mapping is layer.mapping
        assert frozen.n_arrays == layer.n_arrays
        assert frozen.n_splits == layer.n_splits
        assert frozen.weight is layer.weight
        assert "plan=compiled" in frozen.extra_repr()


class TestFallbacks:
    def test_recorder_falls_back_to_recording_path(self, rng, cfg):
        """Regression: a frozen layer with a recorder attached must still feed
        the recorder the raw (S, A, N, L, OC) partial sums."""
        layer = make_conv(cfg, QuantScheme())
        layer.eval()
        x = eval_input(rng, (1, 6, 6, 6))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        recorder = PartialSumRecorder()
        frozen.attach_recorder(recorder, "frozen0")
        out = frozen(x)
        assert "frozen0" in recorder.layers()
        columns = recorder.column_values("frozen0")
        assert len(columns) == layer.n_splits * layer.n_arrays * 8
        np.testing.assert_allclose(out.data, ref, atol=0)
        # detaching the recorder re-enables the fast path
        frozen.attach_recorder(None)
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    def test_training_mode_falls_back_to_seed_path(self, rng, cfg):
        layer = make_conv(cfg, QuantScheme())
        layer.eval()
        x = eval_input(rng, (1, 6, 6, 6))
        ref = layer(x).data.copy()
        frozen = engine.freeze(layer)
        frozen.train()
        np.testing.assert_allclose(frozen(x).data, ref, atol=0)
        frozen.eval()
        np.testing.assert_allclose(frozen(x).data, ref, atol=1e-10)

    def test_freeze_before_calibration_initializes_lazily(self, rng, cfg):
        """Freezing an unrun layer works: the first call takes the seed path
        (initializing the LSQ scales), later calls use the compiled plan."""
        layer = make_conv(cfg, QuantScheme())
        reference = make_conv(cfg, QuantScheme())
        reference.eval()
        frozen = engine.freeze(layer)
        assert frozen.plan is None
        x = eval_input(rng, (1, 6, 6, 6))
        out_first = frozen(x).data.copy()
        np.testing.assert_allclose(out_first, reference(x).data, atol=0)
        assert frozen.plan is not None
        np.testing.assert_allclose(frozen(x).data, out_first, atol=1e-10)

    def test_psum_toggle_recompiles_plan(self, rng, cfg):
        """Toggling partial-sum quantization (two-stage QAT style) after
        freezing must recompile rather than serve a stale plan."""
        layer = make_conv(cfg, QuantScheme(psum_bits=2))
        layer.eval()
        x = eval_input(rng, (1, 6, 6, 6))
        out_quant = layer(x).data.copy()
        layer.set_psum_quant_enabled(False)
        out_full = layer(x).data.copy()
        layer.set_psum_quant_enabled(True)
        frozen = engine.freeze(layer)
        np.testing.assert_allclose(frozen(x).data, out_quant, atol=1e-10)
        frozen.set_psum_quant_enabled(False)
        np.testing.assert_allclose(frozen(x).data, out_full, atol=1e-10)
        frozen.set_psum_quant_enabled(True)
        np.testing.assert_allclose(frozen(x).data, out_quant, atol=1e-10)

    def test_set_psum_quant_enabled_reaches_wrapped_layers(self, rng, cfg):
        model = TinyCNN(num_classes=4, scheme=QuantScheme(), cim_config=cfg)
        x = eval_input(rng, (1, 3, 8, 8))
        engine.freeze(model, calibrate=x)
        assert set_psum_quant_enabled(model, False) == 3
        engine.thaw(model)
        assert all(not layer.psum_quant_enabled
                   for layer in [model.features[0], model.features[3], model.fc])
